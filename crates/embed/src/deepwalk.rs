//! DeepWalk (Perozzi et al., KDD 2014): truncated uniform random walks fed
//! to skip-gram with negative sampling.

use hsgf_graph::HetGraph;

use crate::sgns::{train_sgns, SgnsConfig};
use crate::walks::uniform_walks;
use crate::Embedding;

/// DeepWalk parameters; defaults are the paper's §4.2.2 settings
/// (`d = 128`, `r = 10` walks per node, walk length `l = 80`, context
/// `k = 10`, `K = 5` negatives).
#[derive(Clone, Debug)]
pub struct DeepWalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Nodes per walk.
    pub walk_length: usize,
    /// SGNS trainer settings.
    pub sgns: SgnsConfig,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig {
            walks_per_node: 10,
            walk_length: 80,
            sgns: SgnsConfig::default(),
        }
    }
}

/// Trains DeepWalk embeddings for every node of `graph`.
pub fn deepwalk(graph: &HetGraph, config: &DeepWalkConfig) -> Embedding {
    let walks = uniform_walks(
        graph,
        config.walks_per_node,
        config.walk_length,
        config.sgns.seed ^ 0xD3E9,
    );
    train_sgns(&walks, graph.node_count(), &config.sgns)
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{GraphBuilder, Label, LabelSet};

    use super::*;

    /// Barbell graph: two K5 cliques joined by one bridge edge. DeepWalk
    /// must embed same-clique nodes closer than cross-clique nodes.
    fn barbell() -> HetGraph {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        GraphBuilder::from_edges(labels, &[Label::new(0); 10], &edges).unwrap()
    }

    #[test]
    fn clusters_cliques() {
        let g = barbell();
        let config = DeepWalkConfig {
            walks_per_node: 20,
            walk_length: 20,
            sgns: SgnsConfig {
                dim: 16,
                window: 4,
                epochs: 3,
                ..Default::default()
            },
        };
        let emb = deepwalk(&g, &config);
        let within = (emb.cosine(1, 2) + emb.cosine(3, 4) + emb.cosine(6, 7)) / 3.0;
        let across = (emb.cosine(1, 6) + emb.cosine(2, 8) + emb.cosine(3, 9)) / 3.0;
        assert!(within > across, "within {within:.3} vs across {across:.3}");
    }

    #[test]
    fn produces_vectors_for_all_nodes() {
        let g = barbell();
        let config = DeepWalkConfig {
            walks_per_node: 2,
            walk_length: 5,
            sgns: SgnsConfig {
                dim: 8,
                ..Default::default()
            },
        };
        let emb = deepwalk(&g, &config);
        assert_eq!(emb.vectors.len(), 10 * 8);
        assert!(emb.vectors.iter().all(|v| v.is_finite()));
    }
}
