//! O(1) discrete sampling via Vose's alias method — the workhorse behind
//! LINE's edge sampling and the unigram^0.75 negative-sampling noise
//! distribution shared by all three embedding baselines.

use hsgf_graph::rng::Rng;

/// A prepared alias table over `0..weights.len()`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/NaN value, or sums to 0.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be non-negative with a positive finite sum"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative weight");
                w * scale
            })
            .collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual numerical slack: remaining entries take probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draws one index in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 4]);
        let mut rng = Rng::from_seed(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let expected = n / 4;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn skewed_weights_respect_proportions() {
        let table = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut rng = Rng::from_seed(2);
        let mut counts = [0usize; 3];
        let n = 50_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.8).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = Rng::from_seed(3);
        for _ in 0..10_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn singleton_table() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = Rng::from_seed(4);
        assert_eq!(table.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
