//! Random-walk corpora: uniform first-order walks (DeepWalk) and the
//! p/q-biased second-order walks of node2vec.

use hsgf_graph::rng::Rng;
use hsgf_graph::{HetGraph, NodeId};

/// Generates `walks_per_node` uniform random walks of `walk_length` nodes
/// from every node (DeepWalk's corpus; Perozzi et al. 2014). Nodes with no
/// neighbours yield length-1 walks.
pub fn uniform_walks(
    graph: &HetGraph,
    walks_per_node: usize,
    walk_length: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = Rng::from_seed(seed);
    let mut starts: Vec<u32> = (0..graph.node_count() as u32).collect();
    let mut walks = Vec::with_capacity(graph.node_count() * walks_per_node);
    for _ in 0..walks_per_node {
        // DeepWalk shuffles the start order each pass.
        rng.shuffle(&mut starts);
        for &s in &starts {
            let mut walk = Vec::with_capacity(walk_length);
            walk.push(s);
            let mut cur = NodeId::new(s);
            for _ in 1..walk_length {
                let nbrs = graph.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                cur = nbrs[rng.gen_range(0..nbrs.len())];
                walk.push(cur.raw());
            }
            walks.push(walk);
        }
    }
    walks
}

/// Generates node2vec second-order walks (Grover & Leskovec 2016): the
/// unnormalized probability of stepping from `v` to `x` given the previous
/// node `t` is `1/p` if `x = t`, `1` if `x` is adjacent to `t`, and `1/q`
/// otherwise. Sampling is done by rejection against the maximum weight, so
/// no per-edge alias tables are materialized.
pub fn node2vec_walks(
    graph: &HetGraph,
    walks_per_node: usize,
    walk_length: usize,
    p: f64,
    q: f64,
    seed: u64,
) -> Vec<Vec<u32>> {
    assert!(p > 0.0 && q > 0.0, "p and q must be positive");
    let mut rng = Rng::from_seed(seed);
    let mut starts: Vec<u32> = (0..graph.node_count() as u32).collect();
    let mut walks = Vec::with_capacity(graph.node_count() * walks_per_node);
    let w_return = 1.0 / p;
    let w_out = 1.0 / q;
    let w_max = w_return.max(1.0).max(w_out);
    for _ in 0..walks_per_node {
        rng.shuffle(&mut starts);
        for &s in &starts {
            let mut walk = Vec::with_capacity(walk_length);
            walk.push(s);
            let mut prev: Option<NodeId> = None;
            let mut cur = NodeId::new(s);
            for _ in 1..walk_length {
                let nbrs = graph.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                let next = match prev {
                    None => nbrs[rng.gen_range(0..nbrs.len())],
                    Some(t) => {
                        // Rejection sampling on the second-order weights.
                        loop {
                            let cand = nbrs[rng.gen_range(0..nbrs.len())];
                            let w = if cand == t {
                                w_return
                            } else if graph.has_edge(cand, t) {
                                1.0
                            } else {
                                w_out
                            };
                            if rng.gen_f64() * w_max <= w {
                                break cand;
                            }
                        }
                    }
                };
                walk.push(next.raw());
                prev = Some(cur);
                cur = next;
            }
            walks.push(walk);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, GraphBuilder, Label, LabelSet};

    use super::*;

    fn line_graph(n: usize) -> HetGraph {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let node_labels = vec![Label::new(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        GraphBuilder::from_edges(labels, &node_labels, &edges).unwrap()
    }

    #[test]
    fn walks_have_requested_shape() {
        let g = line_graph(10);
        let walks = uniform_walks(&g, 3, 7, 1);
        assert_eq!(walks.len(), 30);
        for w in &walks {
            assert!(w.len() <= 7 && !w.is_empty());
            // Consecutive nodes must be adjacent.
            for pair in w.windows(2) {
                assert!(g.has_edge(NodeId::new(pair[0]), NodeId::new(pair[1])));
            }
        }
    }

    #[test]
    fn isolated_nodes_yield_singleton_walks() {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let g = GraphBuilder::from_edges(
            labels,
            &[Label::new(0), Label::new(0), Label::new(0)],
            &[(0, 1)],
        )
        .unwrap();
        let walks = uniform_walks(&g, 1, 5, 2);
        let w2: Vec<&Vec<u32>> = walks.iter().filter(|w| w[0] == 2).collect();
        assert_eq!(w2.len(), 1);
        assert_eq!(w2[0].len(), 1);
    }

    #[test]
    fn node2vec_walks_are_valid_paths() {
        let labels = LabelSet::from_names(["a", "b"]).unwrap();
        let g = generators::barabasi_albert(labels, &[1.0, 1.0], 80, 2, 3).unwrap();
        let walks = node2vec_walks(&g, 2, 10, 1.0, 1.0, 7);
        assert_eq!(walks.len(), 160);
        for w in &walks {
            for pair in w.windows(2) {
                assert!(g.has_edge(NodeId::new(pair[0]), NodeId::new(pair[1])));
            }
        }
    }

    #[test]
    fn low_p_increases_backtracking() {
        // On a line graph, a tiny p (strong return bias) should produce
        // more immediate backtracks than a huge p.
        let g = line_graph(50);
        let count_backtracks = |walks: &[Vec<u32>]| -> usize {
            walks
                .iter()
                .flat_map(|w| w.windows(3))
                .filter(|t| t[0] == t[2])
                .count()
        };
        let returny = node2vec_walks(&g, 5, 20, 0.05, 1.0, 11);
        let outy = node2vec_walks(&g, 5, 20, 20.0, 1.0, 11);
        let r = count_backtracks(&returny);
        let o = count_backtracks(&outy);
        assert!(r > o, "backtracks: return-biased {r} vs outward {o}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = line_graph(12);
        assert_eq!(uniform_walks(&g, 2, 6, 9), uniform_walks(&g, 2, 6, 9));
        assert_eq!(
            node2vec_walks(&g, 2, 6, 0.5, 2.0, 9),
            node2vec_walks(&g, 2, 6, 0.5, 2.0, 9)
        );
    }
}
