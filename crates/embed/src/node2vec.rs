//! node2vec (Grover & Leskovec, KDD 2016): p/q-biased second-order walks
//! fed to skip-gram with negative sampling.

use hsgf_graph::HetGraph;

use crate::sgns::{train_sgns, SgnsConfig};
use crate::walks::node2vec_walks;
use crate::Embedding;

/// node2vec parameters; defaults are the paper's §4.2.2 settings
/// (`d = 128`, `r = 10`, `l = 80`, `k = 10`, `p = q = 1`, `K = 5`).
#[derive(Clone, Debug)]
pub struct Node2VecConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Nodes per walk.
    pub walk_length: usize,
    /// Return parameter `p` (smaller = more backtracking / BFS-like).
    pub p: f64,
    /// In-out parameter `q` (smaller = more outward / DFS-like).
    pub q: f64,
    /// SGNS trainer settings.
    pub sgns: SgnsConfig,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            walks_per_node: 10,
            walk_length: 80,
            p: 1.0,
            q: 1.0,
            sgns: SgnsConfig::default(),
        }
    }
}

/// Trains node2vec embeddings for every node of `graph`.
pub fn node2vec(graph: &HetGraph, config: &Node2VecConfig) -> Embedding {
    let walks = node2vec_walks(
        graph,
        config.walks_per_node,
        config.walk_length,
        config.p,
        config.q,
        config.sgns.seed ^ 0x4E2C,
    );
    train_sgns(&walks, graph.node_count(), &config.sgns)
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{GraphBuilder, Label, LabelSet};

    use super::*;

    fn two_triangles_bridge() -> HetGraph {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        GraphBuilder::from_edges(labels, &[Label::new(0); 6], &edges).unwrap()
    }

    #[test]
    fn embeds_all_nodes_finite() {
        let g = two_triangles_bridge();
        let config = Node2VecConfig {
            walks_per_node: 5,
            walk_length: 10,
            sgns: SgnsConfig {
                dim: 8,
                window: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let emb = node2vec(&g, &config);
        assert_eq!(emb.vectors.len(), 6 * 8);
        assert!(emb.vectors.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn separates_triangles() {
        let g = two_triangles_bridge();
        let config = Node2VecConfig {
            walks_per_node: 30,
            walk_length: 15,
            sgns: SgnsConfig {
                dim: 16,
                window: 3,
                epochs: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let emb = node2vec(&g, &config);
        let within = (emb.cosine(0, 1) + emb.cosine(4, 5)) / 2.0;
        let across = (emb.cosine(0, 4) + emb.cosine(1, 5)) / 2.0;
        assert!(within > across, "within {within:.3} vs across {across:.3}");
    }

    #[test]
    fn p_q_change_results() {
        let g = two_triangles_bridge();
        let base = Node2VecConfig {
            walks_per_node: 5,
            walk_length: 12,
            sgns: SgnsConfig {
                dim: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let bfsish = Node2VecConfig {
            p: 0.25,
            q: 4.0,
            ..base.clone()
        };
        let a = node2vec(&g, &base);
        let b = node2vec(&g, &bfsish);
        assert_ne!(a.vectors, b.vectors);
    }
}
