//! LINE (Tang et al., WWW 2015): large-scale information network embedding
//! preserving first- and second-order proximity, trained by edge sampling
//! with negative sampling. As in the original method (and the paper's
//! §4.2.2 description), the final representation concatenates the
//! first-order and second-order embeddings.

use hsgf_graph::rng::Rng;
use hsgf_graph::HetGraph;

use crate::alias::AliasTable;
use crate::Embedding;

/// LINE parameters. `dim` is the *total* dimension; each order gets
/// `dim / 2`. Defaults follow the paper's setup (`d = 128`, `K = 5`).
#[derive(Clone, Debug)]
pub struct LineConfig {
    /// Total embedding dimension (split across the two orders).
    pub dim: usize,
    /// Negative samples per positive edge.
    pub negatives: usize,
    /// Edge samples per order, as a multiple of the edge count.
    pub samples_per_edge: usize,
    /// Initial learning rate, linearly decayed.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 128,
            negatives: 5,
            samples_per_edge: 50,
            learning_rate: 0.025,
            seed: 0,
        }
    }
}

/// Trains the concatenated first+second order LINE embedding.
pub fn line(graph: &HetGraph, config: &LineConfig) -> Embedding {
    let half = (config.dim / 2).max(1);
    let first = train_order(graph, half, config, Order::First);
    let second = train_order(graph, half, config, Order::Second);
    let n = graph.node_count();
    let mut vectors = vec![0.0f64; n * half * 2];
    for v in 0..n {
        vectors[v * half * 2..v * half * 2 + half].copy_from_slice(first.row(v));
        vectors[v * half * 2 + half..(v + 1) * half * 2].copy_from_slice(second.row(v));
    }
    Embedding {
        dim: half * 2,
        vectors,
    }
}

#[derive(Copy, Clone, PartialEq)]
enum Order {
    First,
    Second,
}

fn train_order(graph: &HetGraph, dim: usize, config: &LineConfig, order: Order) -> Embedding {
    let n = graph.node_count();
    let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut rng = Rng::from_seed(
        config.seed
            ^ if order == Order::First {
                0x11AE
            } else {
                0x22BE
            },
    );
    let mut vertex = vec![0.0f32; n * dim];
    for v in vertex.iter_mut() {
        *v = (rng.gen_f32() - 0.5) / dim as f32;
    }
    // Second order uses separate context vectors; first order is symmetric
    // (contexts are the vertex vectors themselves).
    let mut context = if order == Order::Second {
        vec![0.0f32; n * dim]
    } else {
        Vec::new()
    };

    if edges.is_empty() {
        return Embedding {
            dim,
            vectors: vertex.into_iter().map(f64::from).collect(),
        };
    }
    // Uniform edge sampling (our graphs are unweighted) and degree^0.75
    // negative noise.
    let noise_weights: Vec<f64> = (0..n)
        .map(|v| (graph.degree(hsgf_graph::NodeId::new(v as u32)) as f64 + 1.0).powf(0.75))
        .collect();
    let noise = AliasTable::new(&noise_weights);
    let total = edges.len() * config.samples_per_edge;
    let lr0 = config.learning_rate;
    let mut grad = vec![0.0f32; dim];
    let mut u_vec = vec![0.0f32; dim];
    for step in 0..total {
        let lr = (lr0 * (1.0 - step as f64 / total as f64)).max(lr0 * 1e-4) as f32;
        let (mut u, mut v) = edges[rng.gen_range(0..edges.len())];
        // Undirected edge: pick a random direction per sample.
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut u, &mut v);
        }
        let ui = u as usize * dim;
        // Work on a copy of u's vector so target updates never alias it
        // (in first order the negatives share the vertex table).
        u_vec.copy_from_slice(&vertex[ui..ui + dim]);
        grad.iter_mut().for_each(|g| *g = 0.0);
        for k in 0..=config.negatives {
            let (target, label) = if k == 0 {
                (v as usize, 1.0f32)
            } else {
                (noise.sample(&mut rng), 0.0f32)
            };
            // Self-pairs carry no signal; in first order they would also
            // alias u's own vector.
            if target == u as usize {
                continue;
            }
            let ti = target * dim;
            let target_vec: &mut [f32] = if order == Order::Second {
                &mut context[ti..ti + dim]
            } else {
                &mut vertex[ti..ti + dim]
            };
            let dot: f32 = u_vec
                .iter()
                .zip(target_vec.iter())
                .map(|(a, b)| a * b)
                .sum();
            let pred = 1.0 / (1.0 + (-dot).exp());
            let g = (label - pred) * lr;
            for j in 0..dim {
                grad[j] += g * target_vec[j];
                target_vec[j] += g * u_vec[j];
            }
        }
        for j in 0..dim {
            vertex[ui + j] += grad[j];
        }
    }
    Embedding {
        dim,
        vectors: vertex.into_iter().map(f64::from).collect(),
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{GraphBuilder, Label, LabelSet};

    use super::*;

    fn barbell() -> HetGraph {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        GraphBuilder::from_edges(labels, &[Label::new(0); 10], &edges).unwrap()
    }

    #[test]
    fn dimension_is_split_and_concatenated() {
        let g = barbell();
        let config = LineConfig {
            dim: 16,
            samples_per_edge: 10,
            ..Default::default()
        };
        let emb = line(&g, &config);
        assert_eq!(emb.dim, 16);
        assert_eq!(emb.vectors.len(), 10 * 16);
        assert!(emb.vectors.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn first_order_proximity_clusters_cliques() {
        let g = barbell();
        let config = LineConfig {
            dim: 16,
            samples_per_edge: 400,
            ..Default::default()
        };
        let emb = line(&g, &config);
        let within = (emb.cosine(1, 2) + emb.cosine(6, 7)) / 2.0;
        let across = (emb.cosine(1, 6) + emb.cosine(2, 7)) / 2.0;
        assert!(within > across, "within {within:.3} vs across {across:.3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = barbell();
        let config = LineConfig {
            dim: 8,
            samples_per_edge: 5,
            ..Default::default()
        };
        let a = line(&g, &config);
        let b = line(&g, &config);
        assert_eq!(a.vectors, b.vectors);
    }

    #[test]
    fn edgeless_graph_is_safe() {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let g = GraphBuilder::from_edges(labels, &[Label::new(0); 3], &[]).unwrap();
        let config = LineConfig {
            dim: 8,
            ..Default::default()
        };
        let emb = line(&g, &config);
        assert_eq!(emb.vectors.len(), 3 * 8);
    }
}
