//! Neural node-embedding baselines, implemented from scratch.
//!
//! The paper compares heterogeneous subgraph features against three
//! state-of-the-art embedding methods (§4.2.2): **DeepWalk** (uniform
//! walks + skip-gram), **node2vec** (p/q-biased second-order walks +
//! skip-gram), and **LINE** (first+second-order proximity via edge
//! sampling). All three are purely structural — they ignore node labels —
//! which is exactly the property the paper's experiments probe.
//!
//! Default hyperparameters follow the paper: `d = 128`, `r = 10` walks per
//! node, walk length `l = 80`, context size `k = 10`, `p = q = 1`, and
//! `K = 5` negative samples.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alias;
pub mod deepwalk;
pub mod line;
pub mod node2vec;
pub mod sgns;
pub mod walks;

pub use alias::AliasTable;
pub use deepwalk::{deepwalk, DeepWalkConfig};
pub use line::{line, LineConfig};
pub use node2vec::{node2vec, Node2VecConfig};
pub use sgns::{train_sgns, SgnsConfig};

/// A dense per-node embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Vector dimension.
    pub dim: usize,
    /// Row-major `node_count × dim` storage.
    pub vectors: Vec<f64>,
}

impl Embedding {
    /// The vector of node `v`.
    pub fn row(&self, v: usize) -> &[f64] {
        &self.vectors[v * self.dim..(v + 1) * self.dim]
    }

    /// Number of embedded nodes.
    pub fn node_count(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.vectors.len() / self.dim
        }
    }

    /// Cosine similarity between two nodes' vectors.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.row(a), self.row(b));
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        dot / (na * nb + 1e-12)
    }

    /// Extracts the rows for a set of nodes as a flat row-major matrix —
    /// the "embedded features" handed to downstream learners.
    pub fn features_for(&self, nodes: &[u32]) -> Vec<f64> {
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &v in nodes {
            out.extend_from_slice(self.row(v as usize));
        }
        out
    }
}

/// The three baseline embedding methods, unified for the experiment
/// harness.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EmbeddingKind {
    /// node2vec (Grover & Leskovec 2016).
    Node2Vec,
    /// DeepWalk (Perozzi et al. 2014).
    DeepWalk,
    /// LINE (Tang et al. 2015).
    Line,
}

impl EmbeddingKind {
    /// All baselines, in the paper's presentation order.
    pub const ALL: [EmbeddingKind; 3] = [
        EmbeddingKind::Node2Vec,
        EmbeddingKind::DeepWalk,
        EmbeddingKind::Line,
    ];

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            EmbeddingKind::Node2Vec => "node2vec",
            EmbeddingKind::DeepWalk => "DeepWalk",
            EmbeddingKind::Line => "LINE",
        }
    }

    /// Trains this baseline on the graph with dimension `dim` and
    /// walk/sample budgets scaled by `budget` (1.0 = the paper's defaults).
    /// Experiments on laptop-scale graphs pass `budget < 1` to keep the
    /// full suite fast; the relative comparison is unaffected.
    pub fn train(
        self,
        graph: &hsgf_graph::HetGraph,
        dim: usize,
        budget: f64,
        seed: u64,
    ) -> Embedding {
        let scale = |x: usize| ((x as f64 * budget).round() as usize).max(1);
        match self {
            EmbeddingKind::DeepWalk => {
                let config = DeepWalkConfig {
                    walks_per_node: scale(10),
                    walk_length: scale(80),
                    sgns: SgnsConfig {
                        dim,
                        seed,
                        ..SgnsConfig::default()
                    },
                };
                deepwalk(graph, &config)
            }
            EmbeddingKind::Node2Vec => {
                let config = Node2VecConfig {
                    walks_per_node: scale(10),
                    walk_length: scale(80),
                    sgns: SgnsConfig {
                        dim,
                        seed,
                        ..SgnsConfig::default()
                    },
                    ..Node2VecConfig::default()
                };
                node2vec(graph, &config)
            }
            EmbeddingKind::Line => {
                let config = LineConfig {
                    dim,
                    samples_per_edge: scale(50),
                    seed,
                    ..LineConfig::default()
                };
                line(graph, &config)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_accessors() {
        let emb = Embedding {
            dim: 2,
            vectors: vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        };
        assert_eq!(emb.node_count(), 3);
        assert_eq!(emb.row(1), &[0.0, 1.0]);
        assert!((emb.cosine(0, 1)).abs() < 1e-9);
        assert!((emb.cosine(0, 0) - 1.0).abs() < 1e-9);
        let f = emb.features_for(&[2, 0]);
        assert_eq!(f, vec![1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn kinds_have_names() {
        let names: Vec<&str> = EmbeddingKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["node2vec", "DeepWalk", "LINE"]);
    }
}
