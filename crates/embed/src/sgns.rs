//! Skip-gram with negative sampling (SGNS) over a walk corpus — the shared
//! trainer behind DeepWalk and node2vec (both reduce node embedding to
//! word2vec on walk "sentences"; Mikolov et al. 2013).

use hsgf_graph::rng::Rng;

use crate::alias::AliasTable;
use crate::Embedding;

/// SGNS hyperparameters. Defaults follow the paper's §4.2.2 settings:
/// `d = 128`, context size `k = 10`, `K = 5` negative samples.
#[derive(Clone, Debug)]
pub struct SgnsConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Maximum context window; the effective window per centre token is
    /// sampled uniformly from `1..=window` as in word2vec.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate, linearly decayed to 1e-4 of itself.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 128,
            window: 10,
            negatives: 5,
            epochs: 1,
            learning_rate: 0.025,
            seed: 0,
        }
    }
}

/// Trains SGNS input vectors over `vocab_size` tokens from walk sentences.
pub fn train_sgns(walks: &[Vec<u32>], vocab_size: usize, config: &SgnsConfig) -> Embedding {
    assert!(vocab_size > 0, "empty vocabulary");
    let d = config.dim;
    let mut rng = Rng::from_seed(config.seed);
    // Unigram^0.75 noise distribution over corpus frequencies.
    let mut freq = vec![0.0f64; vocab_size];
    for walk in walks {
        for &t in walk {
            freq[t as usize] += 1.0;
        }
    }
    let noise_weights: Vec<f64> = freq.iter().map(|&f| (f + 1.0).powf(0.75)).collect();
    let noise = AliasTable::new(&noise_weights);

    // word2vec-style init: input uniform small, output zero.
    let mut input = vec![0.0f32; vocab_size * d];
    for v in input.iter_mut() {
        *v = (rng.gen_f32() - 0.5) / d as f32;
    }
    let mut output = vec![0.0f32; vocab_size * d];

    let total_tokens: usize = walks.iter().map(Vec::len).sum::<usize>().max(1);
    let total_steps = (total_tokens * config.epochs) as f64;
    let mut seen = 0usize;
    let lr0 = config.learning_rate;
    let mut grad = vec![0.0f32; d];
    for _ in 0..config.epochs {
        for walk in walks {
            for (center_pos, &center) in walk.iter().enumerate() {
                seen += 1;
                let lr = (lr0 * (1.0 - seen as f64 / total_steps)).max(lr0 * 1e-4) as f32;
                let b = rng.gen_range(1..=config.window);
                let lo = center_pos.saturating_sub(b);
                let hi = (center_pos + b + 1).min(walk.len());
                for ctx_pos in lo..hi {
                    if ctx_pos == center_pos {
                        continue;
                    }
                    let context = walk[ctx_pos] as usize;
                    let ci = context * d;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    // One positive + K negative updates on the context's
                    // input vector.
                    for k in 0..=config.negatives {
                        let (target, label) = if k == 0 {
                            (center as usize, 1.0f32)
                        } else {
                            (noise.sample(&mut rng), 0.0f32)
                        };
                        let ti = target * d;
                        let dot: f32 = input[ci..ci + d]
                            .iter()
                            .zip(&output[ti..ti + d])
                            .map(|(a, b)| a * b)
                            .sum();
                        let pred = 1.0 / (1.0 + (-dot).exp());
                        let g = (label - pred) * lr;
                        for j in 0..d {
                            grad[j] += g * output[ti + j];
                            output[ti + j] += g * input[ci + j];
                        }
                    }
                    for j in 0..d {
                        input[ci + j] += grad[j];
                    }
                }
            }
        }
    }
    Embedding {
        dim: d,
        vectors: input.into_iter().map(f64::from).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disconnected "communities" simulated as walk corpora: tokens
    /// 0..4 co-occur, tokens 5..9 co-occur. SGNS must embed communities
    /// closer together than across.
    #[test]
    fn communities_embed_closer_than_strangers() {
        let mut walks = Vec::new();
        let mut state = 7u64;
        let mut next = |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        for _ in 0..300 {
            walks.push((0..12).map(|_| next(5)).collect::<Vec<u32>>());
            walks.push((0..12).map(|_| 5 + next(5)).collect::<Vec<u32>>());
        }
        let config = SgnsConfig {
            dim: 16,
            window: 4,
            epochs: 2,
            ..Default::default()
        };
        let emb = train_sgns(&walks, 10, &config);
        let cos = |a: usize, b: usize| -> f64 {
            let (va, vb) = (emb.row(a), emb.row(b));
            let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
            let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb + 1e-12)
        };
        let within = (cos(0, 1) + cos(2, 3) + cos(5, 6) + cos(7, 8)) / 4.0;
        let across = (cos(0, 5) + cos(1, 7) + cos(3, 9) + cos(4, 6)) / 4.0;
        assert!(
            within > across + 0.2,
            "within {within:.3} should beat across {across:.3}"
        );
    }

    #[test]
    fn shapes_and_determinism() {
        let walks = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let config = SgnsConfig {
            dim: 8,
            window: 2,
            epochs: 1,
            ..Default::default()
        };
        let e1 = train_sgns(&walks, 3, &config);
        let e2 = train_sgns(&walks, 3, &config);
        assert_eq!(e1.dim, 8);
        assert_eq!(e1.vectors.len(), 3 * 8);
        assert_eq!(e1.vectors, e2.vectors);
    }

    #[test]
    fn tokens_absent_from_corpus_keep_init_scale() {
        let walks = vec![vec![0, 1], vec![1, 0]];
        let config = SgnsConfig {
            dim: 4,
            window: 2,
            ..Default::default()
        };
        let emb = train_sgns(&walks, 5, &config);
        // Token 4 never appears: its vector stays at the small init scale.
        let norm: f64 = emb.row(4).iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            norm < 0.5,
            "untouched vector should stay small, norm={norm}"
        );
    }
}
