//! Shared plumbing for the experiment binaries: a tiny `--flag value`
//! parser (no CLI dependency), dataset construction helpers, and the
//! in-repo wall-clock benchmark [`runner`] that replaces `criterion`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod runner;

use hsgf_data::{ImdbConfig, ImdbData, LoadConfig, LoadData, MagConfig, MagData, Scale};
use hsgf_graph::HetGraph;

/// Minimal `--key value` argument reader over `std::env::args`.
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments. `--key value` becomes a pair;
    /// a `--key` followed by another `--…` (or nothing) becomes a flag.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(key) = arg.strip_prefix("--") {
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), raw[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { pairs, flags }
    }

    /// The value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether `--key` was passed as a bare flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The dataset scale selected by `--scale tiny|small|paper`
    /// (default small).
    pub fn scale(&self) -> Scale {
        match self.get::<String>("scale", "small".into()).as_str() {
            "tiny" => Scale::Tiny,
            "paper" => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

/// The three label-prediction datasets, constructed at a scale.
pub fn label_datasets(scale: Scale) -> Vec<(&'static str, HetGraph)> {
    let load = LoadData::generate(&LoadConfig::at_scale(scale));
    let imdb = ImdbData::generate(&ImdbConfig::at_scale(scale));
    let mag = MagData::generate(&MagConfig::at_scale(scale));
    vec![
        ("LOAD", load.graph),
        ("IMDB", imdb.graph),
        ("MAG", mag.label_graph()),
    ]
}

/// The MAG corpus at a scale (rank-prediction substrate).
pub fn mag_corpus(scale: Scale) -> MagData {
    MagData::generate(&MagConfig::at_scale(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_construct_at_tiny_scale() {
        let sets = label_datasets(Scale::Tiny);
        assert_eq!(sets.len(), 3);
        for (name, graph) in &sets {
            assert!(graph.node_count() > 0, "{name} is empty");
            assert!(graph.edge_count() > 0, "{name} has no edges");
        }
        let names: Vec<&str> = sets.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["LOAD", "IMDB", "MAG"]);
    }
}
