//! Minimal wall-clock benchmark runner — the in-repo replacement for
//! `criterion`, so `cargo bench` works with zero external dependencies.
//!
//! Protocol per benchmark: a warmup phase, an iteration-count calibration
//! so each sample runs long enough to dominate timer noise, then `samples`
//! timed samples whose **median** is the headline number (robust to OS
//! scheduling spikes, like criterion's default estimator). Results are
//! printed as a table and written as JSON under `target/hsgf-bench/` for
//! the experiment scripts to diff across commits.
//!
//! Environment knobs:
//!
//! * `HSGF_BENCH_SAMPLES` — timed samples per benchmark (default 10).
//! * `HSGF_BENCH_WARMUP_MS` — warmup duration per benchmark (default 300).
//! * `HSGF_BENCH_SAMPLE_MS` — target duration of one sample (default 50).
//! * `HSGF_BENCH_FAST=1` — CI smoke mode: 3 samples, 10 ms budgets.

use std::fmt::Write as _;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark's aggregated timings, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Median over samples — the headline statistic.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Timing configuration resolved from the environment.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Warmup wall-clock budget.
    pub warmup: Duration,
    /// Target wall-clock duration of one sample.
    pub sample_target: Duration,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        if env_u64("HSGF_BENCH_FAST", 0) == 1 {
            return RunnerConfig {
                samples: env_u64("HSGF_BENCH_SAMPLES", 3) as usize,
                warmup: Duration::from_millis(env_u64("HSGF_BENCH_WARMUP_MS", 10)),
                sample_target: Duration::from_millis(env_u64("HSGF_BENCH_SAMPLE_MS", 10)),
            };
        }
        RunnerConfig {
            samples: env_u64("HSGF_BENCH_SAMPLES", 10) as usize,
            warmup: Duration::from_millis(env_u64("HSGF_BENCH_WARMUP_MS", 300)),
            sample_target: Duration::from_millis(env_u64("HSGF_BENCH_SAMPLE_MS", 50)),
        }
    }
}

/// Collects measurements for one benchmark suite (one `[[bench]] ` target).
pub struct Runner {
    suite: String,
    config: RunnerConfig,
    results: Vec<Measurement>,
    attachments: Vec<(String, String)>,
}

impl Runner {
    /// Creates a runner for the named suite with env-resolved settings.
    pub fn new(suite: &str) -> Self {
        Runner {
            suite: suite.to_string(),
            config: RunnerConfig::default(),
            results: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Attaches a pre-rendered JSON document under `key` in the suite's
    /// output (e.g. an `hsgf_core::obs` metrics snapshot), so the
    /// experiment scripts can diff counters alongside timings. The value
    /// must be valid JSON — it is embedded verbatim. A repeated key
    /// replaces the earlier attachment.
    pub fn attach(&mut self, key: &str, json_value: String) {
        self.attachments.retain(|(k, _)| k != key);
        self.attachments.push((key.to_string(), json_value));
    }

    /// Benchmarks a closure under `name`. The closure's return value is
    /// passed through [`black_box`] so the work is never optimized away.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Warmup: also counts iterations for calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.config.warmup || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters = ((self.config.sample_target.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1_000_000_000);
        let mut sample_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = sample_ns.len();
        let median_ns = if n % 2 == 1 {
            sample_ns[n / 2]
        } else {
            (sample_ns[n / 2 - 1] + sample_ns[n / 2]) / 2.0
        };
        let measurement = Measurement {
            name: name.to_string(),
            median_ns,
            mean_ns: sample_ns.iter().sum::<f64>() / n as f64,
            min_ns: sample_ns[0],
            max_ns: sample_ns[n - 1],
            samples: n,
            iters_per_sample: iters,
        };
        println!(
            "{:<40} median {:>12}  (min {}, max {}, {} samples × {} iters)",
            measurement.name,
            format_ns(measurement.median_ns),
            format_ns(measurement.min_ns),
            format_ns(measurement.max_ns),
            measurement.samples,
            measurement.iters_per_sample,
        );
        self.results.push(measurement);
    }

    /// Starts a named group; benchmark ids become `group/name`.
    pub fn group(&mut self, prefix: &str) -> Group<'_> {
        Group {
            runner: self,
            prefix: prefix.to_string(),
        }
    }

    /// Prints the summary and writes `target/hsgf-bench/<suite>.json`.
    /// Call at the end of `main`.
    pub fn finish(self) {
        let json = self.to_json();
        let dir = target_dir().join("hsgf-bench");
        let path = dir.join(format!("{}.json", self.suite));
        let write = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::File::create(&path))
            .and_then(|mut f| f.write_all(json.as_bytes()));
        match write {
            Ok(()) => println!("\n{} benchmarks -> {}", self.results.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    /// The suite's results as a JSON document (hand-rolled; the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"suite\": \"{}\",", escape_json(&self.suite));
        let _ = writeln!(out, "  \"benchmarks\": [");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}{comma}",
                escape_json(&m.name),
                m.median_ns,
                m.mean_ns,
                m.min_ns,
                m.max_ns,
                m.samples,
                m.iters_per_sample,
            );
        }
        if self.attachments.is_empty() {
            out.push_str("  ]\n}\n");
        } else {
            out.push_str("  ],\n  \"attachments\": {\n");
            for (i, (key, value)) in self.attachments.iter().enumerate() {
                let comma = if i + 1 < self.attachments.len() {
                    ","
                } else {
                    ""
                };
                let _ = writeln!(out, "    \"{}\": {value}{comma}", escape_json(key));
            }
            out.push_str("  }\n}\n");
        }
        out
    }

    /// Measurements collected so far (for tests and custom reporting).
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// A prefix scope over a [`Runner`]; mirrors criterion's `benchmark_group`.
pub struct Group<'a> {
    runner: &'a mut Runner,
    prefix: String,
}

impl Group<'_> {
    /// Benchmarks `routine` as `prefix/name`.
    pub fn bench_function<R>(&mut self, name: impl std::fmt::Display, routine: impl FnMut() -> R) {
        let id = format!("{}/{}", self.prefix, name);
        self.runner.bench_function(&id, routine);
    }

    /// Ends the group (drop would do; kept for call-site symmetry).
    pub fn finish(self) {}
}

/// The cargo target directory. `cargo bench` runs with the package's
/// manifest dir as cwd, so a relative `target/` would land inside
/// `crates/bench/`; instead honour `CARGO_TARGET_DIR` or walk up from the
/// bench executable (which lives under `<target>/release/deps/`).
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.as_path();
        while let Some(parent) = dir.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.to_path_buf();
            }
            dir = parent;
        }
    }
    std::path::PathBuf::from("target")
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> RunnerConfig {
        RunnerConfig {
            samples: 3,
            warmup: Duration::from_millis(1),
            sample_target: Duration::from_millis(1),
        }
    }

    #[test]
    fn measures_and_orders_statistics() {
        let mut runner = Runner::new("test-suite");
        runner.config = fast_config();
        runner.bench_function("noop", || 1 + 1);
        let m = &runner.results()[0];
        assert_eq!(m.name, "noop");
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.min_ns > 0.0);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn groups_prefix_names() {
        let mut runner = Runner::new("test-suite");
        runner.config = fast_config();
        let mut g = runner.group("census");
        g.bench_function("emax2", || 0u64);
        g.bench_function(3, || 0u64);
        g.finish();
        let names: Vec<&str> = runner.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["census/emax2", "census/3"]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut runner = Runner::new("suite \"q\"");
        runner.config = fast_config();
        runner.bench_function("a", || ());
        let json = runner.to_json();
        assert!(json.contains("\"suite\": \"suite \\\"q\\\"\""));
        assert!(json.contains("\"median_ns\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn attachments_embed_as_json_members() {
        let mut runner = Runner::new("suite");
        runner.config = fast_config();
        runner.bench_function("a", || ());
        runner.attach("metrics", "{\"x\": 1}".to_string());
        runner.attach("metrics", "{\"x\": 2}".to_string()); // replaces
        runner.attach("other", "[1, 2]".to_string());
        let json = runner.to_json();
        assert!(json.contains("\"attachments\""), "{json}");
        assert!(json.contains("\"metrics\": {\"x\": 2}"), "{json}");
        assert!(!json.contains("{\"x\": 1}"), "{json}");
        assert!(json.contains("\"other\": [1, 2]"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape_json("a\nb"), "a\\nb");
        assert_eq!(escape_json("t\u{1}"), "t\\u0001");
    }
}
