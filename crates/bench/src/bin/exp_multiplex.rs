//! Experiment E10 (extension) — tests the paper's second §5 future-work
//! item: edge-heterogeneous (typed-edge) subgraph features.
//!
//! On the affiliation-multiplex network, organizers and participants have
//! identical degrees and identical untyped neighbourhoods; their edge-type
//! mix (admin vs member) is the only class signal. See
//! `hsgf_data::multiplex`.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_multiplex [-- --scale small]
//! ```

use hsgf_bench::Args;
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::parallel::extract_censuses;
use hsgf_data::multiplex::{MultiplexConfig, MultiplexData};
use hsgf_eval::label::{evaluate_classification, sample_labelled_nodes};
use hsgf_eval::report::{fmt_ci, render_table};
use hsgf_ml::dataset::{Dataset, StandardScaler};

fn main() {
    let args = Args::parse();
    let data = MultiplexData::generate(&MultiplexConfig::at_scale(args.scale()));
    let graph = data.graph;
    eprintln!(
        "multiplex network: {} nodes, {} edges, {} edge types",
        graph.node_count(),
        graph.edge_count(),
        graph.edge_type_count()
    );
    let per_label = args.get("per-label", 100);
    let emax = args.get("emax", 3);
    let repeats = args.get("repeats", 10);
    let seed = args.get("seed", 0x317);
    let (nodes, classes) = sample_labelled_nodes(&graph, per_label, seed);
    println!("== E10 — edge-typed vs. plain subgraph features (Macro F1, 70% training)");
    let header: Vec<String> = ["features", "macro F1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (name, edge_typed) in [("untyped", false), ("edge-typed", true)] {
        let config = CensusConfig::default()
            .with_emax(emax)
            .with_mask_root_label(true)
            .with_edge_typed(edge_typed);
        let engine = CensusEngine::new(&graph, config).expect("valid config");
        let censuses = extract_censuses(&engine, &nodes, 1).expect("valid roots");
        let matrix = hsgf_core::features::FeatureMatrix::from_censuses(nodes.clone(), censuses)
            .filter_min_df(2)
            .top_k_by_document_frequency(256)
            .log1p();
        let d = matrix.feature_count();
        let raw = Dataset::new(matrix.to_dense(), nodes.len(), d, vec![0.0; nodes.len()]);
        let (_, x) = StandardScaler::fit_transform(&raw.x);
        let features = Dataset { x, y: raw.y };
        let point = evaluate_classification(&features, &classes, 0.7, repeats, seed);
        rows.push(vec![name.to_string(), fmt_ci(point.mean, point.ci95)]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("(organizers and participants differ only in their admin/member edge-type");
    println!(" mix; the untyped census should sit near the 2-of-3-classes ceiling)");
}
