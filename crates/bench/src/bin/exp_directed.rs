//! Experiment E9 (extension) — tests the paper's §5 future-work
//! hypothesis: on networks with meaningful edge directions, *directed*
//! subgraph features outperform the undirected variety.
//!
//! The synthetic citation-flow network is adversarial by construction:
//! `source` and `sink` nodes have identical degree laws and identical
//! undirected neighbourhoods (both see only hubs), so with the root label
//! masked the undirected census cannot separate them — edge orientation is
//! the only signal. See `hsgf_data::flow`.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_directed [-- --scale small]
//! ```

use hsgf_bench::Args;
use hsgf_data::flow::{FlowConfig, FlowData};
use hsgf_eval::features::FeatureFamily;
use hsgf_eval::label::{
    evaluate_classification, extract_label_features, sample_labelled_nodes, LabelTaskConfig,
};
use hsgf_eval::report::{fmt_ci, render_table};

fn main() {
    let args = Args::parse();
    let data = FlowData::generate(&FlowConfig::at_scale(args.scale()));
    let graph = data.graph;
    eprintln!(
        "flow network: {} nodes, {} edges (all directed)",
        graph.node_count(),
        graph.edge_count()
    );
    let base = LabelTaskConfig {
        nodes_per_label: args.get("per-label", 100),
        emax: args.get("emax", 3),
        repeats: args.get("repeats", 10),
        seed: args.get("seed", 0xD1E),
        ..LabelTaskConfig::default()
    };
    let (nodes, classes) = sample_labelled_nodes(&graph, base.nodes_per_label, base.seed);
    println!("== E9 — directed vs. undirected subgraph features (Macro F1, 70% training)");
    let header: Vec<String> = ["features", "macro F1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (name, directed) in [("undirected", false), ("directed", true)] {
        let config = LabelTaskConfig {
            directed,
            ..base.clone()
        };
        let features = extract_label_features(&graph, &nodes, FeatureFamily::Subgraph, &config);
        let point = evaluate_classification(&features, &classes, 0.7, config.repeats, config.seed);
        rows.push(vec![name.to_string(), fmt_ci(point.mean, point.ci95)]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("(source and sink classes are undistinguishable without direction; the");
    println!(" undirected census should hover near the 2-of-3-classes ceiling while");
    println!(" the directed census separates all three classes)");
}
