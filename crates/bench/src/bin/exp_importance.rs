//! Experiment E4 — the most discriminative subgraph features per
//! conference, by random-forest importance (paper Fig. 4).
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_importance [-- --scale small --top 2]
//! ```

use hsgf_bench::{mag_corpus, Args};
use hsgf_eval::rank::{discriminative_subgraphs, RankTaskConfig};

fn main() {
    let args = Args::parse();
    let data = mag_corpus(args.scale());
    let config = RankTaskConfig {
        emax: args.get("emax", 4),
        forest_trees: args.get("trees", 300),
        seed: args.get("seed", 0x4A8B),
        ..RankTaskConfig::default()
    };
    let top_k = args.get("top", 2usize);
    println!("== Figure 4 — most discriminative subgraphs per conference");
    println!("   (encoding rendered as label-initial + per-label neighbour counts;");
    println!("    labels: i=institution, a=author, p=paper)");
    for conference in 0..data.config.conferences.len() {
        let top = discriminative_subgraphs(&data, conference, &config, top_k);
        println!("-- {}", data.config.conferences[conference]);
        for (rank, d) in top.iter().enumerate() {
            println!(
                "   #{}: importance {:.4}  {}  ({} nodes, {} edges)",
                rank + 1,
                d.importance,
                d.rendered,
                d.encoding.node_count(),
                d.encoding.edge_count()
            );
        }
    }
}
