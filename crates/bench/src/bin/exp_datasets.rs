//! Experiment E2 — prints the three evaluation datasets and their label
//! connectivity graphs (paper Fig. 2 and §4.1).
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_datasets [-- --scale small]
//! ```

use hsgf_bench::{label_datasets, Args};
use hsgf_graph::{DegreeStats, LabelConnectivityGraph};

fn main() {
    let args = Args::parse();
    for (name, graph) in label_datasets(args.scale()) {
        let lcg = LabelConnectivityGraph::of(&graph);
        let stats = DegreeStats::of(&graph);
        println!("== {name}");
        println!(
            "   {} nodes, {} edges, {} labels",
            graph.node_count(),
            graph.edge_count(),
            graph.label_count()
        );
        let hist = graph.label_histogram();
        for (label, lname) in graph.labels().iter() {
            println!("     {lname:>14}: {} nodes", hist[label.index()]);
        }
        println!(
            "   degrees: mean {:.1}, median {}, max {}, 90th pct {}, hub ratio {:.1}",
            stats.mean(),
            stats.median(),
            stats.max(),
            stats.degree_at_percentile(90.0),
            stats.hub_ratio()
        );
        println!(
            "   label connectivity graph (density {:.2}, self loops: {}, unique-encoding emax {}):",
            lcg.density(),
            lcg.has_any_self_loop(),
            lcg.unique_encoding_emax()
        );
        print!("{}", lcg.render(&graph));
        println!();
    }
}
