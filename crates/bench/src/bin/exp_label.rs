//! Experiment E7 — Fig. 5A–C: label-prediction Macro-F1 as the training
//! fraction varies, for subgraph features vs. node2vec / DeepWalk / LINE,
//! on all three datasets (paper §4.3.6).
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_label [-- --scale small --per-label 100 --repeats 10]
//! ```

use hsgf_bench::{label_datasets, Args};
use hsgf_eval::features::FeatureFamily;
use hsgf_eval::label::{training_size_sweep, LabelTaskConfig};
use hsgf_eval::report::{fmt_ci, render_series};

fn main() {
    let args = Args::parse();
    let config = LabelTaskConfig {
        nodes_per_label: args.get("per-label", 100),
        emax: args.get("emax", 4),
        embed_budget: args.get("embed-budget", 0.25),
        repeats: args.get("repeats", 5),
        seed: args.get("seed", 0xE7A1),
        ..LabelTaskConfig::default()
    };
    // Default: 5 coarse fractions (single-core friendly); --fine gives the
    // paper's full 10%..90% grid.
    let fractions: Vec<f64> = if args.flag("fine") {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    };
    for (name, graph) in label_datasets(args.scale()) {
        eprintln!(
            "label prediction on {name} ({} nodes)...",
            graph.node_count()
        );
        let sweep = training_size_sweep(&graph, &config, &fractions, &FeatureFamily::LABEL_TASK);
        println!("== Figure 5 ({name}) — Macro F1 vs. training size");
        let xs: Vec<String> = sweep
            .fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect();
        let series: Vec<(String, Vec<String>)> = sweep
            .results
            .iter()
            .map(|(family, points)| {
                (
                    family.name().to_string(),
                    points.iter().map(|p| fmt_ci(p.mean, p.ci95)).collect(),
                )
            })
            .collect();
        print!("{}", render_series("train", &xs, &series));
        println!();
    }
}
