//! Experiment E6 — Table 3: per-node feature-extraction time for subgraph
//! features (mean and upper percentiles) and amortized per-node time for
//! the embedding baselines (paper §4.3.5).
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_runtime [-- --scale small --per-label 100]
//! ```

use hsgf_bench::{label_datasets, Args};
use hsgf_eval::label::{runtime_report, LabelTaskConfig};
use hsgf_eval::report::{fmt_secs, render_table};

fn main() {
    let args = Args::parse();
    let config = LabelTaskConfig {
        nodes_per_label: args.get("per-label", 100),
        emax: args.get("emax", 4),
        embed_budget: args.get("embed-budget", 0.25),
        seed: args.get("seed", 0xE7A1),
        ..LabelTaskConfig::default()
    };
    println!("== Table 3 — extraction time per node");
    let header: Vec<String> = [
        "dataset", "sg mean", "sg p75", "sg p90", "sg p95", "sg max", "n2v", "DW", "LINE",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (name, graph) in label_datasets(args.scale()) {
        eprintln!(
            "timing {name} ({} nodes, {} edges)...",
            graph.node_count(),
            graph.edge_count()
        );
        let report = runtime_report(&graph, &config);
        let mut row = vec![
            name.to_string(),
            fmt_secs(report.subgraph_mean),
            fmt_secs(report.subgraph_p75),
            fmt_secs(report.subgraph_p90),
            fmt_secs(report.subgraph_p95),
            fmt_secs(report.subgraph_max),
        ];
        for (_, secs) in &report.embeddings {
            row.push(fmt_secs(*secs));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("(embedding columns are whole-graph training time divided by node count,");
    println!(" as the paper amortizes them; subgraph columns are true per-root times)");
}
