//! Experiment E3 — the rank-prediction grid: Fig. 3 (NDCG per conference,
//! regressor, and feature set) and Table 1 (averages over conferences).
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_rank [-- --scale small --emax 4 --repeats 5]
//! ```
//!
//! `--scale paper --emax 6 --trees 300` approaches the paper's exact
//! setup at a correspondingly higher runtime.

use hsgf_bench::{mag_corpus, Args};
use hsgf_eval::rank::{run_rank_task, RankFeatureSet, RankTaskConfig};
use hsgf_eval::report::{fmt_ci, render_table};
use hsgf_ml::RegressorKind;

fn main() {
    let args = Args::parse();
    let data = mag_corpus(args.scale());
    let config = RankTaskConfig {
        emax: args.get("emax", 4),
        embed_budget: args.get("embed-budget", 0.2),
        forest_trees: args.get("trees", 100),
        bootstrap_repeats: args.get("repeats", 5),
        seed: args.get("seed", 0x4A8B),
        ..RankTaskConfig::default()
    };
    eprintln!(
        "running rank task: {} institutions, {} conferences, years {}-{} (emax={})",
        data.config.institutions,
        data.config.conferences.len(),
        data.config.first_year,
        data.config.last_year,
        config.emax
    );
    let results = run_rank_task(&data, &config);

    // Fig. 3: one table per regressor, rows = conferences.
    for (ri, kind) in RegressorKind::ALL.iter().enumerate() {
        println!("== Figure 3 — {} (NDCG@20, mean ± 95% CI)", kind.name());
        let header: Vec<String> = std::iter::once("conference".to_string())
            .chain(RankFeatureSet::ALL.iter().map(|f| f.name().to_string()))
            .collect();
        let rows: Vec<Vec<String>> = results
            .conferences
            .iter()
            .enumerate()
            .map(|(ci, conf)| {
                let mut row = vec![conf.clone()];
                row.extend(
                    results.ndcg[ci][ri]
                        .iter()
                        .map(|cell| fmt_ci(cell.mean, cell.ci95)),
                );
                row
            })
            .collect();
        print!("{}", render_table(&header, &rows));
        println!();
    }

    // Table 1: averages over conferences.
    println!("== Table 1 — average NDCG over all conferences");
    let table = results.table1();
    let header: Vec<String> = std::iter::once("feature".to_string())
        .chain(RegressorKind::ALL.iter().map(|k| k.name().to_string()))
        .collect();
    let rows: Vec<Vec<String>> = RankFeatureSet::ALL
        .iter()
        .enumerate()
        .map(|(fi, set)| {
            let mut row = vec![set.name().to_string()];
            row.extend((0..RegressorKind::ALL.len()).map(|ri| format!("{:.2}", table[ri][fi])));
            row
        })
        .collect();
    print!("{}", render_table(&header, &rows));
}
