//! Experiment E1 — reproduces the encoding-uniqueness limits of paper §3.1
//! (and the collision examples of Fig. 1C) by exhaustive enumeration.
//!
//! Paper claims: encodings are unique up to `emax = 5` edges when the label
//! connectivity graph is loop-free, and up to `emax = 4` with loops.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_encoding_limits [-- --labels 2 --max-edges 5]
//! ```

use hsgf_bench::Args;
use hsgf_core::enumerate::{collision_report, enumerate_connected, EnumerationConfig};
use hsgf_graph::LabelSet;

fn report(title: &str, config: &EnumerationConfig) {
    println!(
        "== {title} (labels={}, max edges={})",
        config.label_count, config.max_edges
    );
    let graphs = enumerate_connected(config);
    let report = collision_report(&graphs, config.label_count);
    println!("   non-isomorphic connected graphs: {}", graphs.len());
    for class in &report.classes {
        println!(
            "   e={}: {:6} graphs, {:6} encodings, {:4} colliding pairs",
            class.edges, class.graphs, class.distinct_encodings, class.colliding_pairs
        );
    }
    println!(
        "   => encodings unique up to {} edges",
        report.unique_up_to_edges()
    );
    if let Some(class) = report.classes.iter().find(|c| c.example.is_some()) {
        let (a, b) = class.example.as_ref().expect("checked");
        let names: Vec<String> = (0..config.label_count)
            .map(|i| format!("{}", (b'a' + i as u8) as char))
            .collect();
        let labels = LabelSet::from_names(names).expect("few labels");
        println!(
            "   smallest collision (Fig. 1C style): {} edges",
            class.edges
        );
        println!(
            "     graph A: labels {:?}, edges {:?}",
            a.labels(),
            a.edges()
        );
        println!(
            "     graph B: labels {:?}, edges {:?}",
            b.labels(),
            b.edges()
        );
        println!(
            "     shared encoding: {}",
            a.encoding(config.label_count).render(&labels)
        );
    }
    println!();
}

fn main() {
    let args = Args::parse();
    let labels = args.get("labels", 2usize);
    // With LCG loops (the worst case: a single label is all-loops).
    let loops_edges = args.get("max-edges-loops", 5usize);
    report(
        "LCG with self loops (expect uniqueness up to 4 edges)",
        &EnumerationConfig::unrestricted(1, loops_edges),
    );
    report(
        "LCG with self loops, 2 labels",
        &EnumerationConfig::unrestricted(labels.min(2), loops_edges),
    );
    // Loop-free LCG.
    let free_edges = args.get("max-edges", 6usize);
    report(
        "loop-free LCG (expect uniqueness up to 5 edges)",
        &EnumerationConfig::loop_free(labels.max(2), free_edges),
    );
}
