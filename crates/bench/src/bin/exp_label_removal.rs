//! Experiment E8 — Fig. 5D–F: label-prediction Macro-F1 as node labels are
//! progressively removed from the graph (replaced by an artificial
//! `unlabeled` label), at a fixed 90% training size (paper §4.3.6).
//! Embedding baselines ignore labels and appear as flat lines.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_label_removal [-- --scale small --per-label 100]
//! ```

use hsgf_bench::{label_datasets, Args};
use hsgf_eval::features::FeatureFamily;
use hsgf_eval::label::{label_removal_sweep, LabelTaskConfig};
use hsgf_eval::report::{fmt_ci, render_series};

fn main() {
    let args = Args::parse();
    let config = LabelTaskConfig {
        nodes_per_label: args.get("per-label", 100),
        emax: args.get("emax", 4),
        embed_budget: args.get("embed-budget", 0.25),
        repeats: args.get("repeats", 5),
        seed: args.get("seed", 0xE7A1),
        ..LabelTaskConfig::default()
    };
    let fractions: Vec<f64> = (0..=5).map(|i| i as f64 * 0.15).collect();
    for (name, graph) in label_datasets(args.scale()) {
        eprintln!("label removal on {name} ({} nodes)...", graph.node_count());
        let sweep = label_removal_sweep(&graph, &config, &fractions, &FeatureFamily::LABEL_TASK);
        println!("== Figure 5 D-F ({name}) — Macro F1 vs. removed labels (90% training)");
        let xs: Vec<String> = sweep
            .fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect();
        let series: Vec<(String, Vec<String>)> = sweep
            .results
            .iter()
            .map(|(family, points)| {
                (
                    family.name().to_string(),
                    points.iter().map(|p| fmt_ci(p.mean, p.ci95)).collect(),
                )
            })
            .collect();
        print!("{}", render_series("removed", &xs, &series));
        println!();
    }
}
