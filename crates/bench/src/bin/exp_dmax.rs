//! Experiment E5 — Table 2: Macro-F1 of subgraph features as the `dmax`
//! hub-cutoff percentile varies (paper §4.3.4).
//!
//! As in the paper, the `100%` (`dmax = ∞`) column is only measured for the
//! sparse IMDB network: on the dense LOAD and hub-heavy MAG networks the
//! unbounded census "did not finish due to the large number of subgraphs
//! that are introduced by hubs" — the same economics apply here, so those
//! cells print `–`. Pass `--full` to force-measure them anyway.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_dmax [-- --scale small --per-label 60]
//! ```

use hsgf_bench::{label_datasets, Args};
use hsgf_eval::label::{dmax_sweep, LabelTaskConfig};
use hsgf_eval::report::render_table;

fn main() {
    let args = Args::parse();
    let percentiles = [90.0, 92.0, 94.0, 96.0, 98.0, 100.0];
    let config = LabelTaskConfig {
        nodes_per_label: args.get("per-label", 100),
        emax: args.get("emax", 4),
        repeats: args.get("repeats", 5),
        seed: args.get("seed", 0xE7A1),
        ..LabelTaskConfig::default()
    };
    println!("== Table 2 — Macro F1 vs. dmax percentile (subgraph features)");
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(percentiles.iter().map(|p| format!("{p:.0}%")))
        .collect();
    let mut rows = Vec::new();
    for (name, graph) in label_datasets(args.scale()) {
        eprintln!("sweeping {name} ({} nodes)...", graph.node_count());
        // The unbounded column is feasible only on the sparse IMDB network
        // (paper Table 2 prints '–' for LOAD and MAG at 100%).
        let measurable: Vec<f64> = percentiles
            .iter()
            .copied()
            .filter(|&p| p < 100.0 || name == "IMDB" || args.flag("full"))
            .collect();
        let sweep = dmax_sweep(&graph, &config, &measurable);
        let mut row = vec![name.to_string()];
        for &p in &percentiles {
            match sweep.iter().find(|(q, _)| (q - p).abs() < 1e-9) {
                Some((_, point)) => row.push(format!("{:.2}", point.mean)),
                None => row.push("–".to_string()),
            }
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("('–' = dmax=∞ not measured on dense networks, as in the paper)");
}
