//! Experiment A5 (extension) — observed hash-collision rates of the two
//! rolling-hash schemes on real censuses.
//!
//! The paper's formula (5) sums per-node row values that are *linear* in
//! the neighbour counts, so the subgraph hash depends only on the multiset
//! of edge label pairs: a single-label star K_{1,3} and path P_4 collide
//! structurally. This binary measures how much that costs in practice by
//! counting, per dataset, the distinct encodings that share a hash under
//! (a) the paper-literal linear scheme and (b) the mixed scheme this
//! implementation defaults to.
//!
//! ```text
//! cargo run -p hsgf-bench --release --bin exp_hash_collisions [-- --scale tiny]
//! ```

use std::collections::HashMap;

use hsgf_bench::{label_datasets, Args};
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::hash::{HashScheme, LabelBases};
use hsgf_eval::report::render_table;
use hsgf_graph::{DegreeStats, NodeId};

fn main() {
    let args = Args::parse();
    let emax = args.get("emax", 4usize);
    let sample = args.get("sample", 150usize);
    println!("== Hash-scheme collision rates (emax={emax})");
    let header: Vec<String> = [
        "dataset",
        "encodings",
        "linear hashes",
        "linear lost",
        "mixed hashes",
        "mixed lost",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (name, graph) in label_datasets(args.scale()) {
        let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
        let config = CensusConfig::default().with_emax(emax).with_dmax(dmax);
        let engine = CensusEngine::new(&graph, config).expect("valid config");
        let mut scratch = engine.make_scratch();
        let bases = LabelBases::new(graph.label_count(), engine.config().hash_seed);
        // Union of encodings discovered around a root sample.
        let mut encodings: HashMap<hsgf_core::Encoding, ()> = HashMap::new();
        let step = (graph.node_count() / sample.max(1)).max(1);
        for v in (0..graph.node_count()).step_by(step) {
            let census = engine
                .census_encodings(NodeId::new(v as u32), &mut scratch)
                .expect("valid");
            for enc in census.counts.into_keys() {
                encodings.insert(enc, ());
            }
        }
        let total = encodings.len();
        let mut row = vec![name.to_string(), total.to_string()];
        for scheme in [HashScheme::Linear, HashScheme::Mixed] {
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for enc in encodings.keys() {
                *seen.entry(bases.hash_encoding(enc, scheme)).or_insert(0) += 1;
            }
            let distinct = seen.len();
            let lost = total - distinct;
            row.push(distinct.to_string());
            row.push(format!(
                "{lost} ({:.2}%)",
                100.0 * lost as f64 / total.max(1) as f64
            ));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("('lost' = distinct encodings indistinguishable after hashing; the census");
    println!(" in hash-only mode merges their counts into one feature)");
}
