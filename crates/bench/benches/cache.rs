//! Census cache benchmark: cold-vs-warm extraction on the MAG-style
//! rank-prediction graph. The warm run replaces every per-root census
//! with a fingerprint + lookup, so its speedup over cold/uncached is the
//! cache's value proposition; `fingerprint-only` isolates the fixed cost
//! every cached run pays even on a 100 % hit rate. A metrics snapshot
//! with the cache counters rides along for `scripts/bench_diff.sh`
//! (runtime section only — hit counts are never diffed deterministically).

use hsgf_bench::mag_corpus;
use hsgf_bench::runner::Runner;
use hsgf_core::cache::CensusCache;
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::parallel::{extract_feature_matrix, extract_feature_matrix_cached};
use hsgf_core::steal::SchedulerKind;
use hsgf_core::Obs;
use hsgf_data::Scale;
use hsgf_graph::fingerprint::{neighborhood_fingerprint_with, FingerprintScratch};
use hsgf_graph::NodeId;

fn main() {
    let mut runner = Runner::new("cache");
    let data = mag_corpus(Scale::Tiny);
    let (graph, _institutions) = data.rank_graph(0, 2009);
    let roots: Vec<NodeId> = graph.nodes().collect();
    let config = CensusConfig::default().with_emax(3);
    let engine = CensusEngine::new(&graph, config).expect("valid config");
    println!(
        "MAG rank graph (conference 0, year 2009): {} nodes, {} edges, {} roots, emax 3\n",
        graph.node_count(),
        graph.edge_count(),
        roots.len()
    );

    let mut group = runner.group("cache/mag-rank");
    group.bench_function("nocache", || {
        extract_feature_matrix(&engine, &roots, 1)
            .expect("valid roots")
            .row_count()
    });
    // Cold: a fresh cache every iteration — full extraction plus the
    // fingerprint/store overhead, the worst case for the cache.
    group.bench_function("cold", || {
        let cache = CensusCache::in_memory();
        extract_feature_matrix_cached(&engine, &roots, 1, SchedulerKind::Cursor, &cache)
            .expect("valid roots")
            .row_count()
    });
    // Warm: the cache already holds every root, so each iteration is
    // fingerprints + lookups + matrix assembly only.
    let warm = CensusCache::in_memory();
    extract_feature_matrix_cached(&engine, &roots, 1, SchedulerKind::Cursor, &warm)
        .expect("valid roots");
    group.bench_function("warm", || {
        extract_feature_matrix_cached(&engine, &roots, 1, SchedulerKind::Cursor, &warm)
            .expect("valid roots")
            .row_count()
    });
    // The fixed per-run cost of keying alone.
    let mut scratch = FingerprintScratch::new();
    group.bench_function("fingerprint-only", || {
        let mut acc = 0u64;
        for &root in &roots {
            acc ^= neighborhood_fingerprint_with(&graph, root, 3, &mut scratch);
        }
        acc
    });
    group.finish();

    // One observed cold+warm pair so the cache counters land in the
    // attached snapshot (runtime section; excluded from deterministic
    // counter diffs by design).
    let obs = Obs::enabled();
    let observed_engine = CensusEngine::new(&graph, engine.config().clone())
        .expect("valid config")
        .with_obs(obs.clone());
    let cache = CensusCache::in_memory().with_obs(obs.clone());
    for _ in 0..2 {
        extract_feature_matrix_cached(&observed_engine, &roots, 1, SchedulerKind::Cursor, &cache)
            .expect("valid roots");
    }
    runner.attach("obs_metrics", obs.snapshot().to_json());
    runner.finish();
}
