//! By-node parallel scaling (A4, paper §3.2 "Parallel Space Complexity"):
//! extraction wall time vs. worker count.

use hsgf_bench::runner::Runner;
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::parallel::{
    extract_hash_censuses, extract_hash_censuses_stats, extract_hash_censuses_with,
};
use hsgf_core::steal::SchedulerKind;
use hsgf_core::supervisor::{ExtractionPolicy, Supervisor};
use hsgf_data::{LoadConfig, LoadData, Scale};
use hsgf_graph::{DegreeStats, GraphBuilder, HetGraph, Label, NodeId};

/// A hub-skewed graph: a few very wide hubs whose rooted censuses dwarf the
/// rest, plus mixed-label spokes with a ring so subtrees are non-trivial.
/// The worst case for static per-root scheduling — one worker inherits a
/// hub and the others idle — and the motivating case for work stealing.
fn hub_skewed_graph(hubs: usize, spokes_per_hub: usize) -> HetGraph {
    let mut b = GraphBuilder::with_label_names(["hub", "x", "y", "z"]).expect("labels");
    let mut all_spokes = Vec::new();
    for _ in 0..hubs {
        let hub = b.add_node_with(Label::new(0)).expect("node");
        let spokes: Vec<NodeId> = (0..spokes_per_hub)
            .map(|i| {
                b.add_node_with(Label::new(1 + (i % 3) as u8))
                    .expect("node")
            })
            .collect();
        for &s in &spokes {
            b.add_edge(hub, s).expect("edge");
        }
        for w in spokes.windows(2) {
            b.add_edge(w[0], w[1]).expect("edge");
        }
        all_spokes.extend(spokes);
    }
    // A sparse tail of leaf pairs so most roots are cheap.
    for i in 0..(hubs * spokes_per_hub) {
        let a = b
            .add_node_with(Label::new(1 + (i % 3) as u8))
            .expect("node");
        let c = b
            .add_node_with(Label::new(1 + ((i + 1) % 3) as u8))
            .expect("node");
        b.add_edge(a, c).expect("edge");
    }
    b.build()
}

fn main() {
    let mut runner = Runner::new("parallel");
    let graph = LoadData::generate(&LoadConfig::at_scale(Scale::Tiny)).graph;
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let config = CensusConfig::default().with_emax(3).with_dmax(dmax);
    let engine = CensusEngine::new(&graph, config.clone()).expect("valid");
    let roots: Vec<NodeId> = graph.nodes().step_by(2).collect();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads_axis = {
        let mut seen = Vec::new();
        for threads in [1usize, 2, 4, max_threads] {
            if threads <= max_threads && !seen.contains(&threads) {
                seen.push(threads);
            }
        }
        seen
    };
    let mut group = runner.group("parallel");
    for &threads in &threads_axis {
        group.bench_function(threads, || {
            extract_hash_censuses(&engine, &roots, threads).expect("valid roots")
        });
    }
    group.finish();
    // Supervised extraction (panic isolation + per-root outcomes) over the
    // same roots: measures the fault-tolerance overhead vs. the plain path.
    let supervisor = Supervisor::new(&graph, config, ExtractionPolicy::default()).expect("valid");
    let mut group = runner.group("parallel/supervised");
    for &threads in &threads_axis {
        group.bench_function(threads, || {
            let partial = supervisor.extract(&roots, threads);
            assert!(partial.is_complete());
            partial.matrix.nnz()
        });
    }
    group.finish();
    // Scheduler comparison (cursor vs. work stealing) at full parallelism,
    // on a balanced graph (stealing should roughly tie) and a hub-skewed
    // one (stealing should win by splitting the hubs into shards). On a
    // single-core host both schedulers serialise onto the one CPU and tie;
    // set HSGF_BENCH_THREADS to the worker count to model instead.
    let bench_threads = std::env::var("HSGF_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(max_threads);
    let mut group = runner.group("parallel/stealing");
    for scheduler in [SchedulerKind::Cursor, SchedulerKind::Stealing] {
        group.bench_function(format!("balanced/{scheduler}"), || {
            extract_hash_censuses_with(&engine, &roots, bench_threads, scheduler)
                .expect("valid roots")
        });
    }
    let skewed = hub_skewed_graph(1, 256);
    let skew_config = CensusConfig::default().with_emax(3);
    let skew_engine = CensusEngine::new(&skewed, skew_config).expect("valid");
    let skew_roots: Vec<NodeId> = skewed.nodes().collect();
    for scheduler in [SchedulerKind::Cursor, SchedulerKind::Stealing] {
        group.bench_function(format!("hub-skewed/{scheduler}"), || {
            extract_hash_censuses_with(&skew_engine, &skew_roots, bench_threads, scheduler)
                .expect("valid roots")
        });
    }
    group.finish();

    // Makespan model: the wall clock a multi-core host would see is the
    // busiest worker's serial task list. Build each scheduler's assignment
    // for MODEL_WORKERS workers from real measured per-task times (greedy
    // earliest-free-worker, the behaviour of both dynamic schedulers), then
    // *execute* the critical worker's tasks serially inside the benched
    // closure. Cursor's unit of work is a whole root, so its makespan is
    // floored by the hub root; stealing splits wide roots into shards and
    // spreads them. This measures scheduling quality independently of how
    // many physical cores the bench host has.
    const MODEL_WORKERS: usize = 8;
    const SPLIT_WIDTH: usize = 48; // keep in sync with hsgf_core::parallel
    let mut scratch = skew_engine.make_scratch();
    let time_of = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    // Task set per scheduler: (cost, execute-closure-input) where a task is
    // either a whole root or one shard of a wide root.
    #[derive(Clone, Copy)]
    enum Task {
        Root(NodeId),
        Shard(NodeId, usize, usize),
    }
    let run_task = |engine: &CensusEngine, scratch: &mut hsgf_core::CensusScratch, t: Task| match t
    {
        Task::Root(r) => {
            engine.census_hashes(r, scratch).expect("valid root");
        }
        Task::Shard(r, lo, hi) => {
            engine
                .census_hashes_shard(
                    r,
                    scratch,
                    (lo, hi),
                    &hsgf_core::CensusBudget::unlimited(),
                    None,
                    None,
                )
                .expect("valid shard");
        }
    };
    let mut cursor_tasks: Vec<(f64, Task)> = Vec::new();
    let mut stealing_tasks: Vec<(f64, Task)> = Vec::new();
    for &root in &skew_roots {
        let t = Task::Root(root);
        let cost = time_of(&mut || run_task(&skew_engine, &mut scratch, t));
        cursor_tasks.push((cost, t));
        let width = skew_engine.root_width(root);
        if width >= SPLIT_WIDTH {
            let parts = (MODEL_WORKERS * 2).min(width);
            let chunk = width.div_ceil(parts);
            for k in 0..parts {
                let lo = k * chunk;
                let hi = if k + 1 == parts {
                    usize::MAX
                } else {
                    lo + chunk
                };
                let t = Task::Shard(root, lo, hi);
                let cost = time_of(&mut || run_task(&skew_engine, &mut scratch, t));
                stealing_tasks.push((cost, t));
            }
        } else {
            stealing_tasks.push((cost, t));
        }
    }
    // Greedy earliest-free-worker assignment, heaviest tasks first (the
    // steal pool seeds hub roots first for the same reason); returns the
    // busiest worker's tasks.
    let critical_worker = |tasks: &[(f64, Task)]| -> Vec<Task> {
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| tasks[b].0.total_cmp(&tasks[a].0));
        let mut load = [0.0f64; MODEL_WORKERS];
        let mut assigned: Vec<Vec<Task>> = vec![Vec::new(); MODEL_WORKERS];
        for i in order {
            let w = (0..MODEL_WORKERS)
                .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                .expect("nonempty");
            load[w] += tasks[i].0;
            assigned[w].push(tasks[i].1);
        }
        let w = (0..MODEL_WORKERS)
            .max_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("nonempty");
        assigned[w].clone()
    };
    let cursor_critical = critical_worker(&cursor_tasks);
    let stealing_critical = critical_worker(&stealing_tasks);
    let mut group = runner.group("parallel/stealing/makespan8");
    group.bench_function("cursor", || {
        for &t in &cursor_critical {
            run_task(&skew_engine, &mut scratch, t);
        }
    });
    group.bench_function("stealing", || {
        for &t in &stealing_critical {
            run_task(&skew_engine, &mut scratch, t);
        }
    });
    group.finish();
    let counter_threads = bench_threads.max(MODEL_WORKERS);
    // Run the counted extraction through an observed engine: the printed
    // StealStats now come from the same registry as the attached snapshot,
    // so results/stealing_bench.md is reproducible from the suite JSON.
    let obs = hsgf_core::Obs::enabled();
    let counted_engine = CensusEngine::new(&skewed, CensusConfig::default().with_emax(3))
        .expect("valid")
        .with_obs(obs.clone());
    let (_, stats) = extract_hash_censuses_stats(&counted_engine, &skew_roots, counter_threads)
        .expect("valid roots");
    eprintln!("stealing counters (hub-skewed, {counter_threads} workers): {stats}");
    runner.attach("obs_metrics", obs.snapshot().to_json());
    runner.finish();
}
