//! By-node parallel scaling (A4, paper §3.2 "Parallel Space Complexity"):
//! extraction wall time vs. worker count.

use hsgf_bench::runner::Runner;
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::parallel::extract_hash_censuses;
use hsgf_core::supervisor::{ExtractionPolicy, Supervisor};
use hsgf_data::{LoadConfig, LoadData, Scale};
use hsgf_graph::{DegreeStats, NodeId};

fn main() {
    let mut runner = Runner::new("parallel");
    let graph = LoadData::generate(&LoadConfig::at_scale(Scale::Tiny)).graph;
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let config = CensusConfig::default().with_emax(3).with_dmax(dmax);
    let engine = CensusEngine::new(&graph, config.clone()).expect("valid");
    let roots: Vec<NodeId> = graph.nodes().step_by(2).collect();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads_axis = {
        let mut seen = Vec::new();
        for threads in [1usize, 2, 4, max_threads] {
            if threads <= max_threads && !seen.contains(&threads) {
                seen.push(threads);
            }
        }
        seen
    };
    let mut group = runner.group("parallel");
    for &threads in &threads_axis {
        group.bench_function(threads, || {
            extract_hash_censuses(&engine, &roots, threads).expect("valid roots")
        });
    }
    group.finish();
    // Supervised extraction (panic isolation + per-root outcomes) over the
    // same roots: measures the fault-tolerance overhead vs. the plain path.
    let supervisor = Supervisor::new(&graph, config, ExtractionPolicy::default()).expect("valid");
    let mut group = runner.group("parallel/supervised");
    for &threads in &threads_axis {
        group.bench_function(threads, || {
            let partial = supervisor.extract(&roots, threads);
            assert!(partial.is_complete());
            partial.matrix.nnz()
        });
    }
    group.finish();
    runner.finish();
}
