//! Observability overhead guard: the census with a disabled (default)
//! [`hsgf_core::Obs`] handle must stay within noise of itself before the
//! obs layer existed — the hot path counts into plain per-scratch `u64`s
//! and the per-run flush is a no-op when the handle is disabled. The
//! enabled path is benched alongside to show the real (small) cost of the
//! sharded registry, and micro-benches isolate the per-call cost of the
//! handle itself.

use hsgf_bench::runner::Runner;
use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::{Metric, Obs};
use hsgf_data::{LoadConfig, LoadData, Scale};
use hsgf_graph::{DegreeStats, NodeId};

fn main() {
    let mut runner = Runner::new("obs");
    let graph = LoadData::generate(&LoadConfig::at_scale(Scale::Tiny)).graph;
    let roots: Vec<NodeId> = graph.nodes().step_by(13).take(12).collect();
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let config = CensusConfig::default().with_emax(3).with_dmax(dmax);

    let run_with = |obs: Obs| {
        let engine = CensusEngine::new(&graph, config.clone())
            .expect("valid config")
            .with_obs(obs);
        let mut scratch = engine.make_scratch();
        let mut total = 0u64;
        for &root in &roots {
            let counts = engine
                .census_hashes(root, &mut scratch)
                .expect("valid root");
            total += counts.values().sum::<u64>();
        }
        total
    };

    let mut group = runner.group("obs/census");
    group.bench_function("disabled", || run_with(Obs::disabled()));
    group.bench_function("enabled", || run_with(Obs::enabled()));
    group.finish();

    // Per-call handle overhead in isolation. The disabled case is the one
    // every non-observed run pays on flush boundaries.
    let disabled = Obs::disabled();
    let enabled = Obs::enabled();
    let mut group = runner.group("obs/incr");
    group.bench_function("disabled", || {
        disabled.incr(Metric::SubgraphsEnumerated);
    });
    group.bench_function("enabled", || {
        enabled.incr(Metric::SubgraphsEnumerated);
    });
    group.finish();

    // A snapshot of the enabled census run rides along so bench diffs can
    // check the counters stayed identical while timings moved.
    let obs = Obs::enabled();
    let engine = CensusEngine::new(&graph, config.clone())
        .expect("valid config")
        .with_obs(obs.clone());
    let mut scratch = engine.make_scratch();
    for &root in &roots {
        engine
            .census_hashes(root, &mut scratch)
            .expect("valid root");
    }
    runner.attach("obs_metrics", obs.snapshot().to_json());
    runner.finish();
}
