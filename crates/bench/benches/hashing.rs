//! Hashing-strategy ablation (A1, paper §3.2 "Hashing Optimization"):
//! the rolling integer hash (mixed and paper-literal linear variants)
//! against the "materialize the encoding and hash its bytes" strategy the
//! paper argues against.

use hsgf_bench::runner::Runner;
use hsgf_core::census::{CensusConfig, CensusEngine, CensusSink, SubgraphView};
use hsgf_core::hash::{fnv1a_encoding_hash, HashScheme};
use hsgf_data::{ImdbConfig, ImdbData, Scale};
use hsgf_graph::NodeId;

/// Consumes the rolling hash only (the paper's fast path).
struct RollingSink {
    acc: u64,
}
impl CensusSink for RollingSink {
    fn record(&mut self, _view: &SubgraphView<'_>, hash: u64, multiplicity: u64) {
        self.acc = self.acc.wrapping_add(hash.wrapping_mul(multiplicity));
    }
}

/// Rebuilds the sorted encoding and string-hashes it per record (the
/// strategy the rolling hash replaces).
struct EncodeHashSink {
    acc: u64,
}
impl CensusSink for EncodeHashSink {
    fn record(&mut self, view: &SubgraphView<'_>, _hash: u64, multiplicity: u64) {
        let enc = view.encoding();
        self.acc = self
            .acc
            .wrapping_add(fnv1a_encoding_hash(&enc).wrapping_mul(multiplicity));
    }
}

fn main() {
    let mut runner = Runner::new("hashing");
    let graph = ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny)).graph;
    let roots: Vec<NodeId> = graph.nodes().take(24).collect();
    let mut group = runner.group("hashing");
    for (name, scheme) in [
        ("rolling-mixed", HashScheme::Mixed),
        ("rolling-linear", HashScheme::Linear),
    ] {
        let mut config = CensusConfig::default().with_emax(4);
        config.hash_scheme = scheme;
        let engine = CensusEngine::new(&graph, config).expect("valid");
        let mut scratch = engine.make_scratch();
        group.bench_function(name, || {
            let mut sink = RollingSink { acc: 0 };
            for &root in &roots {
                engine
                    .run(root, &mut scratch, &mut sink)
                    .expect("valid root");
            }
            sink.acc
        });
    }
    {
        let config = CensusConfig::default().with_emax(4);
        let engine = CensusEngine::new(&graph, config).expect("valid");
        let mut scratch = engine.make_scratch();
        group.bench_function("encode-and-fnv", || {
            let mut sink = EncodeHashSink { acc: 0 };
            for &root in &roots {
                engine
                    .run(root, &mut scratch, &mut sink)
                    .expect("valid root");
            }
            sink.acc
        });
    }
    group.finish();
    runner.finish();
}
