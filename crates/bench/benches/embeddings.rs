//! Embedding-baseline microbenchmarks: walk generation and training cost
//! per method (the Table 3 comparison at bench scale).

use criterion::{criterion_group, criterion_main, Criterion};
use hsgf_data::{ImdbConfig, ImdbData, Scale};
use hsgf_embed::walks::{node2vec_walks, uniform_walks};
use hsgf_embed::EmbeddingKind;

fn bench(c: &mut Criterion) {
    let graph = ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny)).graph;
    c.bench_function("embed/uniform_walks", |b| {
        b.iter(|| uniform_walks(&graph, 2, 20, 7))
    });
    c.bench_function("embed/node2vec_walks", |b| {
        b.iter(|| node2vec_walks(&graph, 2, 20, 0.5, 2.0, 7))
    });
    for kind in EmbeddingKind::ALL {
        c.bench_function(&format!("embed/train_{}", kind.name()), |b| {
            b.iter(|| kind.train(&graph, 32, 0.05, 7))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
