//! Embedding-baseline microbenchmarks: walk generation and training cost
//! per method (the Table 3 comparison at bench scale).

use hsgf_bench::runner::Runner;
use hsgf_data::{ImdbConfig, ImdbData, Scale};
use hsgf_embed::walks::{node2vec_walks, uniform_walks};
use hsgf_embed::EmbeddingKind;

fn main() {
    let mut runner = Runner::new("embeddings");
    let graph = ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny)).graph;
    runner.bench_function("embed/uniform_walks", || uniform_walks(&graph, 2, 20, 7));
    runner.bench_function("embed/node2vec_walks", || {
        node2vec_walks(&graph, 2, 20, 0.5, 2.0, 7)
    });
    for kind in EmbeddingKind::ALL {
        runner.bench_function(&format!("embed/train_{}", kind.name()), || {
            kind.train(&graph, 32, 0.05, 7)
        });
    }
    runner.finish();
}
