//! Census throughput benchmarks (ablations A2 and A3):
//! emax scaling (§3.1: subgraph count grows roughly exponentially with
//! subgraph size), the heterogeneous grouping heuristic on/off (§3.2), and
//! the dmax hub cutoff (§3.2 / §4.3.4).

use hsgf_bench::runner::Runner;
use hsgf_core::census::{CensusConfig, CensusEngine, CountingSink};
use hsgf_core::CensusBudget;
use hsgf_data::{LoadConfig, LoadData, Scale};
use hsgf_graph::{DegreeStats, NodeId};

fn bench_graph() -> hsgf_graph::HetGraph {
    LoadData::generate(&LoadConfig::at_scale(Scale::Tiny)).graph
}

fn roots(graph: &hsgf_graph::HetGraph) -> Vec<NodeId> {
    graph.nodes().step_by(13).take(12).collect()
}

fn run_census(graph: &hsgf_graph::HetGraph, config: CensusConfig, roots: &[NodeId]) -> u64 {
    let engine = CensusEngine::new(graph, config).expect("valid config");
    let mut scratch = engine.make_scratch();
    let mut sink = CountingSink::default();
    for &root in roots {
        engine
            .run(root, &mut scratch, &mut sink)
            .expect("valid root");
    }
    sink.total
}

fn emax_scaling(runner: &mut Runner) {
    let graph = bench_graph();
    let roots = roots(&graph);
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let mut group = runner.group("census/emax");
    for emax in [2usize, 3, 4] {
        let config = CensusConfig::default().with_emax(emax).with_dmax(dmax);
        group.bench_function(emax, || run_census(&graph, config.clone(), &roots));
    }
    group.finish();
}

fn grouping_heuristic(runner: &mut Runner) {
    let graph = bench_graph();
    let roots = roots(&graph);
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let mut group = runner.group("census/grouping");
    for (name, grouping) in [("on", true), ("off", false)] {
        let mut config = CensusConfig::default().with_emax(4).with_dmax(dmax);
        config.group_by_label = grouping;
        group.bench_function(name, || run_census(&graph, config.clone(), &roots));
    }
    group.finish();
}

fn dmax_cutoff(runner: &mut Runner) {
    let graph = bench_graph();
    let roots = roots(&graph);
    let stats = DegreeStats::of(&graph);
    let mut group = runner.group("census/dmax");
    for pct in [80.0f64, 90.0, 95.0, 100.0] {
        let dmax = if pct >= 100.0 {
            None
        } else {
            Some(stats.degree_at_percentile(pct))
        };
        let config = CensusConfig::default().with_emax(3).with_dmax(dmax);
        group.bench_function(format!("{pct:.0}pct"), || {
            run_census(&graph, config.clone(), &roots)
        });
    }
    group.finish();
}

/// Budget-governance overhead: the budgeted engine path with no limits set
/// must stay within noise of the plain path (the accounting is a counter
/// decrement per record plus an amortized clock poll), and a tripping cap
/// shows the cost floor of an aborted census.
fn budget_overhead(runner: &mut Runner) {
    let graph = bench_graph();
    let roots = roots(&graph);
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let config = CensusConfig::default().with_emax(3).with_dmax(dmax);
    let mut group = runner.group("census/budget");
    group.bench_function("plain", || run_census(&graph, config.clone(), &roots));
    let run_budgeted = |budget: &CensusBudget| {
        let engine = CensusEngine::new(&graph, config.clone()).expect("valid config");
        let mut scratch = engine.make_scratch();
        let mut sink = CountingSink::default();
        for &root in &roots {
            let mut local = CountingSink::default();
            match engine.run_budgeted(root, &mut scratch, &mut local, budget, None) {
                Ok(()) | Err(hsgf_core::census::CensusError::BudgetExhausted { .. }) => {
                    sink.total += local.total;
                }
                Err(e) => panic!("unexpected census error: {e}"),
            }
        }
        sink.total
    };
    let unlimited = CensusBudget::unlimited();
    group.bench_function("unlimited", || run_budgeted(&unlimited));
    let capped = CensusBudget::unlimited().with_max_subgraphs(500);
    group.bench_function("cap500", || run_budgeted(&capped));
    group.finish();
}

/// One observed pass over the bench workload, attached to the suite JSON so
/// `scripts/bench_diff.sh` can flag counter drift (a behaviour change)
/// separately from timing drift (noise or perf).
fn attach_metrics(runner: &mut Runner) {
    let graph = bench_graph();
    let roots = roots(&graph);
    let dmax = Some(DegreeStats::of(&graph).degree_at_percentile(90.0));
    let config = CensusConfig::default().with_emax(3).with_dmax(dmax);
    let obs = hsgf_core::Obs::enabled();
    let engine = CensusEngine::new(&graph, config)
        .expect("valid config")
        .with_obs(obs.clone());
    let mut scratch = engine.make_scratch();
    for &root in &roots {
        engine
            .census_hashes(root, &mut scratch)
            .expect("valid root");
    }
    runner.attach("obs_metrics", obs.snapshot().to_json());
}

fn main() {
    let mut runner = Runner::new("census");
    emax_scaling(&mut runner);
    grouping_heuristic(&mut runner);
    dmax_cutoff(&mut runner);
    budget_overhead(&mut runner);
    attach_metrics(&mut runner);
    runner.finish();
}
