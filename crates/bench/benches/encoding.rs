//! Encoding-layer microbenchmarks: characteristic-sequence construction,
//! canonicalization, and exact isomorphism (the machinery the census
//! avoids on its hot path).

use hsgf_bench::runner::Runner;
use hsgf_core::sequence::Encoding;
use hsgf_core::small::SmallGraph;
use hsgf_graph::Label;

fn fixtures() -> Vec<(Vec<u8>, Vec<(u8, u8)>)> {
    vec![
        (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
        (vec![0, 1, 0, 1], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
        (
            vec![2, 1, 0, 1, 2],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        ),
        (
            vec![0, 0, 1, 1, 2, 2],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)],
        ),
    ]
}

fn main() {
    let mut runner = Runner::new("encoding");
    let fx = fixtures();
    runner.bench_function("encoding/of_subgraph", || {
        let mut acc = 0usize;
        for (labels, edges) in &fx {
            let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
            let enc = Encoding::of_subgraph(3, &labels, edges);
            acc += enc.as_bytes().len();
        }
        acc
    });
    let graphs: Vec<SmallGraph> = fx
        .iter()
        .map(|(l, e)| SmallGraph::new(l.clone(), e))
        .collect();
    runner.bench_function("encoding/canonical", || {
        let mut acc = 0usize;
        for g in &graphs {
            acc += g.canonical().edge_count();
        }
        acc
    });
    runner.bench_function("encoding/isomorphism", || {
        let mut acc = 0usize;
        for g in &graphs {
            for h in &graphs {
                acc += usize::from(g.is_isomorphic(h));
            }
        }
        acc
    });
    runner.finish();
}
