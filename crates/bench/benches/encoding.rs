//! Encoding-layer microbenchmarks: characteristic-sequence construction,
//! canonicalization, and exact isomorphism (the machinery the census
//! avoids on its hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use hsgf_core::sequence::Encoding;
use hsgf_core::small::SmallGraph;
use hsgf_graph::Label;

fn fixtures() -> Vec<(Vec<u8>, Vec<(u8, u8)>)> {
    vec![
        (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
        (vec![0, 1, 0, 1], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
        (vec![2, 1, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]),
        (
            vec![0, 0, 1, 1, 2, 2],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)],
        ),
    ]
}

fn encoding_build(c: &mut Criterion) {
    let fx = fixtures();
    c.bench_function("encoding/of_subgraph", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (labels, edges) in &fx {
                let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
                let enc = Encoding::of_subgraph(3, &labels, edges);
                acc += enc.as_bytes().len();
            }
            acc
        });
    });
}

fn canonicalization(c: &mut Criterion) {
    let fx = fixtures();
    let graphs: Vec<SmallGraph> =
        fx.iter().map(|(l, e)| SmallGraph::new(l.clone(), e)).collect();
    c.bench_function("encoding/canonical", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for g in &graphs {
                acc += g.canonical().edge_count();
            }
            acc
        });
    });
    c.bench_function("encoding/isomorphism", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for g in &graphs {
                for h in &graphs {
                    acc += usize::from(g.is_isomorphic(h));
                }
            }
            acc
        });
    });
}

criterion_group!(benches, encoding_build, canonicalization);
criterion_main!(benches);
