//! ML-substrate microbenchmarks: the regressors and the classifier at the
//! shapes the rank/label experiments actually use.

use criterion::{criterion_group, criterion_main, Criterion};
use hsgf_ml::dataset::Dataset;
use hsgf_ml::forest::{ForestConfig, RandomForestRegressor};
use hsgf_ml::logreg::{LogisticConfig, OneVsAllClassifier};
use hsgf_ml::tree::TreeConfig;
use hsgf_ml::{BayesianRidge, LinearRegression};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut target = 0.0;
        for j in 0..d {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if j < 5 {
                target += v * (j as f64 + 1.0);
            }
            x.push(v);
        }
        y.push(target + rng.gen_range(-0.1..0.1));
    }
    Dataset::new(x, n, d, y)
}

fn regressors(c: &mut Criterion) {
    let data = synthetic(400, 60, 1);
    c.bench_function("ml/ols_60d", |b| b.iter(|| LinearRegression::fit(&data)));
    c.bench_function("ml/bayes_ridge_60d", |b| b.iter(|| BayesianRidge::fit(&data)));
    let forest_config = ForestConfig {
        n_estimators: 20,
        tree: TreeConfig { max_features: Some(8), ..TreeConfig::default() },
        ..ForestConfig::default()
    };
    c.bench_function("ml/forest_20x400", |b| {
        b.iter(|| RandomForestRegressor::fit(&data, &forest_config))
    });
}

fn classifier(c: &mut Criterion) {
    let n = 300;
    let d = 40;
    let mut rng = SmallRng::seed_from_u64(2);
    let mut x = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for j in 0..d {
            let centre = if j % 3 == class { 1.0 } else { 0.0 };
            x.push(centre + rng.gen_range(-0.5..0.5));
        }
        labels.push(class);
    }
    let data = Dataset::new(x, n, d, vec![0.0; n]);
    c.bench_function("ml/logreg_ova_3x300", |b| {
        b.iter(|| OneVsAllClassifier::fit(&data, &labels, &LogisticConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regressors, classifier
}
criterion_main!(benches);
