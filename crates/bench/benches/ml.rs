//! ML-substrate microbenchmarks: the regressors and the classifier at the
//! shapes the rank/label experiments actually use.

use hsgf_bench::runner::Runner;
use hsgf_graph::rng::Rng;
use hsgf_ml::dataset::Dataset;
use hsgf_ml::forest::{ForestConfig, RandomForestRegressor};
use hsgf_ml::logreg::{LogisticConfig, OneVsAllClassifier};
use hsgf_ml::tree::TreeConfig;
use hsgf_ml::{BayesianRidge, LinearRegression};

fn synthetic(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::from_seed(seed);
    let mut x = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut target = 0.0;
        for j in 0..d {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if j < 5 {
                target += v * (j as f64 + 1.0);
            }
            x.push(v);
        }
        y.push(target + rng.gen_range(-0.1..0.1));
    }
    Dataset::new(x, n, d, y)
}

fn regressors(runner: &mut Runner) {
    let data = synthetic(400, 60, 1);
    runner.bench_function("ml/ols_60d", || LinearRegression::fit(&data));
    runner.bench_function("ml/bayes_ridge_60d", || BayesianRidge::fit(&data));
    let forest_config = ForestConfig {
        n_estimators: 20,
        tree: TreeConfig {
            max_features: Some(8),
            ..TreeConfig::default()
        },
        ..ForestConfig::default()
    };
    runner.bench_function("ml/forest_20x400", || {
        RandomForestRegressor::fit(&data, &forest_config)
    });
}

fn classifier(runner: &mut Runner) {
    let n = 300;
    let d = 40;
    let mut rng = Rng::from_seed(2);
    let mut x = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        for j in 0..d {
            let centre = if j % 3 == class { 1.0 } else { 0.0 };
            x.push(centre + rng.gen_range(-0.5..0.5));
        }
        labels.push(class);
    }
    let data = Dataset::new(x, n, d, vec![0.0; n]);
    runner.bench_function("ml/logreg_ova_3x300", || {
        OneVsAllClassifier::fit(&data, &labels, &LogisticConfig::default())
    });
}

fn main() {
    let mut runner = Runner::new("ml");
    regressors(&mut runner);
    classifier(&mut runner);
    runner.finish();
}
