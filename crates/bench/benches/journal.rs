//! Write-ahead journal benchmark: journaled extraction on the MAG-style
//! rank-prediction graph. `off` is the plain supervised extraction;
//! `on` adds a fresh journal (dir creation + one commit-ordered append
//! per root), bounding the durability overhead the `--journal` flag buys;
//! `resume-warm` replays a fully-durable journal, so every root is served
//! from its record and the census itself is skipped entirely — the best
//! case for crash recovery. A metrics snapshot with the journal counters
//! rides along for `scripts/bench_diff.sh` (runtime section only — replay
//! counts are never diffed deterministically).

use hsgf_bench::mag_corpus;
use hsgf_bench::runner::Runner;
use hsgf_core::cache::{config_fingerprint, policy_fingerprint};
use hsgf_core::census::CensusConfig;
use hsgf_core::journal::{roots_hash, Journal, JournalHeader};
use hsgf_core::steal::SchedulerKind;
use hsgf_core::supervisor::{ExtractionPolicy, Supervisor};
use hsgf_core::{Metric, Obs};
use hsgf_data::Scale;
use hsgf_graph::fingerprint::graph_fingerprint;
use hsgf_graph::NodeId;

fn main() {
    let mut runner = Runner::new("journal");
    let data = mag_corpus(Scale::Tiny);
    let (graph, _institutions) = data.rank_graph(0, 2009);
    let roots: Vec<NodeId> = graph.nodes().collect();
    let config = CensusConfig::default().with_emax(4);
    let policy = ExtractionPolicy::default();
    let supervisor = Supervisor::new(&graph, config.clone(), policy.clone()).expect("valid config");
    let header = JournalHeader {
        config: policy_fingerprint(config_fingerprint(&config), &policy),
        graph: graph_fingerprint(&graph),
        roots: roots_hash(&roots),
    };
    println!(
        "MAG rank graph (conference 0, year 2009): {} nodes, {} edges, {} roots, emax 4\n",
        graph.node_count(),
        graph.edge_count(),
        roots.len()
    );

    let base = std::env::temp_dir().join(format!("hsgf-journal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp dir");

    let mut group = runner.group("journal/mag-rank");
    // Baseline: the same supervised extraction the journal wraps.
    group.bench_function("off", || supervisor.extract(&roots, 1).outcomes.len());
    // Journal on, cold: each iteration is one full journaled run —
    // `Journal::create` discards the previous run's segments (exactly what
    // `--journal` without `--resume` does), then pays one commit-ordered
    // append per completed root.
    let on_dir = base.join("on");
    group.bench_function("on", || {
        let journal = Journal::create(&on_dir, &header).expect("fresh journal");
        let partial = supervisor.extract_journaled_with(
            &roots,
            1,
            None,
            None,
            SchedulerKind::Cursor,
            &journal,
            &[],
        );
        partial.outcomes.len()
    });
    // Resume against a complete journal: recovery replays every root's
    // record and no census runs at all.
    let warm_dir = base.join("warm");
    {
        let journal = Journal::create(&warm_dir, &header).expect("warm journal");
        supervisor.extract_journaled_with(
            &roots,
            1,
            None,
            None,
            SchedulerKind::Cursor,
            &journal,
            &[],
        );
    }
    group.bench_function("resume-warm", || {
        let (journal, report) = Journal::resume(&warm_dir, &header, None).expect("resume");
        let partial = supervisor.extract_journaled_with(
            &roots,
            1,
            None,
            None,
            SchedulerKind::Cursor,
            &journal,
            &report.records,
        );
        partial.outcomes.len()
    });
    group.finish();

    // One observed journaled run + resume so the journal counters land in
    // the attached snapshot (runtime section; excluded from deterministic
    // counter diffs by design).
    let obs = Obs::enabled();
    let observed = Supervisor::new(&graph, config, policy)
        .expect("valid config")
        .with_obs(obs.clone());
    let obs_dir = base.join("observed");
    {
        let journal = Journal::create(&obs_dir, &header).expect("observed journal");
        observed.extract_journaled_with(
            &roots,
            1,
            None,
            None,
            SchedulerKind::Cursor,
            &journal,
            &[],
        );
    }
    let (journal, report) = Journal::resume(&obs_dir, &header, None).expect("observed resume");
    observed.extract_journaled_with(
        &roots,
        1,
        None,
        None,
        SchedulerKind::Cursor,
        &journal,
        &report.records,
    );
    let snapshot = obs.snapshot();
    println!(
        "\njournal_appends {}  journal_replays {} ({} roots)",
        snapshot.get(Metric::JournalAppends),
        snapshot.get(Metric::JournalReplays),
        roots.len()
    );
    runner.attach("obs_metrics", snapshot.to_json());
    runner.finish();
    let _ = std::fs::remove_dir_all(&base);
}
