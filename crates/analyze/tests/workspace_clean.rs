//! Self-check: the real workspace must lint clean with the checked-in
//! baseline — the same invariant `scripts/ci.sh` gates on.

use std::fs;
use std::path::Path;

use hsgf_analyze::analyze_root;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = fs::read_to_string(root.join("lint-baseline.txt")).ok();
    let report = analyze_root(&root, baseline.as_deref()).unwrap();
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report.render_human()
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries: {:?}",
        report.stale_baseline
    );
    assert!(
        report.files >= 80,
        "expected to scan the whole workspace, scanned only {} files",
        report.files
    );
}
