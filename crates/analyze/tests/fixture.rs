//! Every shipped lint must fire in the fixture crate exactly at its
//! `hsgf-lint: expect(<id>)`-annotated lines — no extra findings, no
//! missing ones.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use hsgf_analyze::{analyze_root, ALL_LINTS};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint-fixture")
}

/// Collects `(file, line, lint)` expectations from the fixture's
/// `expect` markers: a trailing marker pins its own line, a standalone
/// marker pins the line directly below it.
fn expected(dir: &Path) -> BTreeSet<(String, u32, String)> {
    let marker = "hsgf-lint: expect(";
    let mut out = BTreeSet::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = path
                .strip_prefix(dir)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path).unwrap();
            for (i, line) in text.lines().enumerate() {
                let Some(pos) = line.find(marker) else {
                    continue;
                };
                let rest = &line[pos + marker.len()..];
                let id = rest[..rest.find(')').unwrap()].to_string();
                let standalone = line[..pos].trim().trim_start_matches('/').trim().is_empty();
                let target = if standalone {
                    i as u32 + 2
                } else {
                    i as u32 + 1
                };
                out.insert((rel.clone(), target, id));
            }
        }
    }
    out
}

#[test]
fn fixture_trips_every_lint_at_annotated_lines() {
    let dir = fixture_dir();
    let report = analyze_root(&dir, None).unwrap();
    assert!(
        !report.is_clean(),
        "the fixture must fail the gate (CLI exits non-zero on it)"
    );
    let got: BTreeSet<(String, u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint.to_string()))
        .collect();
    assert_eq!(
        got.len(),
        report.findings.len(),
        "findings must be unique per (file, line, lint)"
    );
    let want = expected(&dir);
    assert_eq!(
        got, want,
        "findings must match the expect() annotations exactly"
    );
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.lint).collect();
    for lint in ALL_LINTS {
        assert!(
            fired.contains(lint),
            "lint {lint} did not fire in the fixture"
        );
    }
    assert_eq!(
        report.suppressed, 1,
        "the justified allow in features.rs must suppress exactly one finding"
    );
}
