//! In-repo static analysis for the hsgf workspace.
//!
//! `hsgf_analyze` is a std-only, zero-dependency lint tool in the same
//! spirit as the hand-rolled JSON layer: a lightweight Rust lexer and
//! itemizer ([`lexer`]) feed a catalogue of project-specific lints (see
//! `lints.rs` module docs) that encode invariants the test suite cannot
//! structurally enforce — determinism of census output, lock acquisition
//! order across the concurrent subsystems, panic-freedom of request and
//! IO paths, atomic-ordering discipline on control flags, and
//! `#![forbid(unsafe_code)]` retention.
//!
//! # Scanning model
//!
//! [`analyze_root`] scans `crates/*/src/**.rs` when the root contains a
//! `crates/` directory (workspace mode), or every `*.rs` under the root
//! otherwise (fixture mode). Files are visited in sorted order and
//! findings are reported deterministically, sorted by `(file, line,
//! lint)`.
//!
//! # Suppressions
//!
//! A finding can be silenced at its site with a plain line comment of
//! the form `hsgf-lint: allow(<lint-id>, <reason>)` — trailing on the
//! offending line, or standalone on the line above (the directive then
//! applies to the next code line). The reason is mandatory; a malformed
//! directive is itself a finding (`bad-suppression`), and a directive
//! that silences nothing is one too (`unused-suppression`), so stale
//! allows cannot accumulate. Doc comments (`///`, `//!`) and block
//! comments are never parsed as directives. The companion marker
//! `hsgf-lint: expect(<lint-id>)` is ignored by the analyzer entirely;
//! the fixture test harness uses it to pin expected findings to lines.
//!
//! # Baseline
//!
//! Grandfathered findings live in a checked-in baseline file: one
//! `lint-id|path|trimmed source line` entry per line (`#` comments
//! allowed). An entry matches any finding with the same lint and path
//! whose anchored source line — trimmed — equals the recorded text, so
//! entries survive unrelated line drift. Matched findings are dropped
//! (counted as `baselined`); entries that match nothing are reported as
//! stale in the report (a warning, not a failure).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
mod lints;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hsgf_core::json::{JsonArray, JsonObject};

use lexer::{itemize, lex, Tok, TokKind};
use lints::{Code, SourceFile};

pub use lints::ALL_LINTS;

/// How severe a finding is. Every catalogue lint reports errors; the
/// distinction exists for the JSON schema and future warning-class lints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Error,
    /// Reported but does not fail the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One lint finding, anchored to a file and 1-based line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint identifier (`det-hash-iter`, `lock-order`, …).
    pub lint: &'static str,
    /// Gate impact.
    pub severity: Severity,
    /// Root-relative path with forward slashes.
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: u32,
    /// Human-oriented explanation.
    pub message: String,
}

/// The result of analyzing one tree.
#[derive(Clone, Debug)]
pub struct Report {
    /// The scanned root, as given.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings that survived suppressions and the baseline, sorted by
    /// `(file, line, lint)`.
    pub findings: Vec<Finding>,
    /// Findings silenced by inline `allow` directives.
    pub suppressed: usize,
    /// Findings absorbed by the baseline file.
    pub baselined: usize,
    /// Baseline entries that matched no finding (verbatim entry text).
    pub stale_baseline: Vec<String>,
}

impl Report {
    /// Whether the gate passes: no error-severity findings remain.
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Renders the report for terminals: one `file:line: [lint] message`
    /// per finding plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} [{}] {}\n",
                f.file, f.line, f.severity, f.lint, f.message
            ));
        }
        for entry in &self.stale_baseline {
            out.push_str(&format!(
                "stale baseline entry (matched nothing): {entry}\n"
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} finding(s), {} suppressed, {} baselined\n",
            self.files,
            self.findings.len(),
            self.suppressed,
            self.baselined
        ));
        out
    }

    /// Renders the report as a single JSON object built with
    /// `hsgf_core::json` (round-trips through `hsgf_core::json::parse`).
    pub fn render_json(&self) -> String {
        let mut findings = JsonArray::new();
        for f in &self.findings {
            findings.push_raw(
                &JsonObject::new()
                    .str("lint", f.lint)
                    .str("severity", &f.severity.to_string())
                    .str("file", &f.file)
                    .uint("line", u64::from(f.line))
                    .str("message", &f.message)
                    .finish(),
            );
        }
        let mut stale = JsonArray::new();
        for entry in &self.stale_baseline {
            stale.push_str(entry);
        }
        JsonObject::new()
            .uint("version", 1)
            .str("root", &self.root)
            .uint("files", self.files as u64)
            .raw("findings", &findings.finish())
            .uint("suppressed", self.suppressed as u64)
            .uint("baselined", self.baselined as u64)
            .raw("stale_baseline", &stale.finish())
            .finish()
    }
}

/// An inline `allow` directive awaiting a finding to silence.
struct Suppression {
    lint: String,
    /// Line the directive applies to (its own for trailing comments, the
    /// next code line for standalone ones).
    target: u32,
    /// Line of the comment itself (anchor for `unused-suppression`).
    comment_line: u32,
    used: bool,
}

/// Extracts suppression directives (and malformed-directive findings)
/// from one file's tokens.
fn parse_suppressions(file: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    let toks: &[Tok] = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment || !t.text.starts_with("//") {
            continue;
        }
        let tail = &t.text[2..];
        if tail.starts_with('/') || tail.starts_with('!') {
            continue; // doc comments are documentation, not directives
        }
        let body = tail.trim();
        let Some(rest) = body.strip_prefix("hsgf-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest.starts_with("expect(") {
            continue; // fixture-harness marker, not an analyzer directive
        }
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|inner| inner.rfind(')').map(|p| &inner[..p]))
            .and_then(|inner| {
                let (id, reason) = inner.split_once(',')?;
                let (id, reason) = (id.trim(), reason.trim());
                if reason.is_empty() {
                    return None;
                }
                Some(id.to_string())
            });
        let Some(id) = parsed else {
            bad.push(Finding {
                lint: "bad-suppression",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "malformed directive `{body}`; expected \
                     `hsgf-lint: allow(<lint-id>, <reason>)` with a non-empty reason"
                ),
            });
            continue;
        };
        if !ALL_LINTS.contains(&id.as_str()) {
            bad.push(Finding {
                lint: "bad-suppression",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: t.line,
                message: format!("unknown lint id `{id}` in allow directive"),
            });
            continue;
        }
        // Trailing (code earlier on the same line) applies to its own
        // line; standalone applies to the next code line.
        let trailing = toks[..i]
            .iter()
            .rev()
            .take_while(|u| u.line == t.line)
            .any(|u| u.kind != TokKind::Comment);
        let target = if trailing {
            t.line
        } else {
            toks[i + 1..]
                .iter()
                .find(|u| u.kind != TokKind::Comment)
                .map_or(t.line, |u| u.line)
        };
        sups.push(Suppression {
            lint: id,
            target,
            comment_line: t.line,
            used: false,
        });
    }
    (sups, bad)
}

/// One parsed baseline entry.
struct BaselineEntry {
    lint: String,
    file: String,
    text: String,
    raw: String,
    used: bool,
}

fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|');
        let (Some(lint), Some(file), Some(src)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        entries.push(BaselineEntry {
            lint: lint.trim().to_string(),
            file: file.trim().to_string(),
            text: src.trim().to_string(),
            raw: line.to_string(),
            used: false,
        });
    }
    entries
}

/// Recursively collects `.rs` files under `dir`, sorted by path for
/// deterministic output; `target/` and dot-directories are pruned so
/// fixture mode never scans build output.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lists the files [`analyze_root`] would scan: `(absolute, relative)`
/// pairs in scan order.
fn scan_paths(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            walk_rs(&src, &mut files)?;
            for path in files {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((path, rel));
            }
        }
    } else {
        let mut files = Vec::new();
        walk_rs(root, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path, rel));
        }
    }
    Ok(out)
}

fn crate_and_stem(root: &Path, rel: &str) -> (String, String) {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        root.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("root")
            .to_string()
    };
    let stem = Path::new(rel)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .to_string();
    (crate_name, stem)
}

/// Analyzes the tree at `root`, applying `baseline` (the file's text, if
/// any) to grandfather known findings. See the crate docs for the
/// scanning model.
pub fn analyze_root(root: &Path, baseline: Option<&str>) -> io::Result<Report> {
    let paths = scan_paths(root)?;
    let mut files: Vec<SourceFile> = Vec::with_capacity(paths.len());
    for (path, rel) in paths {
        let src = fs::read_to_string(&path)?;
        let toks = lex(&src);
        let items = itemize(&toks);
        let (crate_name, stem) = crate_and_stem(root, &rel);
        files.push(SourceFile {
            rel,
            crate_name,
            stem,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            items,
        });
    }
    let codes: Vec<Code<'_>> = files.iter().map(|f| Code::new(&f.toks)).collect();

    let mut findings: Vec<Finding> = Vec::new();
    for (file, code) in files.iter().zip(codes.iter()) {
        findings.extend(lints::det_hash_iter(file, code));
        findings.extend(lints::det_wallclock(file, code));
        findings.extend(lints::lock_poison(file, code));
        findings.extend(lints::panic_path(file, code));
        findings.extend(lints::atomic_order(file, code));
        findings.extend(lints::unsafe_drift(file, code));
    }
    findings.extend(lints::lock_order(&files, &codes));

    // Suppressions: silence matching findings at the directive's target
    // line; every directive must earn its keep.
    let mut suppressed = 0usize;
    let mut meta: Vec<Finding> = Vec::new();
    for file in &files {
        let (mut sups, bad) = parse_suppressions(file);
        meta.extend(bad);
        if !sups.is_empty() {
            findings.retain(|f| {
                if f.file != file.rel {
                    return true;
                }
                for s in &mut sups {
                    if s.lint == f.lint && s.target == f.line {
                        s.used = true;
                        suppressed += 1;
                        return false;
                    }
                }
                true
            });
        }
        for s in &sups {
            if !s.used {
                meta.push(Finding {
                    lint: "unused-suppression",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: s.comment_line,
                    message: format!("allow({}) directive silences nothing; remove it", s.lint),
                });
            }
        }
    }
    findings.extend(meta);

    // Baseline: drop grandfathered findings, track stale entries.
    let mut baselined = 0usize;
    let mut stale = Vec::new();
    if let Some(text) = baseline {
        let mut entries = parse_baseline(text);
        findings.retain(|f| {
            for e in &mut entries {
                if e.lint == f.lint && e.file == f.file {
                    let src_line = files
                        .iter()
                        .find(|sf| sf.rel == f.file)
                        .and_then(|sf| sf.lines.get(f.line as usize - 1))
                        .map(|l| l.trim());
                    if src_line == Some(e.text.as_str()) {
                        e.used = true;
                        baselined += 1;
                        return false;
                    }
                }
            }
            true
        });
        for e in &entries {
            if !e.used {
                stale.push(e.raw.clone());
            }
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));

    Ok(Report {
        root: root.to_string_lossy().into_owned(),
        files: files.len(),
        findings,
        suppressed,
        baselined,
        stale_baseline: stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn report_for(files: &[(&str, &str)]) -> Report {
        let dir = std::env::temp_dir().join(format!(
            "hsgf-analyze-test-{}-{}",
            std::process::id(),
            files.len()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (rel, src) in files {
            let path = dir.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            let mut f = fs::File::create(&path).unwrap();
            f.write_all(src.as_bytes()).unwrap();
        }
        let report = analyze_root(&dir, None).unwrap();
        let _ = fs::remove_dir_all(&dir);
        report
    }

    #[test]
    fn json_report_round_trips_through_core_parser() {
        let report = Report {
            root: "x".to_string(),
            files: 2,
            findings: vec![Finding {
                lint: "det-hash-iter",
                severity: Severity::Error,
                file: "a/b.rs".to_string(),
                line: 7,
                message: "iteration \"order\"".to_string(),
            }],
            suppressed: 1,
            baselined: 0,
            stale_baseline: vec!["det-wallclock|x.rs|old line".to_string()],
        };
        let json = report.render_json();
        let value = hsgf_core::json::parse(&json).unwrap();
        assert_eq!(value.get("version").and_then(|v| v.as_f64()), Some(1.0));
        let findings = value.get("findings").and_then(|v| v.as_array()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("lint").and_then(|v| v.as_str()),
            Some("det-hash-iter")
        );
        assert_eq!(findings[0].get("line").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(
            value
                .get("stale_baseline")
                .and_then(|v| v.as_array())
                .map(Vec::len),
            Some(1)
        );
    }

    #[test]
    fn suppression_silences_and_unused_is_flagged() {
        let src = "\
pub fn f(censuses: Vec<std::collections::HashMap<u32, u64>>) {
    let m: HashMap<u32, u64> = HashMap::new();
    for _k in m.keys() {} // hsgf-lint: allow(det-hash-iter, sorted downstream)
}
// hsgf-lint: allow(det-wallclock, nothing here)
pub fn g() {}
";
        let report = report_for(&[("census.rs", src)]);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.lint == "unused-suppression"),
            "unused allow must be reported: {:?}",
            report.findings
        );
        assert!(
            !report.findings.iter().any(|f| f.lint == "det-hash-iter"),
            "trailing allow must silence the finding: {:?}",
            report.findings
        );
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn malformed_suppression_is_a_finding() {
        let src = "// hsgf-lint: allow(det-hash-iter)\npub fn f() {}\n";
        let report = report_for(&[("misc.rs", src)]);
        assert!(report.findings.iter().any(|f| f.lint == "bad-suppression"));
    }

    #[test]
    fn baseline_absorbs_by_trimmed_line_and_reports_stale() {
        let dir = std::env::temp_dir().join(format!("hsgf-analyze-bl-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("export.rs"),
            "pub fn f() {\n    let t = Instant::now();\n    let _ = t;\n}\n",
        )
        .unwrap();
        let baseline = "\
# grandfathered
det-wallclock|export.rs|let t = Instant::now();
det-wallclock|export.rs|let gone = Instant::now();
";
        let report = analyze_root(&dir, Some(baseline)).unwrap();
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(report.baselined, 1, "{:?}", report.findings);
        assert!(!report.findings.iter().any(|f| f.lint == "det-wallclock"));
        assert_eq!(report.stale_baseline.len(), 1);
    }
}
