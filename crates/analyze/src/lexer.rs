//! A lightweight Rust lexer: just enough tokenization for line-anchored
//! lint checks, not a parser. The output is a flat token stream with line
//! numbers; strings (including raw and byte strings), char literals,
//! lifetimes, numbers, and nested block comments are recognized so that
//! lint patterns never match inside literal or comment text.
//!
//! On top of the raw stream, [`itemize`] recovers the little structure the
//! lints need: `fn` spans with brace-matched bodies, and the line ranges
//! of test code (`#[cfg(test)]` modules and `#[test]` functions), which
//! every lint treats as out of scope.

/// Token classification. Deliberately coarse: lints match on identifier
/// and punctuation sequences, and must *skip* literals and comments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String / char / number literal (contents never lint-matched).
    Literal,
    /// Lifetime marker such as `'a` (distinct from a char literal).
    Lifetime,
    /// Line or block comment, text preserved for the suppression grammar.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw text. For comments this includes the `//` / `/*` sigils; for
    /// line comments the trailing newline is excluded.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream. The lexer never fails: malformed
/// input degrades to punctuation tokens rather than an error, because a
/// lint pass must keep going on files the compiler would reject.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = chars.len();
    let push = |toks: &mut Vec<Tok>, kind, text: String, line| {
        toks.push(Tok { kind, text, line });
    };
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            push(
                &mut toks,
                TokKind::Comment,
                chars[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(
                &mut toks,
                TokKind::Comment,
                chars[start..i].iter().collect(),
                start_line,
            );
            continue;
        }
        // Raw strings / byte strings / raw identifiers: r"..", r#".."#,
        // br".."; b"..", b'..'.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r');
            if is_raw && j < n && chars[j] == '"' {
                // Raw (byte) string: scan to `"` followed by `hashes` #s.
                let start = i;
                let start_line = line;
                j += 1;
                loop {
                    if j >= n {
                        break;
                    }
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                    }
                    j += 1;
                }
                push(
                    &mut toks,
                    TokKind::Literal,
                    chars[start..j.min(n)].iter().collect(),
                    start_line,
                );
                i = j.min(n);
                continue;
            }
            if c == 'r' && hashes == 1 && j < n && is_ident_start(chars[j]) {
                // Raw identifier r#type: emit the identifier without r#.
                let start = j;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                push(
                    &mut toks,
                    TokKind::Ident,
                    chars[start..j].iter().collect(),
                    line,
                );
                i = j;
                continue;
            }
            if c == 'b' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '\'') {
                // Byte string / byte char: delegate to the quoted scanner
                // below by consuming the `b` prefix here.
                let quote = chars[i + 1];
                let (end, nl) = scan_quoted(&chars, i + 2, quote);
                push(
                    &mut toks,
                    TokKind::Literal,
                    chars[i..end].iter().collect(),
                    line,
                );
                line += nl;
                i = end;
                continue;
            }
            // Plain identifier starting with r/b.
        }
        if c == '"' {
            let start_line = line;
            let (end, nl) = scan_quoted(&chars, i + 1, '"');
            push(
                &mut toks,
                TokKind::Literal,
                chars[i..end].iter().collect(),
                start_line,
            );
            line += nl;
            i = end;
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal. `'a` / `'static` are lifetimes
            // unless a closing quote follows a single code point ('a').
            if i + 1 < n && chars[i + 1] == '\\' {
                let (end, nl) = scan_quoted(&chars, i + 1, '\'');
                push(
                    &mut toks,
                    TokKind::Literal,
                    chars[i..end].iter().collect(),
                    line,
                );
                line += nl;
                i = end;
                continue;
            }
            if i + 2 < n && is_ident_start(chars[i + 1]) && chars[i + 2] != '\'' {
                let start = i;
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                push(
                    &mut toks,
                    TokKind::Lifetime,
                    chars[start..j].iter().collect(),
                    line,
                );
                i = j;
                continue;
            }
            let (end, nl) = scan_quoted(&chars, i + 1, '\'');
            push(
                &mut toks,
                TokKind::Literal,
                chars[i..end].iter().collect(),
                line,
            );
            line += nl;
            i = end;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            push(
                &mut toks,
                TokKind::Ident,
                chars[start..i].iter().collect(),
                line,
            );
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                // Do not swallow `..` range punctuation after a number.
                if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            push(
                &mut toks,
                TokKind::Literal,
                chars[start..i].iter().collect(),
                line,
            );
            continue;
        }
        push(&mut toks, TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a quoted literal starting *after* the opening quote at `start`;
/// returns (index one past the closing quote, newlines crossed).
fn scan_quoted(chars: &[char], start: usize, quote: char) -> (usize, u32) {
    let mut i = start;
    let mut nl = 0u32;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                nl += 1;
                i += 1;
            }
            c if c == quote => return (i + 1, nl),
            _ => i += 1,
        }
    }
    (chars.len(), nl)
}

/// A `fn` item recovered from the token stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token range `[body_start, body_end)` of the brace-matched body
    /// (indices into the lexed stream; the braces themselves included).
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Structure extracted by [`itemize`].
#[derive(Clone, Debug, Default)]
pub struct Items {
    /// All `fn` items, in source order (nested functions included).
    pub fns: Vec<FnSpan>,
    /// Inclusive 1-based line ranges of test code: `#[cfg(test)]` items
    /// and `#[test]` functions.
    pub test_lines: Vec<(u32, u32)>,
}

impl Items {
    /// Whether `line` falls inside a test region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Recovers `fn` spans and test-code line ranges from a token stream.
pub fn itemize(toks: &[Tok]) -> Items {
    let mut items = Items::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Attribute: collect its identifiers, then decide whether it
            // marks the following item as test code.
            let (attr_end, idents) = scan_attr(toks, i + 1);
            let is_test_attr = idents.iter().any(|id| id == "test")
                && (idents[0] == "test" || idents[0] == "cfg")
                && !idents.iter().any(|id| id == "not");
            if is_test_attr {
                if let Some((start, end)) = item_body_lines(toks, attr_end) {
                    items.test_lines.push((toks[i].line.min(start), end));
                }
            }
            i = attr_end;
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some((open, close)) = fn_body(toks, i + 2) {
                        items.fns.push(FnSpan {
                            name: name_tok.text.clone(),
                            body: (open, close + 1),
                            line: t.line,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    items
}

/// Scans an attribute starting at its `[` token; returns (index one past
/// the closing `]`, identifiers seen inside).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, idents);
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    (toks.len(), idents)
}

/// Finds the brace-matched body of the item starting at `from` (skipping
/// further attributes and doc comments); returns its inclusive line range.
fn item_body_lines(toks: &[Tok], mut from: usize) -> Option<(u32, u32)> {
    // Skip stacked attributes between the test attribute and the item.
    while from < toks.len() {
        if toks[from].kind == TokKind::Comment {
            from += 1;
        } else if toks[from].is_punct('#') && from + 1 < toks.len() && toks[from + 1].is_punct('[')
        {
            from = scan_attr(toks, from + 1).0;
        } else {
            break;
        }
    }
    let start_line = toks.get(from)?.line;
    let (open, close) = brace_block(toks, from)?;
    let _ = open;
    Some((start_line, toks[close].line))
}

/// Finds a `fn` body given the index just past the function name: skips
/// the signature (balancing `()`/`<>` loosely) to the first `{` at
/// nesting depth zero, then matches braces.
fn fn_body(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    brace_block(toks, from)
}

/// From `from`, finds the first `{` not nested inside parentheses or
/// brackets, then returns (index of `{`, index of matching `}`). Returns
/// `None` for bodyless items (`fn` in traits, `;`-terminated).
fn brace_block(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 0 {
            return None;
        } else if t.is_punct('{') && paren <= 0 {
            // Match braces from here.
            let mut depth = 0i32;
            let open = i;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, i));
                    }
                }
                i += 1;
            }
            return Some((open, toks.len() - 1));
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("let x = a.lock();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "a", "lock"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"call("HashMap.iter() // not a comment", x)"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Comment));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = "let s = r#\"he said \"hi\" and left\"#; let t = 1;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t.contains("he said")));
        // The lexer resynchronizes after the raw string.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "t"));
    }

    #[test]
    fn byte_and_escaped_literals() {
        let toks = kinds(r#"(b"ab\"c", b'x', '\n', 'q', "e\\")"#);
        let lits = toks.iter().filter(|(k, _)| *k == TokKind::Literal).count();
        assert_eq!(lits, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Literal));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* x\ny */\nb \"s\ntr\"\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 6);
    }

    #[test]
    fn nested_generics_lex_as_puncts() {
        let toks = kinds("let m: HashMap<Encoding, Vec<(u32, f64)>> = HashMap::new();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            idents,
            vec!["let", "m", "HashMap", "Encoding", "Vec", "u32", "f64", "HashMap", "new"]
        );
        // `>>` arrives as two separate `>` puncts.
        let gt = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ">")
            .count();
        assert_eq!(gt, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 { x[i] }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "10"));
    }

    #[test]
    fn itemize_finds_fns_and_test_regions() {
        let src = "\
fn alpha() { beta(); }
#[test]
fn in_test_fn() { x.lock().unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn omega() {}
";
        let toks = lex(src);
        let items = itemize(&toks);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "in_test_fn", "helper", "omega"]);
        assert!(items.in_test(3)); // the #[test] fn body
        assert!(items.in_test(6)); // inside mod tests
        assert!(!items.in_test(1));
        assert!(!items.in_test(8));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }
}
