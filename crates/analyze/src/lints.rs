//! The lint catalogue: project-specific checks over lexed source files.
//!
//! Every lint here encodes an invariant the hsgf workspace's tests cannot
//! structurally enforce:
//!
//! * [`det-hash-iter`] — no `HashMap`/`HashSet` iteration in modules that
//!   feed deterministic output (the PR 1 `FeatureMatrix::from_censuses`
//!   bug class: interning features in randomized hash order).
//! * [`det-wallclock`] — no `Instant::now` / `SystemTime` outside the
//!   obs/budget/bench allowlist.
//! * [`lock-order`] — mutex acquisition sequences must form an acyclic
//!   cross-module order over the named shard families, and a guard must
//!   never be re-acquired from its own family while held.
//! * [`lock-poison`] — poison handling uses the one documented idiom,
//!   `.lock().unwrap_or_else(PoisonError::into_inner)`.
//! * [`panic-path`] — no `unwrap`/`expect`/`panic!` in serve request
//!   paths or journal/cache IO paths.
//! * [`atomic-order`] — no `Ordering::Relaxed` on atomics named like
//!   cross-thread control flags.
//! * [`unsafe-drift`] — every crate root keeps `#![forbid(unsafe_code)]`.
//!
//! All lints skip test code (`#[cfg(test)]` modules, `#[test]` fns) and
//! comment/string interiors; findings are line-anchored and suppressible
//! (see the crate docs for the suppression grammar).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::lexer::{Items, Tok, TokKind};
use crate::{Finding, Severity};

/// Identifiers of every shipped lint, in report order.
pub const ALL_LINTS: &[&str] = &[
    "det-hash-iter",
    "det-wallclock",
    "lock-order",
    "lock-poison",
    "panic-path",
    "atomic-order",
    "unsafe-drift",
];

/// File stems whose modules feed deterministic output: the census and its
/// encodings, feature interning, exports, and content fingerprints.
const DET_STEMS: &[&str] = &[
    "census",
    "features",
    "export",
    "fingerprint",
    "hash",
    "sequence",
    "small",
    "enumerate",
    "reference",
    "sampling",
];

/// Wall-clock allowlist: observability and budget deadlines are *defined*
/// over wall time, and the bench crate measures it.
const WALLCLOCK_ALLOW_STEMS: &[&str] = &["obs", "budget", "runner"];

/// Hash-collection methods whose results depend on iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Atomic read-modify-write / load / store method names.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Receiver-name fragments that mark an atomic as a cross-thread control
/// flag (parking epochs, shutdown/cancel flags) rather than a counter.
const CONTROL_FLAG_PATTERNS: &[&str] = &[
    "shutdown",
    "shutting",
    "stop",
    "cancel",
    "park",
    "epoch",
    "done",
    "terminate",
    "quit",
    "halt",
];

/// One source file prepared for linting.
pub(crate) struct SourceFile {
    /// Root-relative path with forward slashes.
    pub rel: String,
    /// Crate directory name (`core`, `serve`, …) or the scan root's name.
    pub crate_name: String,
    /// File stem (`cache` for `crates/core/src/cache.rs`).
    pub stem: String,
    /// Raw source lines (for baseline matching).
    pub lines: Vec<String>,
    /// Lexed tokens.
    pub toks: Vec<Tok>,
    /// Recovered items (fn spans, test regions).
    pub items: Items,
}

/// Non-comment view over a token stream: lint patterns match on code
/// tokens only, while comments are handled by the suppression layer.
pub(crate) struct Code<'a> {
    toks: &'a [Tok],
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    pub fn new(toks: &'a [Tok]) -> Self {
        let idx = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        Code { toks, idx }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn get(&self, j: usize) -> Option<&Tok> {
        self.idx.get(j).map(|&i| &self.toks[i])
    }

    fn ident(&self, j: usize, name: &str) -> bool {
        self.get(j).is_some_and(|t| t.is_ident(name))
    }

    fn punct(&self, j: usize, c: char) -> bool {
        self.get(j).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self, j: usize) -> u32 {
        self.get(j).map_or(0, |t| t.line)
    }

    /// Maps a raw token index to its position in the code view (for
    /// translating fn body spans).
    fn pos_of_raw(&self, raw: usize) -> usize {
        self.idx.partition_point(|&i| i < raw)
    }

    /// Walks backwards from the code position `j` (exclusive) over one
    /// postfix expression tail, skipping balanced `[..]` / `(..)` groups,
    /// and returns the identifier that heads it: the receiver of a method
    /// call, or the trailing name of a path like `&mut self.counts`.
    fn receiver(&self, mut j: usize) -> Option<String> {
        loop {
            if j == 0 {
                return None;
            }
            j -= 1;
            let t = self.get(j)?;
            if t.is_punct(']') || t.is_punct(')') {
                let (open, close) = if t.is_punct(']') {
                    ('[', ']')
                } else {
                    ('(', ')')
                };
                let mut depth = 1i32;
                while depth > 0 {
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                    let u = self.get(j)?;
                    if u.is_punct(close) {
                        depth += 1;
                    } else if u.is_punct(open) {
                        depth -= 1;
                    }
                }
                continue;
            }
            if t.kind == TokKind::Ident {
                return Some(t.text.clone());
            }
            return None;
        }
    }
}

/// What a declared type resolves to, as far as the lints care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TypeKind {
    Hash,
    VecOfHash,
    Other,
}

/// Classifies the type (or constructor expression) starting at code
/// position `j`: skips references, `mut`, and path prefixes, then checks
/// the first significant identifier.
fn classify_type(code: &Code<'_>, mut j: usize) -> TypeKind {
    // Skip `&`, `&&`, `mut`, lifetimes.
    while let Some(t) = code.get(j) {
        if t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime {
            j += 1;
        } else {
            break;
        }
    }
    // Skip path prefixes: `std :: collections ::`.
    loop {
        let Some(t) = code.get(j) else {
            return TypeKind::Other;
        };
        if t.kind != TokKind::Ident {
            return TypeKind::Other;
        }
        if code.punct(j + 1, ':') && code.punct(j + 2, ':') && !code.punct(j + 3, '<') {
            // `seg::` — but stop descending when the next segment opens
            // generics immediately (`HashMap::<K,V>` turbofish is rare in
            // type position; treat the segment itself below).
            if code.get(j + 3).is_some_and(|t| {
                t.kind == TokKind::Ident
                    && t.text != "new"
                    && t.text != "with_capacity"
                    && t.text != "from"
                    && t.text != "default"
            }) {
                j += 3;
                continue;
            }
        }
        break;
    }
    let Some(t) = code.get(j) else {
        return TypeKind::Other;
    };
    match t.text.as_str() {
        "HashMap" | "HashSet" => TypeKind::Hash,
        "Vec" if code.punct(j + 1, '<') => match classify_type(code, j + 2) {
            TypeKind::Hash => TypeKind::VecOfHash,
            _ => TypeKind::Other,
        },
        _ => TypeKind::Other,
    }
}

/// Names bound to hash collections (or vectors of them) in one file:
/// struct fields, function parameters, and `let` bindings, resolved by
/// declared type or constructor.
fn hash_typed_names(code: &Code<'_>) -> BTreeMap<String, TypeKind> {
    let mut names: BTreeMap<String, TypeKind> = BTreeMap::new();
    for j in 0..code.len() {
        let Some(t) = code.get(j) else { break };
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : Type` (field, param, annotated let, struct literal with
        // a constructor expression — all resolve the same way).
        if code.punct(j + 1, ':') && !code.punct(j + 2, ':') && (j == 0 || !code.punct(j - 1, ':'))
        {
            let kind = classify_type(code, j + 2);
            if kind != TypeKind::Other {
                names.insert(t.text.clone(), kind);
            }
        }
        // `let [mut] name = HashMap::new()` and friends.
        if t.is_ident("let") {
            let mut k = j + 1;
            if code.ident(k, "mut") {
                k += 1;
            }
            if let Some(name) = code.get(k) {
                if name.kind == TokKind::Ident && code.punct(k + 1, '=') {
                    let kind = classify_type(code, k + 2);
                    if kind != TypeKind::Other {
                        names.insert(name.text.clone(), kind);
                    }
                }
            }
        }
    }
    names
}

fn finding(lint: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        lint,
        severity: Severity::Error,
        file: file.rel.clone(),
        line,
        message,
    }
}

/// `det-hash-iter`: iteration over hash collections in deterministic
/// modules. Tracks hash-typed names per file and flags order-sensitive
/// method calls and `for` loops over them; iterating a `Vec<HashMap<_>>`
/// propagates hash-ness to the loop variable (the exact shape of the
/// PR 1 `from_censuses` bug).
pub(crate) fn det_hash_iter(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    if !DET_STEMS.contains(&file.stem.as_str()) {
        return Vec::new();
    }
    let mut names = hash_typed_names(code);
    let mut out = Vec::new();
    for j in 0..code.len() {
        let Some(t) = code.get(j) else { break };
        if file.items.in_test(t.line) {
            continue;
        }
        // `recv.iter()` and friends.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && code.punct(j + 1, '(')
            && j >= 1
            && code.punct(j - 1, '.')
        {
            if let Some(recv) = code.receiver(j - 1) {
                if names.get(&recv) == Some(&TypeKind::Hash) {
                    out.push(finding(
                        "det-hash-iter",
                        file,
                        t.line,
                        format!(
                            "`.{}()` on hash collection `{recv}` in a deterministic module: \
                             iteration order is randomized per process; collect and sort \
                             (or restructure) before anything order-sensitive",
                            t.text
                        ),
                    ));
                }
            }
        }
        // `for pat in expr { … }`.
        if t.is_ident("for") {
            if code.punct(j + 1, '<') {
                continue; // `for<'a>` HRTB
            }
            // Find `in` at paren depth 0 within a short window.
            let mut depth = 0i32;
            let mut in_at = None;
            for k in j + 1..(j + 24).min(code.len()) {
                let Some(u) = code.get(k) else { break };
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if u.is_punct('{') && depth == 0 {
                    break; // `impl Trait for Type {`
                } else if u.is_ident("in") && depth == 0 {
                    in_at = Some(k);
                    break;
                }
            }
            let Some(in_at) = in_at else { continue };
            // Find the loop body `{` at depth 0 after `in`.
            let mut depth = 0i32;
            let mut body_at = None;
            for k in in_at + 1..code.len() {
                let Some(u) = code.get(k) else { break };
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if u.is_punct('{') && depth == 0 {
                    body_at = Some(k);
                    break;
                }
            }
            let Some(body_at) = body_at else { continue };
            // The iterated expression's trailing identifier.
            if code.get(body_at - 1).is_some_and(|u| u.is_punct(')')) {
                // Ends in a call — the method rule above owns those.
                continue;
            }
            let Some(target) = code.receiver(body_at) else {
                continue;
            };
            match names.get(&target) {
                Some(TypeKind::Hash) => out.push(finding(
                    "det-hash-iter",
                    file,
                    t.line,
                    format!(
                        "`for` loop over hash collection `{target}` in a deterministic \
                         module: iteration order is randomized per process"
                    ),
                )),
                Some(TypeKind::VecOfHash) => {
                    // `for census in censuses` — the loop variable is a
                    // hash map; record it so its own uses are checked.
                    if in_at == j + 2 {
                        if let Some(pat) = code.get(j + 1) {
                            if pat.kind == TokKind::Ident {
                                names.insert(pat.text.clone(), TypeKind::Hash);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// `det-wallclock`: `Instant::now` / `SystemTime` outside the allowlist.
pub(crate) fn det_wallclock(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    if WALLCLOCK_ALLOW_STEMS.contains(&file.stem.as_str()) || file.crate_name == "bench" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for j in 0..code.len() {
        let Some(t) = code.get(j) else { break };
        if t.kind != TokKind::Ident || file.items.in_test(t.line) {
            continue;
        }
        if t.text == "Instant"
            && code.punct(j + 1, ':')
            && code.punct(j + 2, ':')
            && code.ident(j + 3, "now")
        {
            out.push(finding(
                "det-wallclock",
                file,
                t.line,
                "`Instant::now` outside the obs/budget/bench allowlist: wall-clock reads \
                 make output timing-dependent"
                    .to_string(),
            ));
        }
        if t.text == "SystemTime" {
            out.push(finding(
                "det-wallclock",
                file,
                t.line,
                "`SystemTime` outside the obs/budget/bench allowlist: wall-clock reads \
                 make output timing-dependent"
                    .to_string(),
            ));
        }
    }
    out
}

/// `lock-poison`: after `.lock()`, the only accepted continuation in
/// non-test code is the documented idiom
/// `.unwrap_or_else(PoisonError::into_inner)` (or explicit `Result`
/// handling). `.unwrap()` / `.expect(…)` turn a poisoned-but-benign mutex
/// into a thread death.
pub(crate) fn lock_poison(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for j in 0..code.len() {
        if !(code.ident(j, "lock")
            && j >= 1
            && code.punct(j - 1, '.')
            && code.punct(j + 1, '(')
            && code.punct(j + 2, ')')
            && code.punct(j + 3, '.'))
        {
            continue;
        }
        let line = code.line(j);
        if file.items.in_test(line) {
            continue;
        }
        let Some(next) = code.get(j + 4) else {
            continue;
        };
        match next.text.as_str() {
            "unwrap" | "expect" => out.push(finding(
                "lock-poison",
                file,
                line,
                format!(
                    "`.lock().{}(…)` dies on a poisoned mutex; use the workspace idiom \
                     `.lock().unwrap_or_else(PoisonError::into_inner)` where poison is \
                     benign, or handle the `Err` explicitly",
                    next.text
                ),
            )),
            "unwrap_or_else" => {
                let canonical = code.punct(j + 5, '(')
                    && code.ident(j + 6, "PoisonError")
                    && code.punct(j + 7, ':')
                    && code.punct(j + 8, ':')
                    && code.ident(j + 9, "into_inner")
                    && code.punct(j + 10, ')');
                if !canonical {
                    out.push(finding(
                        "lock-poison",
                        file,
                        line,
                        "non-canonical poison handler after `.lock()`; the workspace idiom \
                         is `.lock().unwrap_or_else(PoisonError::into_inner)`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether `panic-path` applies to this file: serve request handling and
/// journal / disk-cache IO paths.
fn panic_scope(file: &SourceFile) -> bool {
    file.crate_name == "serve"
        || file.rel.contains("/serve/")
        || file.stem == "serve"
        || file.stem == "journal"
        || file.stem == "cache"
}

/// `panic-path`: `unwrap` / `expect` / `panic!` in request or IO paths.
/// `.lock().unwrap()` is excluded here — `lock-poison` owns lock sites.
pub(crate) fn panic_path(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    if !panic_scope(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for j in 0..code.len() {
        let Some(t) = code.get(j) else { break };
        if t.kind != TokKind::Ident || file.items.in_test(t.line) {
            continue;
        }
        let after_lock = j >= 4
            && code.punct(j - 1, '.')
            && code.punct(j - 2, ')')
            && code.punct(j - 3, '(')
            && code.ident(j - 4, "lock");
        match t.text.as_str() {
            "unwrap" | "expect" if code.punct(j + 1, '(') && j >= 1 && code.punct(j - 1, '.') => {
                if after_lock {
                    continue;
                }
                out.push(finding(
                    "panic-path",
                    file,
                    t.line,
                    format!(
                        "`.{}(…)` in a request/IO path kills the worker thread on failure; \
                         propagate an error (`{{\"ok\":false,…}}` response or `io::Error`) \
                         instead",
                        t.text
                    ),
                ));
            }
            "panic" if code.punct(j + 1, '!') => out.push(finding(
                "panic-path",
                file,
                t.line,
                "`panic!` in a request/IO path kills the worker thread; return an error \
                 instead"
                    .to_string(),
            )),
            _ => {}
        }
    }
    out
}

/// `atomic-order`: `Ordering::Relaxed` on an atomic whose name marks it
/// as a cross-thread control flag. Relaxed loads/stores on flags order
/// nothing: a worker can observe the flag without the writes it guards.
pub(crate) fn atomic_order(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut last: Option<(u32, String)> = None;
    for j in 0..code.len() {
        if !(code.ident(j, "Ordering")
            && code.punct(j + 1, ':')
            && code.punct(j + 2, ':')
            && code.ident(j + 3, "Relaxed"))
        {
            continue;
        }
        let line = code.line(j);
        if file.items.in_test(line) {
            continue;
        }
        // Walk back to the enclosing call's method name.
        let mut depth = 0i32;
        let mut k = j;
        let mut method: Option<usize> = None;
        while k > 0 {
            k -= 1;
            let Some(u) = code.get(k) else { break };
            if u.is_punct(')') {
                depth += 1;
            } else if u.is_punct('(') {
                depth -= 1;
                if depth < 0 {
                    if k > 0 && code.get(k - 1).is_some_and(|m| m.kind == TokKind::Ident) {
                        method = Some(k - 1);
                    }
                    break;
                }
            }
        }
        let Some(m) = method else { continue };
        let mname = &code.get(m).map(|t| t.text.clone()).unwrap_or_default();
        if !ATOMIC_OPS.contains(&mname.as_str()) {
            continue;
        }
        let Some(recv) = (if m >= 1 && code.punct(m - 1, '.') {
            code.receiver(m - 1)
        } else {
            None
        }) else {
            continue;
        };
        let lower = recv.to_lowercase();
        if !CONTROL_FLAG_PATTERNS.iter().any(|p| lower.contains(p)) {
            continue;
        }
        // fetch_update carries two orderings; report the call once.
        if last.as_ref() == Some(&(line, recv.clone())) {
            continue;
        }
        last = Some((line, recv.clone()));
        out.push(finding(
            "atomic-order",
            file,
            line,
            format!(
                "`Ordering::Relaxed` on control-flag atomic `{recv}.{mname}`: relaxed \
                 accesses order nothing across threads; use Acquire/Release (or SeqCst)"
            ),
        ));
    }
    out
}

/// `unsafe-drift`: crate roots must retain `#![forbid(unsafe_code)]`, and
/// no file may introduce an `unsafe` token at all.
pub(crate) fn unsafe_drift(file: &SourceFile, code: &Code<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let is_crate_root = file.rel.ends_with("src/lib.rs") || file.rel.ends_with("src/main.rs");
    if is_crate_root {
        let mut found = false;
        for j in 0..code.len() {
            if code.punct(j, '#')
                && code.punct(j + 1, '!')
                && code.punct(j + 2, '[')
                && code.ident(j + 3, "forbid")
                && code.punct(j + 4, '(')
                && code.ident(j + 5, "unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(finding(
                "unsafe-drift",
                file,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
    for j in 0..code.len() {
        let Some(t) = code.get(j) else { break };
        if t.is_ident("unsafe") && !file.items.in_test(t.line) {
            out.push(finding(
                "unsafe-drift",
                file,
                t.line,
                "`unsafe` token in a forbid(unsafe_code) workspace".to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// lock-order: cross-module acquisition graph over named lock families.
// ---------------------------------------------------------------------------

/// One acquisition or call event inside a function body.
#[derive(Clone, Debug)]
enum Event {
    /// `.lock()` on `family`; `guard` is the `let`-bound name when the
    /// guard outlives its statement, with the brace depth at the binding.
    Lock {
        family: String,
        line: u32,
        guard: Option<(String, i32)>,
        depth: i32,
    },
    /// A call that may acquire locks transitively.
    Call { name: String, line: u32 },
    /// `drop(name)` — explicitly releases a named guard.
    Drop { name: String },
    /// Closing brace to `depth` (guards bound deeper die here).
    Close { depth: i32 },
}

/// Per-function event log plus direct lock families (for expansion).
#[derive(Clone, Debug, Default)]
struct FnLocks {
    events: Vec<Event>,
    families: BTreeSet<String>,
}

/// Extracts lock/call events from one function body (code positions
/// `[start, end)`).
fn fn_events(file: &SourceFile, code: &Code<'_>, start: usize, end: usize) -> FnLocks {
    let mut log = FnLocks::default();
    let mut depth = 0i32;
    for j in start..end.min(code.len()) {
        let Some(t) = code.get(j) else { break };
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            log.events.push(Event::Close { depth });
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.lock()`.
        if t.text == "lock"
            && j >= 1
            && code.punct(j - 1, '.')
            && code.punct(j + 1, '(')
            && code.punct(j + 2, ')')
        {
            let recv = code.receiver(j - 1).unwrap_or_else(|| "?".to_string());
            let family = format!("{}/{}:{recv}", file.crate_name, file.stem);
            // A guard survives its statement iff the statement is a
            // `let` binding: scan back to the statement head.
            let guard = let_bound_guard(code, j, start);
            log.families.insert(family.clone());
            log.events.push(Event::Lock {
                family,
                line: t.line,
                guard,
                depth,
            });
            continue;
        }
        // `drop(name)`.
        if t.text == "drop" && code.punct(j + 1, '(') {
            if let Some(name) = code.get(j + 2) {
                if name.kind == TokKind::Ident && code.punct(j + 3, ')') {
                    log.events.push(Event::Drop {
                        name: name.text.clone(),
                    });
                    continue;
                }
            }
        }
        // Calls: `name(` — both free calls and method calls, excluding
        // the `.lock(` pattern handled above and macro invocations.
        if code.punct(j + 1, '(') && t.text != "lock" {
            log.events.push(Event::Call {
                name: t.text.clone(),
                line: t.line,
            });
        }
    }
    log
}

/// If the statement containing the `.lock()` at code position `j` is a
/// `let` binding, returns the bound name and its depth. Walks back to the
/// nearest `;`, `{`, or `}` and checks for `let [mut] name =`.
fn let_bound_guard(code: &Code<'_>, j: usize, floor: usize) -> Option<(String, i32)> {
    let mut k = j;
    let mut depth_back = 0i32;
    while k > floor {
        k -= 1;
        let t = code.get(k)?;
        if t.is_punct(')') || t.is_punct(']') {
            depth_back += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth_back -= 1;
            if depth_back < 0 {
                return None; // lock happens inside an argument list
            }
        } else if (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) && depth_back == 0 {
            k += 1;
            break;
        }
    }
    let t = code.get(k)?;
    if !t.is_ident("let") {
        return None;
    }
    let mut n = k + 1;
    if code.ident(n, "mut") {
        n += 1;
    }
    let name = code.get(n)?;
    if name.kind == TokKind::Ident && code.punct(n + 1, '=') {
        Some((name.text.clone(), 0)) // depth filled in by caller
    } else {
        None
    }
}

/// A lock-order edge: `from` held while `to` is acquired.
#[derive(Clone, Debug)]
struct EdgeSite {
    file: String,
    line: u32,
    via: String,
}

/// `lock-order` runs over the whole workspace at once: build per-function
/// event logs, compute each function's transitive lock families, then
/// walk every `let`-bound guard's live window collecting `held → acquired`
/// edges, and report (a) same-family re-acquisition inside a window and
/// (b) cycles in the cross-module family graph.
pub(crate) fn lock_order(files: &[SourceFile], codes: &[Code<'_>]) -> Vec<Finding> {
    // Function name → merged event logs (name collisions union; this is a
    // heuristic call graph, precise enough for family-level ordering).
    let mut fn_logs: BTreeMap<String, Vec<FnLocks>> = BTreeMap::new();
    let mut per_fn: Vec<(usize, String, FnLocks, u32)> = Vec::new();
    for (fi, (file, code)) in files.iter().zip(codes.iter()).enumerate() {
        for f in &file.items.fns {
            let start = code.pos_of_raw(f.body.0);
            let end = code.pos_of_raw(f.body.1);
            let log = fn_events(file, code, start, end);
            if !log.events.is_empty() {
                fn_logs.entry(f.name.clone()).or_default().push(log.clone());
                per_fn.push((fi, f.name.clone(), log, f.line));
            }
        }
    }
    // Transitive lock families per function name, memoized.
    fn families_of(
        name: &str,
        fn_logs: &BTreeMap<String, Vec<FnLocks>>,
        memo: &mut BTreeMap<String, BTreeSet<String>>,
        visiting: &mut BTreeSet<String>,
    ) -> BTreeSet<String> {
        if let Some(done) = memo.get(name) {
            return done.clone();
        }
        if !visiting.insert(name.to_string()) {
            return BTreeSet::new();
        }
        let mut fams = BTreeSet::new();
        if let Some(logs) = fn_logs.get(name) {
            for log in logs {
                fams.extend(log.families.iter().cloned());
                for ev in &log.events {
                    if let Event::Call { name: callee, .. } = ev {
                        if callee != name && fn_logs.contains_key(callee) {
                            fams.extend(families_of(callee, fn_logs, memo, visiting));
                        }
                    }
                }
            }
        }
        visiting.remove(name);
        memo.insert(name.to_string(), fams.clone());
        fams
    }
    let mut memo = BTreeMap::new();
    let mut out = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (fi, fname, log, _) in &per_fn {
        let file = &files[*fi];
        // Walk each let-bound guard's live window.
        for (i, ev) in log.events.iter().enumerate() {
            let Event::Lock {
                family,
                line,
                guard: Some((gname, _)),
                depth,
            } = ev
            else {
                continue;
            };
            if file.items.in_test(*line) {
                continue;
            }
            for later in &log.events[i + 1..] {
                match later {
                    Event::Drop { name } if name == gname => break,
                    Event::Close { depth: d } if d < depth => break,
                    Event::Lock {
                        family: f2,
                        line: l2,
                        ..
                    } => {
                        if f2 == family {
                            out.push(finding(
                                "lock-order",
                                file,
                                *l2,
                                format!(
                                    "`{family}` re-acquired at line {l2} while the guard \
                                     from line {line} (`{gname}`) is still held: nested \
                                     same-family locking self-deadlocks"
                                ),
                            ));
                        } else {
                            edges
                                .entry((family.clone(), f2.clone()))
                                .or_insert(EdgeSite {
                                    file: file.rel.clone(),
                                    line: *l2,
                                    via: fname.clone(),
                                });
                        }
                    }
                    Event::Call { name, line: l2 } => {
                        let mut visiting = BTreeSet::new();
                        for f2 in families_of(name, &fn_logs, &mut memo, &mut visiting) {
                            if &f2 != family {
                                edges.entry((family.clone(), f2)).or_insert(EdgeSite {
                                    file: file.rel.clone(),
                                    line: *l2,
                                    via: format!("{fname} → {name}"),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    // Cycle detection over the family graph (DFS with colors).
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let nodes: Vec<&String> = adj.keys().copied().collect();
    let mut color: BTreeMap<&String, u8> = BTreeMap::new();
    fn dfs<'a>(
        node: &'a String,
        adj: &BTreeMap<&'a String, Vec<&'a String>>,
        color: &mut BTreeMap<&'a String, u8>,
        stack: &mut Vec<&'a String>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
            match color.get(next).copied().unwrap_or(0) {
                0 => dfs(next, adj, color, stack, cycles),
                1 => {
                    let pos = stack.iter().position(|n| *n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[pos..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.clone());
                    cycles.push(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
    }
    let mut cycles = Vec::new();
    for node in nodes {
        if color.get(node).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            dfs(node, &adj, &mut color, &mut stack, &mut cycles);
        }
    }
    for cycle in cycles {
        // Anchor the finding at the first edge of the cycle.
        let site = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or(EdgeSite {
                file: String::new(),
                line: 0,
                via: String::new(),
            });
        out.push(Finding {
            lint: "lock-order",
            severity: Severity::Error,
            file: site.file,
            line: site.line,
            message: format!(
                "lock acquisition cycle {} (via {}): functions disagree on the order \
                 these families are taken in, which can deadlock under contention",
                cycle.join(" → "),
                site.via
            ),
        });
    }
    out
}
