//! Ordinary least squares linear regression (normal equations with a tiny
//! ridge fallback for singular Gram matrices).

use crate::dataset::Dataset;
use crate::linalg::{dot, solve_spd};

/// A fitted linear regression model `ŷ = w·x + b`.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fits OLS coefficients by solving the normal equations on centred
    /// data (centring makes the intercept exact and improves conditioning).
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len();
        let d = data.dim();
        assert!(n > 0, "cannot fit on an empty dataset");
        if d == 0 {
            let mean = data.y.iter().sum::<f64>() / n as f64;
            return LinearRegression {
                weights: Vec::new(),
                intercept: mean,
            };
        }
        // Column means.
        let mut x_mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(data.x.row(i)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let y_mean = data.y.iter().sum::<f64>() / n as f64;
        // Centred Gram and cross-covariance.
        let mut gram = crate::linalg::Mat::zeros(d, d);
        let mut xty = vec![0.0; d];
        let mut row_c = vec![0.0; d];
        for i in 0..n {
            for ((c, &v), &m) in row_c.iter_mut().zip(data.x.row(i)).zip(&x_mean) {
                *c = v - m;
            }
            let yc = data.y[i] - y_mean;
            for a in 0..d {
                let ra = row_c[a];
                if ra != 0.0 {
                    xty[a] += ra * yc;
                    for b in a..d {
                        gram[(a, b)] += ra * row_c[b];
                    }
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                gram[(a, b)] = gram[(b, a)];
            }
        }
        let weights = solve_spd(&gram, &xty).unwrap_or_else(|| vec![0.0; d]);
        let intercept = y_mean - dot(&weights, &x_mean);
        LinearRegression { weights, intercept }
    }

    /// Predicts one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.intercept
    }

    /// Predicts every row of a dataset's design matrix.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_row(data.x.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 x0 - 3 x1 + 5.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let a = i as f64;
            let b = (i * i % 7) as f64;
            x.extend([a, b]);
            y.push(2.0 * a - 3.0 * b + 5.0);
        }
        let data = Dataset::new(x, 20, 2, y);
        let model = LinearRegression::fit(&data);
        assert!((model.weights[0] - 2.0).abs() < 1e-8);
        assert!((model.weights[1] + 3.0).abs() < 1e-8);
        assert!((model.intercept - 5.0).abs() < 1e-8);
        let preds = model.predict(&data);
        for (p, t) in preds.iter().zip(&data.y) {
            assert!((p - t).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_features_predicts_mean() {
        let data = Dataset::new(vec![], 3, 0, vec![1.0, 2.0, 6.0]);
        let model = LinearRegression::fit(&data);
        assert!((model.intercept - 3.0).abs() < 1e-12);
        assert_eq!(model.predict_row(&[]), model.intercept);
    }

    #[test]
    fn collinear_features_do_not_crash() {
        // x1 = 2 x0 exactly: singular Gram, jittered solve must cope.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let a = i as f64;
            x.extend([a, 2.0 * a]);
            y.push(3.0 * a + 1.0);
        }
        let data = Dataset::new(x, 10, 2, y);
        let model = LinearRegression::fit(&data);
        let preds = model.predict(&data);
        for (p, t) in preds.iter().zip(&data.y) {
            assert!((p - t).abs() < 1e-3, "pred {p} vs {t}");
        }
    }

    #[test]
    fn constant_target_yields_zero_weights() {
        let data = Dataset::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2, vec![7.0; 3]);
        let model = LinearRegression::fit(&data);
        for w in &model.weights {
            assert!(w.abs() < 1e-8);
        }
        assert!((model.intercept - 7.0).abs() < 1e-8);
    }
}
