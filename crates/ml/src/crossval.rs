//! k-fold cross-validation and the regularization-strength tuning the
//! paper applies to its logistic-regression classifiers
//! (§4.3.3: "we tune the regularization strength and use L2
//! regularization").

use hsgf_graph::rng::Rng;

use crate::dataset::Dataset;
use crate::logreg::{LogisticConfig, OneVsAllClassifier};
use crate::metrics::macro_f1;

/// Seeded k-fold split: returns `(train_rows, test_rows)` per fold.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(n >= k, "need at least one sample per fold");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::from_seed(seed);
    rng.shuffle(&mut order);
    (0..k)
        .map(|fold| {
            let lo = n * fold / k;
            let hi = n * (fold + 1) / k;
            let test: Vec<usize> = order[lo..hi].to_vec();
            let train: Vec<usize> = order[..lo]
                .iter()
                .chain(order[hi..].iter())
                .copied()
                .collect();
            (train, test)
        })
        .collect()
}

/// Cross-validated Macro-F1 of one-vs-all logistic regression at a given
/// regularization strength `c`.
pub fn cv_macro_f1(features: &Dataset, classes: &[usize], c: f64, folds: usize, seed: u64) -> f64 {
    let config = LogisticConfig {
        c,
        max_iter: 200,
        tol: 1e-4,
    };
    let splits = k_folds(features.len(), folds, seed);
    let mut total = 0.0;
    for (train_rows, test_rows) in &splits {
        let train_x = features.select_rows(train_rows);
        let test_x = features.select_rows(test_rows);
        let train_y: Vec<usize> = train_rows.iter().map(|&i| classes[i]).collect();
        let test_y: Vec<usize> = test_rows.iter().map(|&i| classes[i]).collect();
        let clf = OneVsAllClassifier::fit(&train_x, &train_y, &config);
        total += macro_f1(&clf.predict(&test_x), &test_y);
    }
    total / splits.len() as f64
}

/// Selects the best inverse regularization strength from `grid` by k-fold
/// CV Macro-F1, the paper's §4.3.3 tuning step. Ties go to the smaller `c`
/// (stronger regularization).
pub fn tune_logistic_c(
    features: &Dataset,
    classes: &[usize],
    grid: &[f64],
    folds: usize,
    seed: u64,
) -> f64 {
    assert!(!grid.is_empty(), "empty C grid");
    let mut best = (grid[0], f64::NEG_INFINITY);
    for &c in grid {
        let score = cv_macro_f1(features, classes, c, folds, seed);
        if score > best.1 + 1e-12 {
            best = (c, score);
        }
    }
    best.0
}

/// The default tuning grid (log-spaced, as is conventional).
pub const DEFAULT_C_GRID: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_rows() {
        let folds = k_folds(23, 4, 7);
        assert_eq!(folds.len(), 4);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..23).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn folds_are_deterministic() {
        assert_eq!(k_folds(10, 3, 1), k_folds(10, 3, 1));
    }

    fn clustered(n: usize) -> (Dataset, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            x.push(class as f64 * 2.0 + ((i * 13 % 7) as f64) / 10.0);
            y.push(class);
        }
        (Dataset::new(x, n, 1, vec![0.0; n]), y)
    }

    #[test]
    fn cv_score_is_high_on_separable_data() {
        let (data, classes) = clustered(40);
        let score = cv_macro_f1(&data, &classes, 1.0, 4, 3);
        assert!(score > 0.9, "score {score}");
    }

    #[test]
    fn tuning_returns_a_grid_member() {
        let (data, classes) = clustered(30);
        let c = tune_logistic_c(&data, &classes, &DEFAULT_C_GRID, 3, 5);
        assert!(DEFAULT_C_GRID.contains(&c));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let _ = k_folds(10, 1, 0);
    }
}
