//! CART regression trees (variance-reduction splits), the building block of
//! the random forest.

use hsgf_graph::rng::Rng;

use crate::dataset::Dataset;

/// Tree growth parameters. The defaults match scikit-learn's
/// `DecisionTreeRegressor`: grow until pure or until splits stop reducing
/// impurity, with at least 2 samples per split and 1 per leaf.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Maximum depth; `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each resulting leaf.
    pub min_samples_leaf: usize,
    /// Number of candidate features considered per split; `None` = all.
    /// The random forest sets this for feature bagging.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Clone, Debug)]
pub struct DecisionTreeRegressor {
    nodes: Vec<Node>,
    /// Total impurity decrease contributed by each feature (the raw
    /// material of mean-decrease-impurity importances).
    importance_raw: Vec<f64>,
    dim: usize,
}

struct Builder<'a> {
    data: &'a Dataset,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    importance_raw: Vec<f64>,
    rng: Option<&'a mut Rng>,
    /// Scratch: sample indices, partitioned in place during growth.
    order: Vec<usize>,
    total_samples: f64,
}

impl DecisionTreeRegressor {
    /// Fits a deterministic tree on all samples (no randomness).
    pub fn fit(data: &Dataset, config: &TreeConfig) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, config, None)
    }

    /// Fits on an explicit multiset of sample indices (bootstrap support).
    /// `rng` provides feature subsampling when `config.max_features` is set.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: Option<&mut Rng>,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut builder = Builder {
            data,
            config,
            nodes: Vec::new(),
            importance_raw: vec![0.0; data.dim()],
            rng,
            order: indices.to_vec(),
            total_samples: indices.len() as f64,
        };
        builder.grow_all(indices.len());
        DecisionTreeRegressor {
            nodes: builder.nodes,
            importance_raw: builder.importance_raw,
            dim: data.dim(),
        }
    }

    /// Predicts one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts every row of a dataset's design matrix.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_row(data.x.row(i)))
            .collect()
    }

    /// Raw (unnormalized) impurity-decrease totals per feature.
    pub fn importance_raw(&self) -> &[f64] {
        &self.importance_raw
    }

    /// Normalized mean-decrease-impurity feature importances (sum to 1, or
    /// all zeros for a stump).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importance_raw.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.dim];
        }
        self.importance_raw.iter().map(|&v| v / total).collect()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (0 for a single leaf). Iterative: trees can be deep on
    /// pathological splits.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((i, d)) = stack.pop() {
            match &self.nodes[i] {
                Node::Leaf { .. } => max_depth = max_depth.max(d),
                Node::Split { left, right, .. } => {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        max_depth
    }
}

impl Builder<'_> {
    /// Grows the whole tree iteratively with an explicit work stack —
    /// pathological split chains can reach depth O(n), which would overflow
    /// the call stack if grown recursively.
    fn grow_all(&mut self, n: usize) {
        // (node slot to fill, lo, hi, depth)
        let root = self.push(Node::Leaf { value: 0.0 });
        debug_assert_eq!(root, 0);
        let mut stack: Vec<(usize, usize, usize, usize)> = vec![(root, 0, n, 0)];
        while let Some((slot, lo, hi, depth)) = stack.pop() {
            let count = hi - lo;
            let mean = self.mean(lo, hi);
            let depth_ok = self.config.max_depth.map_or(true, |m| depth < m);
            let split = if count >= self.config.min_samples_split && depth_ok {
                self.best_split(lo, hi)
            } else {
                None
            };
            match split {
                None => self.nodes[slot] = Node::Leaf { value: mean },
                Some(split) => {
                    // Partition order[lo..hi] in place around the threshold.
                    let mid = self.partition(lo, hi, split.feature, split.threshold);
                    debug_assert!(mid > lo && mid < hi);
                    if mid == lo || mid == hi {
                        // Degenerate partition (should be unreachable with
                        // the threshold guard): never loop on it.
                        self.nodes[slot] = Node::Leaf { value: mean };
                        continue;
                    }
                    // Weighted impurity decrease, normalized by total
                    // samples (sklearn's convention).
                    self.importance_raw[split.feature] +=
                        split.impurity_decrease / self.total_samples;
                    let left = self.push(Node::Leaf { value: 0.0 });
                    let right = self.push(Node::Leaf { value: 0.0 });
                    self.nodes[slot] = Node::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left,
                        right,
                    };
                    stack.push((right, mid, hi, depth + 1));
                    stack.push((left, lo, mid, depth + 1));
                }
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn mean(&self, lo: usize, hi: usize) -> f64 {
        let sum: f64 = self.order[lo..hi].iter().map(|&i| self.data.y[i]).sum();
        sum / (hi - lo) as f64
    }

    /// Considers every (sampled) feature and every threshold; returns the
    /// split maximizing SSE reduction, or `None` when nothing reduces it.
    fn best_split(&mut self, lo: usize, hi: usize) -> Option<BestSplit> {
        let n = hi - lo;
        let d = self.data.dim();
        let min_leaf = self.config.min_samples_leaf;
        let features: Vec<usize> = match (self.config.max_features, self.rng.as_deref_mut()) {
            (Some(k), Some(rng)) if k < d => {
                // Sample k distinct features.
                let mut picked: Vec<usize> = Vec::with_capacity(k);
                while picked.len() < k {
                    let f = rng.gen_range(0..d);
                    if !picked.contains(&f) {
                        picked.push(f);
                    }
                }
                picked
            }
            _ => (0..d).collect(),
        };
        let total_sum: f64 = self.order[lo..hi].iter().map(|&i| self.data.y[i]).sum();
        let total_sq: f64 = self.order[lo..hi]
            .iter()
            .map(|&i| self.data.y[i] * self.data.y[i])
            .sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;
        let mut best: Option<BestSplit> = None;
        // Scratch: (value, y) pairs, sorted per feature.
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &f in &features {
            pairs.clear();
            pairs.extend(
                self.order[lo..hi]
                    .iter()
                    .map(|&i| (self.data.x.row(i)[f], self.data.y[i])),
            );
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for k in 0..n - 1 {
                let (v, y) = pairs[k];
                left_sum += y;
                left_sq += y * y;
                // Can only split between distinct feature values.
                if v == pairs[k + 1].0 {
                    continue;
                }
                let nl = k + 1;
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / nl as f64)
                    + (right_sq - right_sum * right_sum / nr as f64);
                let decrease = parent_sse - sse;
                if decrease > 1e-12
                    && best
                        .as_ref()
                        .map_or(true, |b| decrease > b.impurity_decrease)
                {
                    // The midpoint of two adjacent floats can round up to
                    // the right value, which would send *every* sample left
                    // and loop forever; fall back to the left value, which
                    // always separates (x <= v keeps exactly nl samples).
                    let next = pairs[k + 1].0;
                    let mut threshold = 0.5 * (v + next);
                    if threshold >= next {
                        threshold = v;
                    }
                    best = Some(BestSplit {
                        feature: f,
                        threshold,
                        impurity_decrease: decrease,
                    });
                }
            }
        }
        best
    }

    /// Stable partition of `order[lo..hi]` by `x[feature] <= threshold`;
    /// returns the boundary index.
    fn partition(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let mut left = Vec::with_capacity(hi - lo);
        let mut right = Vec::with_capacity(hi - lo);
        for &i in &self.order[lo..hi] {
            if self.data.x.row(i)[feature] <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        let mid = lo + left.len();
        self.order[lo..mid].copy_from_slice(&left);
        self.order[mid..hi].copy_from_slice(&right);
        mid
    }
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity_decrease: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separable_step_function() {
        // y = 0 for x < 5, y = 10 for x >= 5.
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let data = Dataset::new(x, 10, 1, y);
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        for i in 0..10 {
            let pred = tree.predict_row(&[i as f64]);
            let want = if i < 5 { 0.0 } else { 10.0 };
            assert_eq!(pred, want, "at x={i}");
        }
    }

    #[test]
    fn fits_training_data_exactly_when_unbounded() {
        // Distinct x ⇒ an unbounded CART can memorize the targets.
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| ((i * 7) % 13) as f64).collect();
        let data = Dataset::new(x, 16, 1, y.clone());
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        let preds = tree.predict(&data);
        assert_eq!(preds, y);
    }

    #[test]
    fn max_depth_limits_depth() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 9) as f64).collect();
        let data = Dataset::new(x, 64, 1, y);
        let config = TreeConfig {
            max_depth: Some(3),
            ..TreeConfig::default()
        };
        let tree = DecisionTreeRegressor::fit(&data, &config);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn constant_target_is_a_single_leaf() {
        let data = Dataset::new(vec![1.0, 2.0, 3.0, 4.0], 4, 1, vec![5.0; 4]);
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_row(&[100.0]), 5.0);
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        // Feature 0 fully determines y; feature 1 is noise-like.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.extend([(i / 10) as f64, ((i * 17) % 5) as f64]);
            y.push((i / 10) as f64 * 2.0);
        }
        let data = Dataset::new(x, 40, 2, y);
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        let imp = tree.feature_importances();
        assert!(imp[0] > 0.95, "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = Dataset::new(x, 10, 1, y);
        let config = TreeConfig {
            min_samples_leaf: 5,
            ..TreeConfig::default()
        };
        let tree = DecisionTreeRegressor::fit(&data, &config);
        // Only one split is possible: 5 | 5.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn adjacent_float_values_split_without_looping() {
        // Two feature values one ULP apart: the naive midpoint rounds up to
        // the larger value, which would make the partition a no-op and the
        // builder loop forever (allocating nodes until OOM).
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let x = vec![lo, lo, hi, hi];
        let y = vec![0.0, 0.0, 10.0, 10.0];
        let data = Dataset::new(x, 4, 1, y);
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        assert_eq!(tree.predict_row(&[lo]), 0.0);
        assert_eq!(tree.predict_row(&[hi]), 10.0);
        assert!(tree.node_count() <= 7);
        // And every prediction stays finite.
        assert!(tree.predict(&data).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn survives_pathological_chain_depth() {
        // A target that forces one sample off per split: depth ~ n. The
        // iterative builder must not overflow any stack.
        let n = 4000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).powf(1.001)).collect();
        let data = Dataset::new(x, n, 1, y);
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        assert!(tree.node_count() >= n, "memorizing tree expected");
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        // All x identical: no valid split exists.
        let data = Dataset::new(vec![3.0; 8], 8, 1, (0..8).map(|i| i as f64).collect());
        let tree = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
    }
}
