//! Self-contained machine-learning substrate for the HSGF reproduction.
//!
//! The paper evaluates heterogeneous subgraph features with scikit-learn's
//! default models (§4.2.3, §4.3.3); this crate re-implements exactly the
//! pieces those experiments need, from scratch, on top of a tiny dense
//! linear-algebra core:
//!
//! * [`linreg::LinearRegression`] — ordinary least squares.
//! * [`ridge::BayesianRidge`] — evidence-maximization Bayesian ridge with
//!   scikit-learn's default hyper-priors.
//! * [`tree::DecisionTreeRegressor`] / [`forest::RandomForestRegressor`] —
//!   CART and bagged forests with mean-decrease-impurity feature
//!   importances (the paper's Fig. 4 tooling).
//! * [`logreg::LogisticRegression`] / [`logreg::OneVsAllClassifier`] — the
//!   label-prediction classifier.
//! * [`select`] — univariate F-score selection (`SelectKBest`).
//! * [`metrics`] — NDCG@n (paper Eq. 6), Macro-F1 (Eq. 7), confidence
//!   intervals.
//! * [`dataset`] / [`linalg`] — dense matrices, splits, standardization,
//!   Cholesky, and a Jacobi eigensolver.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod crossval;
pub mod dataset;
pub mod forest;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod metrics;
pub mod ridge;
pub mod select;
pub mod tree;

pub use dataset::{Dataset, StandardScaler};
pub use forest::{ForestConfig, RandomForestRegressor};
pub use linreg::LinearRegression;
pub use logreg::{LogisticConfig, LogisticRegression, OneVsAllClassifier};
pub use ridge::{BayesianRidge, BayesianRidgeConfig};
pub use tree::{DecisionTreeRegressor, TreeConfig};

/// The regression models compared in the paper's rank-prediction task
/// (§4.2.3), unified behind one interface for the experiment harness.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegressorKind {
    /// Ordinary least squares on the top-5 selected features.
    Linear,
    /// CART on the top-5 selected features.
    DecisionTree,
    /// 300-tree random forest on all features.
    RandomForest,
    /// Bayesian ridge on the top-60 selected features.
    BayesianRidge,
}

impl RegressorKind {
    /// All four regressors in the paper's presentation order.
    pub const ALL: [RegressorKind; 4] = [
        RegressorKind::Linear,
        RegressorKind::DecisionTree,
        RegressorKind::RandomForest,
        RegressorKind::BayesianRidge,
    ];

    /// Display name matching the paper's Table 1 column headers.
    pub fn name(self) -> &'static str {
        match self {
            RegressorKind::Linear => "LinRegr",
            RegressorKind::DecisionTree => "DecTree",
            RegressorKind::RandomForest => "RanForest",
            RegressorKind::BayesianRidge => "BayRidge",
        }
    }

    /// The univariate pre-selection size the paper uses for this model
    /// (§4.2.3): top-5 for linear/tree, top-60 for Bayesian ridge, none for
    /// random forests.
    pub fn feature_selection_k(self) -> Option<usize> {
        match self {
            RegressorKind::Linear | RegressorKind::DecisionTree => Some(5),
            RegressorKind::BayesianRidge => Some(60),
            RegressorKind::RandomForest => None,
        }
    }

    /// Fits this regressor and predicts on the test set, applying the
    /// paper's per-model feature selection on the training data.
    pub fn fit_predict(self, train: &Dataset, test: &Dataset, seed: u64) -> Vec<f64> {
        let (train, test) = match self.feature_selection_k() {
            Some(k) if train.dim() > k => {
                let (reduced, cols) = select::select_k_best_columns(train, k);
                (reduced, test.select_columns(&cols))
            }
            _ => (train.clone(), test.clone()),
        };
        match self {
            RegressorKind::Linear => LinearRegression::fit(&train).predict(&test),
            RegressorKind::DecisionTree => {
                DecisionTreeRegressor::fit(&train, &TreeConfig::default()).predict(&test)
            }
            RegressorKind::RandomForest => {
                let config = ForestConfig {
                    seed,
                    ..ForestConfig::default()
                };
                RandomForestRegressor::fit(&train, &config).predict(&test)
            }
            RegressorKind::BayesianRidge => BayesianRidge::fit(&train).predict(&test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_kinds_fit_and_predict() {
        let n = 60;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 10) as f64;
            let b = (i % 3) as f64;
            x.extend([a, b, 1.0]);
            y.push(2.0 * a + b);
        }
        let data = Dataset::new(x, n, 3, y);
        let (train, test) = data.split(0.7, 9);
        for kind in RegressorKind::ALL {
            let preds = kind.fit_predict(&train, &test, 1);
            assert_eq!(preds.len(), test.len());
            let r2 = metrics::r2(&preds, &test.y);
            assert!(r2 > 0.8, "{} r2 = {r2}", kind.name());
        }
    }

    #[test]
    fn names_match_table_1() {
        let names: Vec<&str> = RegressorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["LinRegr", "DecTree", "RanForest", "BayRidge"]);
    }
}
