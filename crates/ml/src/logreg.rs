//! L2-regularized logistic regression with a one-vs-all multiclass wrapper,
//! matching the classifier setup of the paper's label-prediction evaluation
//! (§4.3.3: "logistic regression … tune the regularization strength and use
//! L2 regularization … one vs. all setting").
//!
//! Optimization: full-batch gradient descent with backtracking line search
//! on the regularized cross-entropy. Robust and dependency-free; dataset
//! sizes here (≤ a few thousand rows, ≤ a few thousand features) converge
//! in well under the iteration cap.

use crate::dataset::Dataset;
use crate::linalg::dot;

/// Binary logistic regression parameters.
#[derive(Clone, Debug)]
pub struct LogisticConfig {
    /// Inverse regularization strength (sklearn's `C`); larger = weaker
    /// regularization.
    pub c: f64,
    /// Maximum gradient-descent iterations.
    pub max_iter: usize,
    /// Stop when the gradient max-norm falls below this.
    pub tol: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            c: 1.0,
            max_iter: 500,
            tol: 1e-5,
        }
    }
}

/// A fitted binary logistic model `P(y=1|x) = σ(w·x + b)`.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept (unpenalized).
    pub intercept: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits on binary targets (`y ∈ {0, 1}`).
    pub fn fit(data: &Dataset, config: &LogisticConfig) -> Self {
        let n = data.len();
        let d = data.dim();
        assert!(n > 0, "cannot fit on an empty dataset");
        debug_assert!(
            data.y.iter().all(|&y| y == 0.0 || y == 1.0),
            "targets must be 0/1"
        );
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        // Regularization on the mean loss: penalty 1/(2 C n) ||w||².
        let reg = 1.0 / (config.c * n as f64);
        let mut probs = vec![0.0; n];
        let loss = |w: &[f64], b: f64, probs: &mut [f64]| -> f64 {
            let mut total = 0.0;
            for i in 0..n {
                let z = dot(w, data.x.row(i)) + b;
                let p = sigmoid(z);
                probs[i] = p;
                let y = data.y[i];
                // Numerically safe cross-entropy.
                let eps = 1e-12;
                total -= y * (p.max(eps)).ln() + (1.0 - y) * ((1.0 - p).max(eps)).ln();
            }
            total / n as f64 + 0.5 * reg * w.iter().map(|x| x * x).sum::<f64>()
        };
        let mut current = loss(&w, b, &mut probs);
        let mut grad_w = vec![0.0; d];
        let mut step = 1.0;
        for _ in 0..config.max_iter {
            // Gradient of the mean loss.
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for i in 0..n {
                let err = probs[i] - data.y[i];
                grad_b += err;
                if err != 0.0 {
                    for (g, &x) in grad_w.iter_mut().zip(data.x.row(i)) {
                        *g += err * x;
                    }
                }
            }
            let inv_n = 1.0 / n as f64;
            for (g, &wi) in grad_w.iter_mut().zip(&w) {
                *g = *g * inv_n + reg * wi;
            }
            grad_b *= inv_n;
            let gmax = grad_w
                .iter()
                .chain(std::iter::once(&grad_b))
                .fold(0.0f64, |m, &g| m.max(g.abs()));
            if gmax < config.tol {
                break;
            }
            // Backtracking line search along the negative gradient.
            let mut accepted = false;
            for _ in 0..40 {
                let cand_w: Vec<f64> = w
                    .iter()
                    .zip(&grad_w)
                    .map(|(&wi, &g)| wi - step * g)
                    .collect();
                let cand_b = b - step * grad_b;
                let cand_loss = loss(&cand_w, cand_b, &mut probs);
                if cand_loss <= current - 1e-4 * step * gmax * gmax {
                    w = cand_w;
                    b = cand_b;
                    current = cand_loss;
                    step *= 1.3; // gentle growth for the next iteration
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break; // step underflow: converged as far as f64 allows
            }
        }
        LogisticRegression {
            weights: w,
            intercept: b,
        }
    }

    /// `P(y = 1 | row)`.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, row) + self.intercept)
    }

    /// Probabilities for every row.
    pub fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_proba_row(data.x.row(i)))
            .collect()
    }

    /// Hard 0/1 predictions at threshold 0.5.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        self.predict_proba(data)
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect()
    }
}

/// One-vs-all multiclass wrapper: one binary classifier per class, predict
/// the argmax probability (paper §4.3.3).
#[derive(Clone, Debug)]
pub struct OneVsAllClassifier {
    models: Vec<LogisticRegression>,
    /// The class ids, aligned with `models`.
    pub classes: Vec<usize>,
}

impl OneVsAllClassifier {
    /// Fits one binary model per distinct class in `labels`.
    pub fn fit(x: &Dataset, labels: &[usize], config: &LogisticConfig) -> Self {
        assert_eq!(x.len(), labels.len(), "one label per row");
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let models = classes
            .iter()
            .map(|&c| {
                let y: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { 0.0 })
                    .collect();
                let binary = Dataset { x: x.x.clone(), y };
                LogisticRegression::fit(&binary, config)
            })
            .collect();
        OneVsAllClassifier { models, classes }
    }

    /// Predicts the class with the highest per-class probability per row.
    pub fn predict(&self, x: &Dataset) -> Vec<usize> {
        (0..x.len())
            .map(|i| {
                let row = x.x.row(i);
                let mut best = (0usize, f64::NEG_INFINITY);
                for (k, model) in self.models.iter().enumerate() {
                    let p = model.predict_proba_row(row);
                    if p > best.1 {
                        best = (k, p);
                    }
                }
                self.classes[best.0]
            })
            .collect()
    }

    /// Per-class probabilities for one row, aligned with `classes`.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        self.models
            .iter()
            .map(|m| m.predict_proba_row(row))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        // y = 1 iff x0 > 0.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = (i as f64 - 19.5) / 5.0;
            x.extend([v, ((i * 7) % 3) as f64]);
            y.push(if v > 0.0 { 1.0 } else { 0.0 });
        }
        Dataset::new(x, 40, 2, y)
    }

    #[test]
    fn separates_linearly_separable_data() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticConfig::default());
        let preds = model.predict(&data);
        let correct = preds
            .iter()
            .zip(&data.y)
            .filter(|(p, t)| (*p - **t).abs() < 0.5)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
        assert!(model.weights[0] > 0.5, "weights: {:?}", model.weights);
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let data = separable();
        let strong = LogisticRegression::fit(
            &data,
            &LogisticConfig {
                c: 0.01,
                ..Default::default()
            },
        );
        let weak = LogisticRegression::fit(
            &data,
            &LogisticConfig {
                c: 100.0,
                ..Default::default()
            },
        );
        let ns: f64 = strong.weights.iter().map(|w| w * w).sum();
        let nw: f64 = weak.weights.iter().map(|w| w * w).sum();
        assert!(ns < nw, "strong {ns} vs weak {nw}");
    }

    #[test]
    fn probabilities_are_valid_and_monotone() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticConfig::default());
        let p_low = model.predict_proba_row(&[-5.0, 0.0]);
        let p_high = model.predict_proba_row(&[5.0, 0.0]);
        assert!((0.0..=1.0).contains(&p_low));
        assert!((0.0..=1.0).contains(&p_high));
        assert!(p_high > p_low);
    }

    #[test]
    fn one_vs_all_three_classes() {
        // Three clusters on a line: class = 0 / 1 / 2.
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i / 20;
            let v = class as f64 * 4.0 + ((i % 20) as f64) / 10.0;
            x.push(v);
            labels.push(class);
        }
        let data = Dataset::new(x, 60, 1, vec![0.0; 60]);
        let clf = OneVsAllClassifier::fit(&data, &labels, &LogisticConfig::default());
        assert_eq!(clf.classes, vec![0, 1, 2]);
        let preds = clf.predict(&data);
        let correct = preds.iter().zip(&labels).filter(|(p, t)| p == t).count();
        assert!(correct >= 54, "only {correct}/60 correct");
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }
}
