//! Dense supervised datasets, splits, and standardization.

use hsgf_graph::rng::Rng;

use crate::linalg::Mat;

/// A dense design matrix with targets.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `n × d` design matrix.
    pub x: Mat,
    /// Targets, length `n`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from a flat row-major buffer.
    pub fn new(x: Vec<f64>, n: usize, d: usize, y: Vec<f64>) -> Self {
        assert_eq!(y.len(), n, "one target per row");
        Dataset {
            x: Mat::from_vec(x, n, d),
            y,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Restriction to a subset of column indices.
    pub fn select_columns(&self, cols: &[usize]) -> Dataset {
        let n = self.len();
        let mut data = Vec::with_capacity(n * cols.len());
        for i in 0..n {
            let row = self.x.row(i);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Dataset {
            x: Mat::from_vec(data, n, cols.len()),
            y: self.y.clone(),
        }
    }

    /// Restriction to a subset of row indices.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let d = self.dim();
        let mut data = Vec::with_capacity(rows.len() * d);
        let mut y = Vec::with_capacity(rows.len());
        for &r in rows {
            data.extend_from_slice(self.x.row(r));
            y.push(self.y[r]);
        }
        Dataset {
            x: Mat::from_vec(data, rows.len(), d),
            y,
        }
    }

    /// Seeded random train/test split with `train_fraction` of rows in the
    /// first part.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng::from_seed(seed);
        rng.shuffle(&mut order);
        let cut = ((n as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(usize::from(n > 1), n.saturating_sub(usize::from(n > 1)));
        (
            self.select_rows(&order[..cut]),
            self.select_rows(&order[cut..]),
        )
    }
}

/// Column-wise standardizer (zero mean, unit variance), fit on training
/// data and applied to both splits.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    means: Vec<f64>,
    /// Standard deviations, with zero-variance columns clamped to 1 so they
    /// map to a constant 0 instead of NaN.
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations per column.
    pub fn fit(x: &Mat) -> Self {
        let (n, d) = (x.rows(), x.cols());
        let mut means = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        let n_f = (n.max(1)) as f64;
        for m in &mut means {
            *m /= n_f;
        }
        let mut vars = vec![0.0; d];
        for i in 0..n {
            for ((s, &v), &m) in vars.iter_mut().zip(x.row(i)).zip(&means) {
                let c = v - m;
                *s += c * c;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n_f).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Applies the transform, returning a new matrix.
    pub fn transform(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.means.len());
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Fit and transform in one call.
    pub fn fit_transform(x: &Mat) -> (Self, Mat) {
        let scaler = Self::fit(x);
        let t = scaler.transform(x);
        (scaler, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0],
            4,
            2,
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn select_columns_and_rows() {
        let d = toy();
        let c = d.select_columns(&[1]);
        assert_eq!(c.dim(), 1);
        assert_eq!(c.x.row(2), &[30.0]);
        let r = d.select_rows(&[3, 0]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.x.row(0), &[4.0, 40.0]);
        assert_eq!(r.y, vec![4.0, 1.0]);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let (tr, te) = d.split(0.5, 7);
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 2);
        // The split must be a permutation: target multiset preserved.
        let mut all: Vec<f64> = tr.y.iter().chain(te.y.iter()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.5, 42);
        let (b, _) = d.split(0.5, 42);
        assert_eq!(a.y, b.y);
        let (c, _) = d.split(0.5, 43);
        // Different seed usually differs; don't assert strictly but check
        // shape stays right.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn split_never_produces_empty_parts_for_n_ge_2() {
        let d = toy();
        let (tr, te) = d.split(0.0, 1);
        assert!(tr.len() >= 1);
        assert!(te.len() >= 1);
        let (tr, te) = d.split(1.0, 1);
        assert!(tr.len() >= 1);
        assert!(te.len() >= 1);
    }

    #[test]
    fn scaler_zero_mean_unit_variance() {
        let d = toy();
        let (_, t) = StandardScaler::fit_transform(&d.x);
        for c in 0..2 {
            let mean: f64 = (0..4).map(|i| t.row(i)[c]).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|i| t.row(i)[c] * t.row(i)[c]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_handles_constant_columns() {
        let x = Mat::from_vec(vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0], 3, 2);
        let (_, t) = StandardScaler::fit_transform(&x);
        for i in 0..3 {
            assert_eq!(t.row(i)[0], 0.0, "constant column maps to 0, not NaN");
            assert!(t.row(i)[1].is_finite());
        }
    }
}
