//! Minimal dense linear algebra: row-major matrices, Cholesky solves, and a
//! Jacobi eigensolver for symmetric matrices.
//!
//! Sized for the workloads in this workspace — design matrices of a few
//! thousand rows and at most a few hundred selected columns — where simple
//! cache-friendly loops are entirely adequate.

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must match shape");
        Mat { data, rows, cols }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        self.data
            .chunks_exact(self.cols)
            .map(|row| dot(row, x))
            .collect()
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (i, row) in self.data.chunks_exact(self.cols).enumerate() {
            let xi = x[i];
            if xi != 0.0 {
                for (o, &a) in out.iter_mut().zip(row) {
                    *o += a * xi;
                }
            }
        }
        out
    }

    /// The Gram matrix `AᵀA` (symmetric `cols × cols`).
    pub fn gram(&self) -> Mat {
        let d = self.cols;
        let mut g = Mat::zeros(d, d);
        for row in self.data.chunks_exact(d) {
            for i in 0..d {
                let ri = row[i];
                if ri != 0.0 {
                    for j in i..d {
                        g[(i, j)] += ri * row[j];
                    }
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = A`, or `None` when `A` is not
/// (numerically) positive definite.
pub fn cholesky(a: &Mat) -> Option<Mat> {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky; adds escalating diagonal
/// jitter when the factorization fails (up to `1e-4 · trace/n`), and
/// returns `None` only if even that fails.
pub fn solve_spd(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(b.len(), n);
    let trace_mean = (0..n)
        .map(|i| a[(i, i)].abs())
        .sum::<f64>()
        .max(f64::MIN_POSITIVE)
        / n as f64;
    for attempt in 0..8 {
        let mut aj = a.clone();
        if attempt > 0 {
            let jitter = trace_mean * 1e-10 * 10f64.powi(attempt);
            for i in 0..n {
                aj[(i, i)] += jitter;
            }
        }
        if let Some(l) = cholesky(&aj) {
            return Some(cholesky_solve(&l, b));
        }
    }
    None
}

/// Solves `L Lᵀ x = b` given the Cholesky factor `L`.
pub fn cholesky_solve(l: &Mat, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Eigenvalues (ascending) of a symmetric matrix via the cyclic Jacobi
/// method. Adequate for the `d ≤ a few hundred` Gram matrices used by the
/// Bayesian ridge evidence updates.
pub fn symmetric_eigenvalues(a: &Mat) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let mut m = a.clone();
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + frobenius(&m)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    eig.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    eig
}

fn frobenius(m: &Mat) -> f64 {
    m.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Mat::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Mat::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let g = a.gram();
        // AᵀA = [[10, 14], [14, 20]].
        assert_eq!(g[(0, 0)], 10.0);
        assert_eq!(g[(0, 1)], 14.0);
        assert_eq!(g[(1, 0)], 14.0);
        assert_eq!(g[(1, 1)], 20.0);
    }

    #[test]
    fn cholesky_roundtrip() {
        // SPD matrix.
        let a = Mat::from_vec(vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.5, 0.6, 1.5, 3.8], 3, 3);
        let l = cholesky(&a).expect("SPD");
        // L Lᵀ == A.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!(approx(s, a[(i, j)], 1e-12), "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_vec(vec![1.0, 2.0, 2.0, 1.0], 2, 2);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Mat::from_vec(vec![4.0, 1.0, 1.0, 3.0], 2, 2);
        let x_true = [0.5, -2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).expect("solvable");
        assert!(approx(x[0], x_true[0], 1e-12));
        assert!(approx(x[1], x_true[1], 1e-12));
    }

    #[test]
    fn solve_spd_survives_semidefinite_with_jitter() {
        // Rank-1 matrix: singular, but jitter makes it solvable.
        let a = Mat::from_vec(vec![1.0, 1.0, 1.0, 1.0], 2, 2);
        let x = solve_spd(&a, &[2.0, 2.0]);
        assert!(x.is_some());
        let x = x.unwrap();
        // A x should be close to b in the least-squares sense.
        let b = a.matvec(&x);
        assert!(approx(b[0], 2.0, 1e-3));
    }

    #[test]
    fn jacobi_eigenvalues_of_diagonal() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 7.0;
        let e = symmetric_eigenvalues(&a);
        assert!(approx(e[0], -1.0, 1e-12));
        assert!(approx(e[1], 3.0, 1e-12));
        assert!(approx(e[2], 7.0, 1e-12));
    }

    #[test]
    fn jacobi_eigenvalues_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Mat::from_vec(vec![2.0, 1.0, 1.0, 2.0], 2, 2);
        let e = symmetric_eigenvalues(&a);
        assert!(approx(e[0], 1.0, 1e-10));
        assert!(approx(e[1], 3.0, 1e-10));
    }

    #[test]
    fn jacobi_trace_and_positivity_on_gram() {
        let a = Mat::from_vec(vec![1.0, 2.0, 0.5, -1.0, 2.0, 0.0], 3, 2);
        let g = a.gram();
        let e = symmetric_eigenvalues(&g);
        let trace = g[(0, 0)] + g[(1, 1)];
        assert!(approx(e.iter().sum::<f64>(), trace, 1e-10));
        assert!(
            e.iter().all(|&x| x > -1e-10),
            "Gram eigenvalues are non-negative"
        );
    }
}
