//! Bayesian ridge regression via evidence maximization, mirroring the
//! scikit-learn `BayesianRidge` defaults the paper relies on (§4.2.3).
//!
//! Model: `y ~ N(Xw, 1/α)`, `w ~ N(0, 1/λ)`. The noise precision `α` and
//! weight precision `λ` are re-estimated by MacKay's fixed-point updates:
//!
//! ```text
//! γ  = Σ_i α s_i / (λ + α s_i)        (s_i: eigenvalues of XᵀX, centred)
//! λ  = (γ + 2 λ_1) / (‖w‖² + 2 λ_2)
//! α  = (n − γ + 2 α_1) / (‖y − Xw‖² + 2 α_2)
//! ```
//!
//! with tiny Gamma hyper-priors `α_1 = α_2 = λ_1 = λ_2 = 1e-6` as in
//! scikit-learn. Data is centred internally; the intercept is exact.

use crate::dataset::Dataset;
use crate::linalg::{dot, solve_spd, symmetric_eigenvalues, Mat};

/// Configuration for [`BayesianRidge::fit_with`].
#[derive(Clone, Debug)]
pub struct BayesianRidgeConfig {
    /// Maximum fixed-point iterations (sklearn: 300).
    pub max_iter: usize,
    /// Convergence tolerance on the weight change (sklearn: 1e-3).
    pub tol: f64,
    /// Gamma prior parameters (sklearn: all 1e-6).
    pub alpha_1: f64,
    /// See `alpha_1`.
    pub alpha_2: f64,
    /// See `alpha_1`.
    pub lambda_1: f64,
    /// See `alpha_1`.
    pub lambda_2: f64,
}

impl Default for BayesianRidgeConfig {
    fn default() -> Self {
        BayesianRidgeConfig {
            max_iter: 300,
            tol: 1e-3,
            alpha_1: 1e-6,
            alpha_2: 1e-6,
            lambda_1: 1e-6,
            lambda_2: 1e-6,
        }
    }
}

/// A fitted Bayesian ridge model.
#[derive(Clone, Debug)]
pub struct BayesianRidge {
    /// Posterior mean weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Final noise precision.
    pub alpha: f64,
    /// Final weight precision.
    pub lambda: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

impl BayesianRidge {
    /// Fits with default (scikit-learn) hyperparameters.
    pub fn fit(data: &Dataset) -> Self {
        Self::fit_with(data, &BayesianRidgeConfig::default())
    }

    /// Fits with explicit hyperparameters.
    pub fn fit_with(data: &Dataset, config: &BayesianRidgeConfig) -> Self {
        let n = data.len();
        let d = data.dim();
        assert!(n > 0, "cannot fit on an empty dataset");
        let y_mean = data.y.iter().sum::<f64>() / n as f64;
        if d == 0 {
            return BayesianRidge {
                weights: Vec::new(),
                intercept: y_mean,
                alpha: 1.0,
                lambda: 1.0,
                iterations: 0,
            };
        }
        // Centre the data.
        let mut x_mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(data.x.row(i)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let mut xc = Mat::zeros(n, d);
        for i in 0..n {
            let src = data.x.row(i);
            let row = xc.row_mut(i);
            for ((o, &v), &m) in row.iter_mut().zip(src).zip(&x_mean) {
                *o = v - m;
            }
        }
        let yc: Vec<f64> = data.y.iter().map(|&v| v - y_mean).collect();

        let gram = xc.gram();
        let xty = xc.tr_matvec(&yc);
        let eig = symmetric_eigenvalues(&gram);
        let y_var = yc.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let mut alpha = if y_var > 0.0 { 1.0 / y_var } else { 1.0 };
        let mut lambda = 1.0;
        let mut weights = vec![0.0; d];
        let mut iterations = 0;
        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // Posterior mean: (λ/α I + XᵀX) w = Xᵀy.
            let mut a = gram.clone();
            let ridge = lambda / alpha;
            for i in 0..d {
                a[(i, i)] += ridge;
            }
            let new_weights = solve_spd(&a, &xty).unwrap_or_else(|| vec![0.0; d]);
            // Effective number of parameters.
            let gamma: f64 = eig
                .iter()
                .map(|&s| (alpha * s.max(0.0)) / (lambda + alpha * s.max(0.0)))
                .sum();
            // Residual sum of squares.
            let pred = xc.matvec(&new_weights);
            let rss: f64 = pred.iter().zip(&yc).map(|(p, t)| (p - t) * (p - t)).sum();
            let wtw: f64 = new_weights.iter().map(|w| w * w).sum();
            lambda = (gamma + 2.0 * config.lambda_1) / (wtw + 2.0 * config.lambda_2);
            alpha = ((n as f64 - gamma) + 2.0 * config.alpha_1) / (rss + 2.0 * config.alpha_2);
            // Numerical guard: a near-perfect fit drives rss → 0 and
            // α → ∞ (and an all-zero solution drives λ likewise); clamp
            // both precisions so the next solve stays finite, as sklearn's
            // SVD formulation implicitly does.
            alpha = alpha.clamp(1e-12, 1e12);
            lambda = lambda.clamp(1e-12, 1e12);
            let delta: f64 = new_weights
                .iter()
                .zip(&weights)
                .map(|(a, b)| (a - b).abs())
                .sum();
            weights = new_weights;
            if !delta.is_finite() {
                // Abandon a diverged iteration, keeping the last finite
                // weights (possibly the zero vector from the first solve).
                weights = weights
                    .iter()
                    .map(|w| if w.is_finite() { *w } else { 0.0 })
                    .collect();
                break;
            }
            if delta < config.tol {
                break;
            }
        }
        let intercept = y_mean - dot(&weights, &x_mean);
        BayesianRidge {
            weights,
            intercept,
            alpha,
            lambda,
            iterations,
        }
    }

    /// Predicts one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.intercept
    }

    /// Predicts every row of a dataset's design matrix.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_row(data.x.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::rng::Rng;

    use super::*;

    fn noisy_linear(seed: u64, n: usize, noise: f64) -> Dataset {
        let mut rng = Rng::from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            x.extend([a, b]);
            y.push(1.5 * a - 0.5 * b + 2.0 + noise * rng.gen_range(-1.0..1.0));
        }
        Dataset::new(x, n, 2, y)
    }

    #[test]
    fn recovers_coefficients_with_low_noise() {
        let data = noisy_linear(3, 200, 0.01);
        let model = BayesianRidge::fit(&data);
        assert!((model.weights[0] - 1.5).abs() < 0.05, "{:?}", model.weights);
        assert!((model.weights[1] + 0.5).abs() < 0.05);
        assert!((model.intercept - 2.0).abs() < 0.05);
    }

    #[test]
    fn shrinks_under_heavy_noise() {
        // With noise dominating, the prior should shrink weights toward 0
        // relative to plain OLS.
        let data = noisy_linear(5, 30, 20.0);
        let ridge = BayesianRidge::fit(&data);
        let ols = crate::linreg::LinearRegression::fit(&data);
        let r_norm: f64 = ridge.weights.iter().map(|w| w * w).sum();
        let o_norm: f64 = ols.weights.iter().map(|w| w * w).sum();
        assert!(r_norm <= o_norm + 1e-9, "ridge {r_norm} vs ols {o_norm}");
    }

    #[test]
    fn converges_and_reports_iterations() {
        let data = noisy_linear(7, 100, 0.1);
        let model = BayesianRidge::fit(&data);
        assert!(model.iterations >= 1);
        assert!(model.iterations <= 300);
        assert!(model.alpha > 0.0);
        assert!(model.lambda > 0.0);
    }

    #[test]
    fn constant_target() {
        let data = Dataset::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2, vec![4.0; 3]);
        let model = BayesianRidge::fit(&data);
        for w in &model.weights {
            assert!(w.abs() < 1e-6);
        }
        assert!((model.intercept - 4.0).abs() < 1e-6);
    }

    #[test]
    fn zero_features_predicts_mean() {
        let data = Dataset::new(vec![], 4, 0, vec![1.0, 3.0, 5.0, 7.0]);
        let model = BayesianRidge::fit(&data);
        assert!((model.intercept - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exact_interpolation_stays_finite() {
        // rss → 0 drives the noise precision toward ∞; the clamp must keep
        // weights and predictions finite.
        let n = 50;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = i as f64;
            x.extend([a, 2.0 * a + 1.0]);
            y.push(3.0 * a); // exactly linear in the features
        }
        let data = Dataset::new(x, n, 2, y);
        let model = BayesianRidge::fit(&data);
        assert!(
            model.weights.iter().all(|w| w.is_finite()),
            "{:?}",
            model.weights
        );
        assert!(model.intercept.is_finite());
        let preds = model.predict(&data);
        assert!(preds.iter().all(|p| p.is_finite()));
        for (p, t) in preds.iter().zip(&data.y) {
            assert!((p - t).abs() < 1e-3, "pred {p} vs {t}");
        }
    }
}
