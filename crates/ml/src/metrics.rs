//! Evaluation metrics: NDCG@n for the rank-prediction task (paper Eq. 6)
//! and Macro-F1 for label prediction (paper Eq. 7), plus confidence
//! intervals for repeated runs.

/// NDCG at `n` as defined in the paper (Eq. 6): items are ordered by the
/// predicted scores; the DCG of the true relevances in that order is
/// normalized by the ideal DCG of the true ranking. Discount is
/// `1 / log2(position + 1)`, relevances enter linearly.
///
/// Returns 1.0 for degenerate inputs with no positive relevance.
pub fn ndcg_at(predicted_scores: &[f64], true_relevance: &[f64], n: usize) -> f64 {
    assert_eq!(predicted_scores.len(), true_relevance.len());
    let count = predicted_scores.len();
    let n = n.min(count);
    if n == 0 {
        return 1.0;
    }
    // total_cmp keeps the metric well-defined even if a degenerate model
    // emits NaN (NaN orders below every finite score here).
    let mut by_pred: Vec<usize> = (0..count).collect();
    by_pred.sort_by(|&a, &b| {
        predicted_scores[b]
            .total_cmp(&predicted_scores[a])
            .then(a.cmp(&b))
    });
    let mut by_true: Vec<usize> = (0..count).collect();
    by_true.sort_by(|&a, &b| {
        true_relevance[b]
            .total_cmp(&true_relevance[a])
            .then(a.cmp(&b))
    });
    let dcg: f64 = by_pred[..n]
        .iter()
        .enumerate()
        .map(|(pos, &item)| true_relevance[item] / ((pos + 2) as f64).log2())
        .sum();
    let idcg: f64 = by_true[..n]
        .iter()
        .enumerate()
        .map(|(pos, &item)| true_relevance[item] / ((pos + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Standard macro-averaged F1 over classes: per-class precision/recall from
/// the multiclass confusion counts, averaged unweighted. This is the metric
/// the node2vec / DeepPWalk evaluations report, which the paper mirrors for
/// comparability (§4.3.1).
pub fn macro_f1(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let mut classes: Vec<usize> = truth.iter().chain(predicted.iter()).copied().collect();
    classes.sort_unstable();
    classes.dedup();
    let mut f1_sum = 0.0;
    for &c in &classes {
        let tp = predicted
            .iter()
            .zip(truth)
            .filter(|&(&p, &t)| p == c && t == c)
            .count() as f64;
        let fp = predicted
            .iter()
            .zip(truth)
            .filter(|&(&p, &t)| p == c && t != c)
            .count() as f64;
        let fn_ = predicted
            .iter()
            .zip(truth)
            .filter(|&(&p, &t)| p != c && t == c)
            .count() as f64;
        let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let rec = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        f1_sum += if prec + rec > 0.0 {
            2.0 * prec * rec / (prec + rec)
        } else {
            0.0
        };
    }
    f1_sum / classes.len() as f64
}

/// Fraction of exact matches.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / predicted.len() as f64
}

/// Mean and half-width of the 95% confidence interval of a sample
/// (normal approximation: `1.96 · s / √n`).
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

/// Mean squared error.
pub fn mse(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predicted.len() as f64
}

/// Coefficient of determination `R²`.
pub fn r2(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    let n = truth.len();
    if n == 0 {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    if ss_tot <= 0.0 {
        if ss_res <= 1e-24 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_1() {
        let rel = [10.0, 8.0, 5.0, 1.0];
        let scores = [4.0, 3.0, 2.0, 1.0];
        assert!((ndcg_at(&scores, &rel, 4) - 1.0).abs() < 1e-12);
        assert!((ndcg_at(&scores, &rel, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_is_below_1() {
        let rel = [10.0, 8.0, 5.0, 1.0];
        let scores = [1.0, 2.0, 3.0, 4.0];
        let v = ndcg_at(&scores, &rel, 4);
        assert!(v < 1.0 && v > 0.0, "got {v}");
    }

    #[test]
    fn ndcg_known_value() {
        // Two items, reversed: DCG = 0/1 + 1/log2(3); IDCG = 1/1 + 0.
        let rel = [0.0, 1.0];
        let scores = [2.0, 1.0];
        let expected = (1.0 / 3f64.log2()) / 1.0;
        assert!((ndcg_at(&scores, &rel, 2) - expected).abs() < 1e-12);
    }

    #[test]
    fn ndcg_top_n_smaller_than_list() {
        let rel = [3.0, 2.0, 1.0, 0.0];
        let scores = [3.0, 2.0, 1.0, 0.0];
        assert!((ndcg_at(&scores, &rel, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_degenerate_all_zero_relevance() {
        assert_eq!(ndcg_at(&[1.0, 2.0], &[0.0, 0.0], 2), 1.0);
        assert_eq!(ndcg_at(&[], &[], 5), 1.0);
    }

    #[test]
    fn ndcg_tolerates_nan_scores() {
        // NaN sorts below every finite prediction under total_cmp's
        // descending order here; the metric stays finite.
        let rel = [3.0, 2.0, 1.0];
        let v = ndcg_at(&[f64::NAN, 1.0, 2.0], &rel, 3);
        assert!(v.is_finite());
        assert!(v < 1.0);
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        let truth = [0, 0, 1, 1, 2, 2];
        assert!((macro_f1(&truth, &truth) - 1.0).abs() < 1e-12);
        let wrong = [1, 1, 2, 2, 0, 0];
        assert_eq!(macro_f1(&wrong, &truth), 0.0);
    }

    #[test]
    fn macro_f1_weighs_classes_equally() {
        // Class 1 is rare; getting it wrong halves macro F1 even though
        // accuracy stays high.
        let truth = [0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0, 0, 0, 0, 0, 0, 0, 0];
        let f1 = macro_f1(&pred, &truth);
        let acc = accuracy(&pred, &truth);
        assert!(acc > 0.8);
        assert!(f1 < 0.5, "macro F1 {f1} must punish the missed rare class");
    }

    #[test]
    fn macro_f1_known_value() {
        // truth:  [0, 0, 1, 1]; pred: [0, 1, 1, 1].
        // class 0: tp=1 fp=0 fn=1 → P=1, R=0.5, F1=2/3.
        // class 1: tp=2 fp=1 fn=0 → P=2/3, R=1, F1=0.8.
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        let expected = (2.0 / 3.0 + 0.8) / 2.0;
        assert!((macro_f1(&pred, &truth) - expected).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_constant_samples() {
        let (m, ci) = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(ci, 0.0);
        let (m, ci) = mean_ci95(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!(ci > 0.0);
    }

    #[test]
    fn r2_and_mse_basics() {
        let truth = [1.0, 2.0, 3.0];
        assert_eq!(mse(&truth, &truth), 0.0);
        assert!((r2(&truth, &truth) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(
            r2(&mean_pred, &truth).abs() < 1e-12,
            "predicting the mean gives R²=0"
        );
    }
}
