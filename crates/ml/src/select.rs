//! Univariate feature selection, mirroring scikit-learn's
//! `SelectKBest(f_regression)` that the paper applies before linear
//! regression / decision trees (top-5) and Bayesian ridge (top-60), §4.2.3.

use crate::dataset::Dataset;

/// F-statistic of a single feature against the target (the `f_regression`
/// score): `F = r² (n − 2) / (1 − r²)` where `r` is the Pearson
/// correlation. Constant features score 0.
pub fn f_regression_score(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    debug_assert_eq!(n, y.len());
    if n < 3 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-24 || syy <= 1e-24 {
        return 0.0;
    }
    let r2 = (sxy * sxy) / (sxx * syy);
    let r2 = r2.min(1.0 - 1e-12);
    r2 * (nf - 2.0) / (1.0 - r2)
}

/// Scores every feature with [`f_regression_score`].
pub fn f_regression(data: &Dataset) -> Vec<f64> {
    let n = data.len();
    let d = data.dim();
    let mut col = vec![0.0; n];
    (0..d)
        .map(|j| {
            for (i, c) in col.iter_mut().enumerate() {
                *c = data.x.row(i)[j];
            }
            f_regression_score(&col, &data.y)
        })
        .collect()
}

/// Indices of the `k` best features by score (descending), ties broken by
/// index for determinism. Returns fewer than `k` only when `d < k`.
pub fn select_k_best(scores: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order.sort_unstable();
    order
}

/// Convenience: keep the top-`k` features of a dataset by F score.
/// Returns the reduced dataset and the kept column indices.
pub fn select_k_best_columns(data: &Dataset, k: usize) -> (Dataset, Vec<usize>) {
    let scores = f_regression(data);
    let cols = select_k_best(&scores, k);
    (data.select_columns(&cols), cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_feature_scores_highest() {
        let n = 30;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f64;
            // Col 0: identical to y; col 1: weakly related; col 2: constant.
            x.extend([v, ((i * 17) % 5) as f64, 3.0]);
            y.push(v);
        }
        let data = Dataset::new(x, n, 3, y);
        let scores = f_regression(&data);
        assert!(scores[0] > scores[1] * 10.0, "{scores:?}");
        assert_eq!(scores[2], 0.0);
    }

    #[test]
    fn select_k_best_orders_and_truncates() {
        let scores = [0.5, 9.0, 3.0, 9.0, 1.0];
        assert_eq!(select_k_best(&scores, 2), vec![1, 3]);
        assert_eq!(select_k_best(&scores, 3), vec![1, 2, 3]);
        assert_eq!(select_k_best(&scores, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_k_best_columns_reduces_dataset() {
        let n = 20;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f64;
            x.extend([1.0, v, -v]);
            y.push(2.0 * v);
        }
        let data = Dataset::new(x, n, 3, y);
        let (reduced, cols) = select_k_best_columns(&data, 2);
        assert_eq!(reduced.dim(), 2);
        assert_eq!(cols, vec![1, 2], "constant column dropped");
    }

    #[test]
    fn negative_correlation_scores_like_positive() {
        let n = 25;
        let x1: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x2: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let s1 = f_regression_score(&x1, &y);
        let s2 = f_regression_score(&x2, &y);
        assert!((s1 - s2).abs() < 1e-6);
        assert!(s1 > 100.0);
    }

    #[test]
    fn tiny_inputs_are_safe() {
        assert_eq!(f_regression_score(&[1.0], &[2.0]), 0.0);
        assert_eq!(f_regression_score(&[1.0, 2.0], &[2.0, 3.0]), 0.0);
        assert_eq!(select_k_best(&[], 3), Vec::<usize>::new());
    }
}
