//! Random forest regression with mean-decrease-impurity feature
//! importances — the model the paper uses both for prediction and for the
//! Fig. 4 discriminative-subgraph analysis (it raises `n_estimators` to 300
//! "to obtain meaningful results that we can use in the feature importance
//! analysis", §4.2.3).

use hsgf_graph::rng::Rng;

use crate::dataset::Dataset;
use crate::tree::{DecisionTreeRegressor, TreeConfig};

/// Forest parameters. Defaults follow the paper's setup: 300 trees,
/// bootstrap sampling, all features per split (scikit-learn's regression
/// default).
#[derive(Clone, Debug)]
pub struct ForestConfig {
    /// Number of trees (paper: 300).
    pub n_estimators: usize,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Draw bootstrap samples per tree.
    pub bootstrap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_estimators: 300,
            tree: TreeConfig::default(),
            bootstrap: true,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
    dim: usize,
}

impl RandomForestRegressor {
    /// Fits `config.n_estimators` trees on bootstrap resamples.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(config.n_estimators > 0, "need at least one tree");
        let n = data.len();
        let mut rng = Rng::from_seed(config.seed);
        let trees = (0..config.n_estimators)
            .map(|_| {
                let indices: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                let mut tree_rng = Rng::from_seed(rng.next_u64());
                DecisionTreeRegressor::fit_on(data, &indices, &config.tree, Some(&mut tree_rng))
            })
            .collect();
        RandomForestRegressor {
            trees,
            dim: data.dim(),
        }
    }

    /// Predicts one row (mean over trees).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        sum / self.trees.len() as f64
    }

    /// Predicts every row of a dataset's design matrix.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_row(data.x.row(i)))
            .collect()
    }

    /// Mean-decrease-impurity importances, averaged over trees and
    /// normalized to sum to 1 (scikit-learn's `feature_importances_`).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        for tree in &self.trees {
            let imp = tree.feature_importances();
            for (a, v) in acc.iter_mut().zip(imp) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stepped_dataset(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n)
            .flat_map(|i| [i as f64, ((i * 13) % 7) as f64])
            .collect();
        let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 3.0 }).collect();
        Dataset::new(x, n, 2, y)
    }

    #[test]
    fn forest_learns_step_function() {
        let data = stepped_dataset(40);
        let config = ForestConfig {
            n_estimators: 25,
            ..ForestConfig::default()
        };
        let forest = RandomForestRegressor::fit(&data, &config);
        assert!(forest.predict_row(&[2.0, 0.0]) < 1.6);
        assert!(forest.predict_row(&[35.0, 0.0]) > 2.4);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = stepped_dataset(30);
        let config = ForestConfig {
            n_estimators: 10,
            seed: 5,
            ..ForestConfig::default()
        };
        let f1 = RandomForestRegressor::fit(&data, &config);
        let f2 = RandomForestRegressor::fit(&data, &config);
        let p1 = f1.predict(&data);
        let p2 = f2.predict(&data);
        assert_eq!(p1, p2);
    }

    #[test]
    fn importances_identify_signal_feature() {
        let data = stepped_dataset(60);
        let config = ForestConfig {
            n_estimators: 30,
            ..ForestConfig::default()
        };
        let forest = RandomForestRegressor::fit(&data, &config);
        let imp = forest.feature_importances();
        assert!(imp[0] > imp[1] * 3.0, "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bootstrap_trees_differ_but_agree_on_signal() {
        let data = stepped_dataset(50);
        let config = ForestConfig {
            n_estimators: 12,
            ..ForestConfig::default()
        };
        let forest = RandomForestRegressor::fit(&data, &config);
        assert_eq!(forest.len(), 12);
        // Ensemble mean stays within the target range.
        for i in 0..data.len() {
            let p = forest.predict_row(data.x.row(i));
            assert!((1.0..=3.0).contains(&p));
        }
    }

    #[test]
    fn max_features_subsampling_runs() {
        let data = stepped_dataset(40);
        let config = ForestConfig {
            n_estimators: 8,
            tree: TreeConfig {
                max_features: Some(1),
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let forest = RandomForestRegressor::fit(&data, &config);
        let preds = forest.predict(&data);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}
