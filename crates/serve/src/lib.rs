//! Long-running feature-serving layer over the census cache.
//!
//! `hsgf serve` wraps this crate: a TCP server speaking newline-delimited
//! JSON (one request object per line, one response per line) that serves
//! per-root feature vectors and census encodings out of a
//! [`hsgf_core::cache::CensusCache`]. A cache hit returns the stored row;
//! a miss runs a (possibly budgeted, supervised) extraction on a bounded
//! worker pool and writes through. Three things make the server more than
//! a cache front end:
//!
//! * **Writes.** An `edit` request applies an [`EdgeEdit`] batch through
//!   [`hsgf_graph::apply_edits`] and atomically swaps the served graph
//!   snapshot. No explicit invalidation happens — cache keys are
//!   neighbourhood fingerprints, so entries whose dependency ball an edit
//!   touched simply stop matching (see [`hsgf_core::cache`]).
//! * **Change feed.** With a tail directory configured, the server
//!   periodically re-reads the committed prefix of an
//!   [`hsgf_core::journal`] written by offline `hsgf extract --journal`
//!   runs and absorbs matching records into the cache
//!   ([`journal::tail_records`] is read-only and torn-tail safe, so a
//!   concurrent writer is never corrupted).
//! * **Observability.** A `metrics` request exports the standard
//!   [`hsgf_core::obs`] snapshot (validated by `hsgf obs-validate`);
//!   `stats` exports the cache counters, so hit rates are observable
//!   while the server runs.
//!
//! Consistency model: reads snapshot the graph once per request (an
//! `Arc` clone), so a query races an edit to *either* the old or the new
//! graph — never a torn mix — and the winning snapshot's response is
//! byte-identical to an offline `hsgf extract` over that graph. The wire
//! format of an `extract` response *is* [`export::matrix_to_json`], the
//! exact bytes `hsgf extract --out x.json` writes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod net;

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use hsgf_core::cache::{
    config_fingerprint, policy_fingerprint, CacheEntry, CacheKey, CachedOutcome, CensusCache,
};
use hsgf_core::census::{CensusConfig, CensusEngine, CensusError};
use hsgf_core::export;
use hsgf_core::features::FeatureMatrix;
use hsgf_core::journal::{self, JournaledOutcome};
use hsgf_core::json::{self, JsonArray, JsonObject, JsonValue};
use hsgf_core::obs::{Metric, Obs};
use hsgf_core::parallel::{cache_keys, extract_censuses_cached};
use hsgf_core::sampling;
use hsgf_core::steal::SchedulerKind;
use hsgf_core::supervisor::{ExtractionPolicy, PartialExtraction, RootOutcome, Supervisor};
use hsgf_graph::fingerprint::graph_fingerprint;
use hsgf_graph::{apply_edits, parse_edit_line, EdgeEdit, GraphError, HetGraph, NodeId};

pub use net::{serve, ServeOptions};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Census-layer failure (bad configuration, engine error).
    Census(CensusError),
    /// Graph-layer failure (bad edit endpoints, self loops).
    Graph(GraphError),
    /// Filesystem / socket failure.
    Io(std::io::Error),
    /// Malformed request or misuse of the wire protocol.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Census(e) => write!(f, "census error: {e}"),
            ServeError::Graph(e) => write!(f, "graph error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CensusError> for ServeError {
    fn from(e: CensusError) -> Self {
        ServeError::Census(e)
    }
}
impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}
impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The extraction configuration a server is pinned to. All requests run
/// under these settings; they are part of every cache key, so a restart
/// with different settings starts from a logically empty cache view.
#[derive(Clone, Debug)]
pub struct ServeSettings {
    /// Census configuration with `dmax` already resolved to an absolute
    /// cutoff (the serving layer never re-derives percentiles, so edits
    /// cannot silently shift the configuration under cached entries).
    pub config: CensusConfig,
    /// Per-root resource policy. Bounded (or degrade-enabled) policies
    /// route misses through the supervisor, exactly like `hsgf extract`.
    pub policy: ExtractionPolicy,
    /// Worker threads per extraction.
    pub threads: usize,
    /// How roots are spread over the worker pool.
    pub scheduler: SchedulerKind,
    /// Minimum document frequency applied to response matrices.
    pub min_df: u32,
}

/// Root selection of one `extract` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RootsRequest {
    /// Every node of the current graph.
    All,
    /// Every `k`-th node (deterministic stride subsample).
    Sample(usize),
    /// An explicit root list, served in the given order.
    Explicit(Vec<u32>),
}

/// What one change-feed sync observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncReport {
    /// Whether the feed's header matches this server's graph and
    /// configuration (a non-matching feed is left alone, not an error).
    pub matched: bool,
    /// Whether the feed scan stopped at a torn frame or segment gap (an
    /// in-flight writer; a later sync may see further).
    pub torn: bool,
    /// Committed records visible in the feed right now.
    pub records: usize,
    /// Records newly absorbed into the cache by *this* sync.
    pub absorbed: usize,
    /// Total records absorbed since the feed last matched.
    pub total_absorbed: usize,
}

struct TailFeed {
    dir: PathBuf,
    absorbed: Mutex<usize>,
}

/// Shared state of one server: the current graph snapshot, the census
/// cache, the pinned extraction settings, and the optional journal feed.
///
/// Thread safety: reads clone the graph `Arc` under a brief lock and then
/// run lock-free; edits serialize among themselves and swap the `Arc`.
/// The cache is internally sharded and shared by all requests.
pub struct ServeCore {
    graph: Mutex<Arc<HetGraph>>,
    edit_lock: Mutex<()>,
    settings: ServeSettings,
    cache: CensusCache,
    obs: Obs,
    tail: Option<TailFeed>,
}

impl ServeCore {
    /// Builds a server core, validating `settings.config` against the
    /// graph up front so a misconfigured server fails at startup, not on
    /// the first request.
    pub fn new(
        graph: HetGraph,
        settings: ServeSettings,
        cache: CensusCache,
        obs: Obs,
        tail_dir: Option<PathBuf>,
    ) -> Result<ServeCore, ServeError> {
        CensusEngine::new(&graph, settings.config.clone())?;
        Ok(ServeCore {
            graph: Mutex::new(Arc::new(graph)),
            edit_lock: Mutex::new(()),
            settings,
            cache,
            obs,
            tail: tail_dir.map(|dir| TailFeed {
                dir,
                absorbed: Mutex::new(0),
            }),
        })
    }

    /// The current graph snapshot (an `Arc` clone; never blocks on an
    /// in-flight extraction).
    pub fn snapshot(&self) -> Arc<HetGraph> {
        self.graph
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The pinned extraction settings.
    pub fn settings(&self) -> &ServeSettings {
        &self.settings
    }

    /// The server's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The shared census cache.
    pub fn cache(&self) -> &CensusCache {
        &self.cache
    }

    /// Whether a journal change feed is configured.
    pub fn has_tail(&self) -> bool {
        self.tail.is_some()
    }

    fn resolve_roots(
        &self,
        graph: &HetGraph,
        request: &RootsRequest,
    ) -> Result<Vec<NodeId>, ServeError> {
        let all: Vec<NodeId> = graph.nodes().collect();
        match request {
            RootsRequest::All => Ok(all),
            RootsRequest::Sample(k) => Ok(sampling::stride_sample(&all, *k)),
            RootsRequest::Explicit(ids) => ids
                .iter()
                .map(|&id| {
                    if (id as usize) < graph.node_count() {
                        Ok(NodeId::new(id))
                    } else {
                        Err(ServeError::Protocol(format!(
                            "root {id} out of range (graph has {} nodes)",
                            graph.node_count()
                        )))
                    }
                })
                .collect(),
        }
    }

    /// Runs one extraction over `roots` on `graph` through the shared
    /// cache. Mirrors the CLI's `extract_through` exactly — supervised
    /// when the policy is bounded or degrade-enabled, the plain cached
    /// path otherwise — so responses are bit-identical to offline runs.
    fn extract_on(
        &self,
        graph: &HetGraph,
        roots: Vec<NodeId>,
    ) -> Result<PartialExtraction, ServeError> {
        let s = &self.settings;
        let mut partial = if s.policy.is_bounded() || s.policy.degrade {
            let supervisor = Supervisor::new(graph, s.config.clone(), s.policy.clone())?
                .with_obs(self.obs.clone());
            supervisor.extract_cached(&roots, s.threads, s.scheduler, &self.cache)
        } else {
            let engine = CensusEngine::new(graph, s.config.clone())?.with_obs(self.obs.clone());
            let censuses =
                extract_censuses_cached(&engine, &roots, s.threads, s.scheduler, &self.cache)?;
            self.obs.add(Metric::RootsExact, roots.len() as u64);
            let outcomes = vec![RootOutcome::Exact { attempts: 1 }; roots.len()];
            PartialExtraction {
                matrix: self.obs.phase("feature-matrix", || {
                    FeatureMatrix::from_censuses(roots, censuses)
                }),
                outcomes,
            }
        };
        if s.min_df > 1 {
            partial.matrix = partial.matrix.filter_min_df(s.min_df);
        }
        Ok(partial)
    }

    /// Serves one `extract` request: the response is the exact
    /// [`export::matrix_to_json`] document `hsgf extract --out x.json`
    /// would write for the same graph, roots, and settings.
    pub fn query(&self, request: &RootsRequest) -> Result<String, ServeError> {
        let graph = self.snapshot();
        let roots = self.resolve_roots(&graph, request)?;
        let partial = self.extract_on(&graph, roots)?;
        self.obs.incr(Metric::ServeQueries);
        Ok(export::matrix_to_json(&partial.matrix, graph.labels()))
    }

    /// Serves one `census` request: a single root's encoding counts,
    /// rendered as `[encoding, count]` pairs, plus its outcome.
    pub fn census(&self, root: u32) -> Result<String, ServeError> {
        let graph = self.snapshot();
        let roots = self.resolve_roots(&graph, &RootsRequest::Explicit(vec![root]))?;
        let partial = self.extract_on(&graph, roots)?;
        self.obs.incr(Metric::ServeQueries);
        let matrix = &partial.matrix;
        let mut pairs = JsonArray::new();
        for &(f, v) in matrix.row(0) {
            let mut pair = JsonArray::new();
            pair.push_str(&matrix.space().key(f).render(graph.labels()));
            pair.push_num(v);
            pairs.push_raw(&pair.finish());
        }
        let mut obj = JsonObject::new().bool("ok", true).uint("root", root as u64);
        obj = match &partial.outcomes[0] {
            RootOutcome::Exact { .. } => obj.str("outcome", "exact"),
            RootOutcome::Degraded { rung, .. } => {
                obj.str("outcome", "degraded").uint("rung", *rung as u64)
            }
            RootOutcome::Failed { error } => obj
                .str("outcome", "failed")
                .str("error", &error.to_string()),
            RootOutcome::Cancelled => obj.str("outcome", "cancelled"),
        };
        Ok(obj.raw("census", &pairs.finish()).finish())
    }

    /// Applies an edit batch and swaps the served snapshot. Returns the
    /// new graph's `(nodes, edges)`. Edits serialize among themselves;
    /// readers keep extracting from whichever snapshot they hold.
    pub fn apply(&self, edits: &[EdgeEdit]) -> Result<(usize, usize), ServeError> {
        let _guard = self
            .edit_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let current = self.snapshot();
        let edited = Arc::new(apply_edits(&current, edits)?);
        let summary = (edited.node_count(), edited.edge_count());
        *self.graph.lock().unwrap_or_else(PoisonError::into_inner) = edited;
        self.obs.add(Metric::ServeEdits, edits.len() as u64);
        Ok(summary)
    }

    /// Reads the journal change feed once and absorbs any new committed
    /// records into the cache. A feed whose header does not match this
    /// server's graph + configuration (or an empty feed) is reported as
    /// unmatched and left alone — stale feeds must never poison the
    /// cache. Errors when no feed is configured.
    pub fn sync_journal(&self) -> Result<SyncReport, ServeError> {
        let feed = self.tail.as_ref().ok_or_else(|| {
            ServeError::Protocol("no journal feed configured (start with --tail-journal)".into())
        })?;
        let report = journal::tail_records(&feed.dir)?;
        let graph = self.snapshot();
        let s = &self.settings;
        let base = config_fingerprint(&s.config);
        let expected_config = policy_fingerprint(base, &s.policy);
        let matched = report.header.as_ref().map_or(false, |h| {
            h.config == expected_config && h.graph == graph_fingerprint(&graph)
        });
        let mut absorbed = feed.absorbed.lock().unwrap_or_else(PoisonError::into_inner);
        if !matched {
            // Reset the cursor so a feed that starts matching later (e.g.
            // after an edit is reverted) replays from its beginning.
            *absorbed = 0;
            return Ok(SyncReport {
                matched,
                torn: report.torn,
                records: report.records.len(),
                absorbed: 0,
                total_absorbed: 0,
            });
        }
        if report.records.len() < *absorbed {
            // The feed was restarted (shorter than what we already saw).
            *absorbed = 0;
        }
        let fresh = &report.records[*absorbed..];
        if !fresh.is_empty() {
            let engine = CensusEngine::new(&graph, s.config.clone())?;
            let supervised = s.policy.is_bounded() || s.policy.degrade;
            // Keys must match whichever lookup path queries take: the
            // supervised path folds the policy into the fingerprint, the
            // plain path uses the bare configuration fingerprint.
            let key_config = if supervised { expected_config } else { base };
            let roots: Vec<NodeId> = fresh.iter().map(|r| NodeId::new(r.root)).collect();
            let keys = cache_keys(&engine, &roots, &self.cache, key_config);
            for (record, key) in fresh.iter().zip(keys) {
                let outcome = match &record.outcome {
                    JournaledOutcome::Exact { .. } => CachedOutcome::Exact,
                    JournaledOutcome::Degraded {
                        dmax, emax, rung, ..
                    } => CachedOutcome::Degraded {
                        dmax: *dmax,
                        emax: *emax,
                        rung: *rung,
                    },
                };
                if !supervised && !matches!(outcome, CachedOutcome::Exact) {
                    // The plain path only ever consults exact entries.
                    continue;
                }
                let key = CacheKey {
                    level: outcome.level(),
                    ..key
                };
                self.cache.store(
                    key,
                    &CacheEntry {
                        counts: record.counts.clone(),
                        outcome,
                    },
                );
            }
            self.obs
                .add(Metric::ServeJournalRecords, fresh.len() as u64);
        }
        let newly = fresh.len();
        *absorbed = report.records.len();
        Ok(SyncReport {
            matched: true,
            torn: report.torn,
            records: report.records.len(),
            absorbed: newly,
            total_absorbed: *absorbed,
        })
    }

    /// The standard metrics snapshot (the same document
    /// `--metrics-out` writes; `hsgf obs-validate` accepts it).
    pub fn metrics_json(&self) -> String {
        self.obs.snapshot().to_json()
    }

    /// The cache counters plus the served graph's size, as JSON.
    pub fn stats_json(&self) -> String {
        let stats = self.cache.stats();
        let graph = self.snapshot();
        JsonObject::new()
            .bool("ok", true)
            .uint("entries", self.cache.entry_count() as u64)
            .uint("hits", stats.hits)
            .uint("misses", stats.misses)
            .uint("stores", stats.stores)
            .uint("evictions", stats.evictions)
            .uint("quarantined", stats.quarantined)
            .uint("fingerprint_micros", stats.fingerprint_micros)
            .uint("nodes", graph.node_count() as u64)
            .uint("edges", graph.edge_count() as u64)
            .finish()
    }
}

fn protocol(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

fn roots_request(value: Option<&JsonValue>) -> Result<RootsRequest, ServeError> {
    match value {
        None => Ok(RootsRequest::All),
        Some(JsonValue::String(s)) if s == "all" => Ok(RootsRequest::All),
        Some(JsonValue::String(s)) => match s.strip_prefix("sample:") {
            Some(k) => {
                let k: usize = k
                    .parse()
                    .map_err(|_| protocol(format!("bad sample count in {s:?}")))?;
                Ok(RootsRequest::Sample(k.max(1)))
            }
            None => Err(protocol(format!(
                "bad \"roots\" value {s:?}; expected \"all\", \"sample:K\", or an id array"
            ))),
        },
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|item| {
                let n = item
                    .as_f64()
                    .ok_or_else(|| protocol("\"roots\" array must hold node ids"))?;
                if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                    return Err(protocol(format!("bad root id {n}")));
                }
                Ok(n as u32)
            })
            .collect::<Result<Vec<u32>, ServeError>>()
            .map(RootsRequest::Explicit),
        Some(_) => Err(protocol(
            "bad \"roots\"; expected \"all\", \"sample:K\", or an id array",
        )),
    }
}

fn uint_field(value: &JsonValue, key: &str) -> Result<u64, ServeError> {
    let n = value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| protocol(format!("request needs a numeric {key:?} field")))?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return Err(protocol(format!("bad {key:?} value {n}")));
    }
    Ok(n as u64)
}

fn dispatch(core: &ServeCore, line: &str) -> Result<(String, bool), ServeError> {
    let value = json::parse(line).map_err(|e| protocol(format!("bad request JSON: {e}")))?;
    let op = value
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| protocol("request needs an \"op\" string"))?;
    match op {
        "ping" => Ok((
            JsonObject::new()
                .bool("ok", true)
                .uint("version", 1)
                .finish(),
            false,
        )),
        "extract" => {
            let request = roots_request(value.get("roots"))?;
            Ok((core.query(&request)?, false))
        }
        "census" => {
            let root = uint_field(&value, "root")? as u32;
            Ok((core.census(root)?, false))
        }
        "edit" => {
            let items = value
                .get("edits")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| protocol("edit needs an \"edits\" array of strings"))?;
            let mut edits = Vec::new();
            for item in items {
                let text = item
                    .as_str()
                    .ok_or_else(|| protocol("\"edits\" entries must be strings"))?;
                match parse_edit_line(text) {
                    Ok(Some(edit)) => edits.push(edit),
                    Ok(None) => {}
                    Err(token) => return Err(protocol(format!("bad edit token {token:?}"))),
                }
            }
            let (nodes, edges) = core.apply(&edits)?;
            Ok((
                JsonObject::new()
                    .bool("ok", true)
                    .uint("applied", edits.len() as u64)
                    .uint("nodes", nodes as u64)
                    .uint("edges", edges as u64)
                    .finish(),
                false,
            ))
        }
        "sync" => {
            let report = core.sync_journal()?;
            Ok((
                JsonObject::new()
                    .bool("ok", true)
                    .bool("matched", report.matched)
                    .bool("torn", report.torn)
                    .uint("records", report.records as u64)
                    .uint("absorbed", report.absorbed as u64)
                    .uint("total_absorbed", report.total_absorbed as u64)
                    .finish(),
                false,
            ))
        }
        "metrics" => Ok((core.metrics_json(), false)),
        "stats" => Ok((core.stats_json(), false)),
        "shutdown" => Ok((
            JsonObject::new()
                .bool("ok", true)
                .bool("shutdown", true)
                .finish(),
            true,
        )),
        other => Err(protocol(format!("unknown op {other:?}"))),
    }
}

/// Handles one request line and returns `(response, shutdown)`. Errors
/// become `{"ok":false,"error":...}` responses — a malformed request must
/// never tear down the connection, let alone the server.
pub fn handle_request(core: &ServeCore, line: &str) -> (String, bool) {
    match dispatch(core, line) {
        Ok(result) => result,
        Err(e) => (
            JsonObject::new()
                .bool("ok", false)
                .str("error", &e.to_string())
                .finish(),
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, LabelSet};

    use super::*;

    fn test_core() -> ServeCore {
        let labels = LabelSet::from_names(["a", "b", "c"]).unwrap();
        let graph = generators::barabasi_albert(labels, &[1.0, 1.0, 1.0], 60, 2, 7).unwrap();
        let settings = ServeSettings {
            config: CensusConfig::default().with_emax(2),
            policy: ExtractionPolicy::default(),
            threads: 2,
            scheduler: SchedulerKind::Cursor,
            min_df: 1,
        };
        ServeCore::new(
            graph,
            settings,
            CensusCache::in_memory(),
            Obs::enabled(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn extract_response_is_the_offline_json_document() {
        let core = test_core();
        let (body, stop) = handle_request(&core, "{\"op\":\"extract\",\"roots\":\"sample:7\"}");
        assert!(!stop);
        let graph = core.snapshot();
        let all: Vec<NodeId> = graph.nodes().collect();
        let roots = sampling::stride_sample(&all, 7);
        let engine = CensusEngine::new(&graph, core.settings().config.clone()).unwrap();
        let censuses = hsgf_core::parallel::extract_censuses(&engine, &roots, 1).unwrap();
        let matrix = FeatureMatrix::from_censuses(roots, censuses);
        assert_eq!(body, export::matrix_to_json(&matrix, graph.labels()));
        // The second query is a pure cache hit and still byte-identical.
        let (warm, _) = handle_request(&core, "{\"op\":\"extract\",\"roots\":\"sample:7\"}");
        assert_eq!(warm, body);
        assert!(core.cache().stats().hits > 0);
    }

    #[test]
    fn edits_swap_the_snapshot_and_change_responses() {
        let core = test_core();
        let before = core.snapshot();
        let (u, v) = before.edges().next().unwrap();
        let req = format!(
            "{{\"op\":\"edit\",\"edits\":[\"remove {} {}\"]}}",
            u.raw(),
            v.raw()
        );
        let (body, _) = handle_request(&core, &req);
        assert!(body.starts_with("{\"ok\":true"), "{body}");
        let after = core.snapshot();
        assert_eq!(after.edge_count(), before.edge_count() - 1);
        assert!(!after.has_edge(u, v));
        // The response now matches an offline extraction of the edited graph.
        let (got, _) = handle_request(&core, "{\"op\":\"extract\"}");
        let engine = CensusEngine::new(&after, core.settings().config.clone()).unwrap();
        let roots: Vec<NodeId> = after.nodes().collect();
        let censuses = hsgf_core::parallel::extract_censuses(&engine, &roots, 1).unwrap();
        let matrix = FeatureMatrix::from_censuses(roots, censuses);
        assert_eq!(got, export::matrix_to_json(&matrix, after.labels()));
    }

    #[test]
    fn malformed_requests_answer_errors_without_dying() {
        let core = test_core();
        for bad in [
            "not json",
            "{}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"extract\",\"roots\":\"everything\"}",
            "{\"op\":\"extract\",\"roots\":[1e9]}",
            "{\"op\":\"census\"}",
            "{\"op\":\"edit\",\"edits\":[\"drop 1 2\"]}",
            "{\"op\":\"edit\"}",
            "{\"op\":\"sync\"}",
        ] {
            let (body, stop) = handle_request(&core, bad);
            assert!(body.starts_with("{\"ok\":false"), "{bad} -> {body}");
            assert!(!stop);
        }
        // The core still serves after the error barrage.
        let (body, _) = handle_request(&core, "{\"op\":\"ping\"}");
        assert!(body.starts_with("{\"ok\":true"), "{body}");
    }

    #[test]
    fn stats_and_metrics_are_well_formed() {
        let core = test_core();
        handle_request(&core, "{\"op\":\"extract\",\"roots\":\"sample:11\"}");
        let (stats, _) = handle_request(&core, "{\"op\":\"stats\"}");
        let parsed = json::parse(&stats).unwrap();
        assert!(parsed.get("stores").and_then(JsonValue::as_f64).unwrap() > 0.0);
        let (metrics, _) = handle_request(&core, "{\"op\":\"metrics\"}");
        let parsed = json::parse(&metrics).unwrap();
        hsgf_core::obs::validate_metrics_json(&parsed).unwrap();
        let queries = parsed
            .get("runtime")
            .unwrap()
            .get("serve_queries")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(queries, 1.0);
    }

    #[test]
    fn shutdown_is_signalled_to_the_caller() {
        let core = test_core();
        let (body, stop) = handle_request(&core, "{\"op\":\"shutdown\"}");
        assert!(stop);
        assert!(body.contains("\"shutdown\":true"), "{body}");
    }
}
