//! TCP front end: one thread per connection, newline-delimited JSON.
//!
//! The accept loop is deliberately boring std-only code: a bounded pool
//! of connection threads (excess connections are refused with a JSON
//! error, never queued unboundedly), a background journal tailer, and a
//! cooperative shutdown flag checked on a short read timeout so every
//! thread exits promptly once a `shutdown` request lands.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::{handle_request, ServeCore};

/// Tunables of [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Maximum simultaneously served connections; further connections
    /// receive a `{"ok":false,...}` line and are closed.
    pub max_conns: usize,
    /// How often the journal change feed is re-scanned (ignored when the
    /// core has no feed configured).
    pub tail_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_conns: 16,
            tail_interval: Duration::from_millis(1000),
        }
    }
}

/// Runs the accept loop until a client sends `{"op":"shutdown"}`. Blocks
/// the calling thread; returns once every connection thread and the
/// journal tailer have exited.
pub fn serve(listener: TcpListener, core: Arc<ServeCore>, options: ServeOptions) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let tailer = if core.has_tail() {
        let core = core.clone();
        let stop = shutdown.clone();
        let interval = options.tail_interval;
        Some(thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                // A torn or unmatched feed is a normal state, not a
                // reason to kill the tailer; IO errors are likewise
                // retried on the next tick.
                let _ = core.sync_journal();
                let mut slept = Duration::ZERO;
                while slept < interval && !stop.load(Ordering::SeqCst) {
                    let step = Duration::from_millis(25).min(interval - slept);
                    thread::sleep(step);
                    slept += step;
                }
            }
        }))
    } else {
        None
    };
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        workers.retain(|handle| !handle.is_finished());
        if workers.len() >= options.max_conns {
            let _ = refuse(stream);
            continue;
        }
        let core = core.clone();
        let stop = shutdown.clone();
        workers.push(thread::spawn(move || {
            let _ = handle_connection(&core, stream, &stop, addr);
        }));
    }
    for handle in workers {
        let _ = handle.join();
    }
    if let Some(handle) = tailer {
        let _ = handle.join();
    }
    Ok(())
}

fn refuse(stream: TcpStream) -> io::Result<()> {
    let mut writer = BufWriter::new(stream);
    writer.write_all(b"{\"ok\":false,\"error\":\"server at connection capacity\"}\n")?;
    writer.flush()
}

fn handle_connection(
    core: &ServeCore,
    stream: TcpStream,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    // A short read timeout keeps the thread responsive to shutdown even
    // while a client idles with the connection open.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let (body, stop) = handle_request(core, &line);
                    writer.write_all(body.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    if stop {
                        shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the flag.
                        drop(TcpStream::connect(addr));
                        break;
                    }
                }
                line.clear();
            }
            // Timeout with a partial line buffered: keep accumulating.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
