//! Synthetic IMDB-style movie-record network (paper §4.1).
//!
//! The real dataset parses IMDB's relational lists into a graph of movies
//! from Hollywood's Golden Age (1930–1940) connected to the actors,
//! directors, writers, and composers involved plus descriptive keywords:
//! 6 labels, 48k nodes, 213k edges. The label connectivity graph is a
//! *star* centred on movies — people and keywords never connect directly —
//! which makes it the sparsest, hardest label-prediction dataset in the
//! paper.
//!
//! The generator emits one record per movie, sampling its cast and crew
//! from Zipf-popular pools with per-role cast-size profiles (many actors,
//! 1–2 directors, one composer, a handful of keywords). Roles differ in
//! pool size, popularity skew, and per-movie multiplicity, so a node's
//! rooted subgraph census is informative about its label even with the
//! root's own label masked.

use hsgf_graph::rng::Rng;
use hsgf_graph::{generators::zipf_index, GraphBuilder, HetGraph, Label, LabelSet, NodeId};

use crate::Scale;

/// Label names in fixed order; `movie` is the star hub.
pub const IMDB_LABELS: [&str; 6] = [
    "movie", "actor", "director", "writer", "composer", "keyword",
];

/// IMDB generator parameters.
#[derive(Clone, Debug)]
pub struct ImdbConfig {
    /// Number of movies.
    pub movies: usize,
    /// Pool sizes: `[actors, directors, writers, composers, keywords]`.
    pub pools: [usize; 5],
    /// Per-movie member count ranges per role, inclusive.
    pub cast: [(usize, usize); 5],
    /// Zipf popularity exponent per role pool.
    pub popularity: [f64; 5],
    /// RNG seed.
    pub seed: u64,
}

impl ImdbConfig {
    /// Preset sizes; `Paper` approximates the real 48k-node network.
    pub fn at_scale(scale: Scale) -> Self {
        let (movies, pools) = match scale {
            Scale::Tiny => (40, [120, 25, 40, 18, 60]),
            Scale::Small => (1_200, [4_000, 700, 1_200, 450, 1_500]),
            Scale::Paper => (9_000, [26_000, 3_200, 6_500, 1_800, 2_000]),
        };
        ImdbConfig {
            movies,
            pools,
            cast: [(5, 14), (1, 2), (1, 3), (1, 1), (3, 8)],
            popularity: [0.9, 0.8, 0.8, 0.7, 1.05],
            seed: 0x134DB,
        }
    }
}

/// The generated star network with bookkeeping.
pub struct ImdbData {
    /// The record network. Labels in [`IMDB_LABELS`] order.
    pub graph: HetGraph,
    /// First node id per label block (movies first, then each pool).
    pub label_offsets: [u32; 6],
}

impl ImdbData {
    /// Generates an IMDB-style network.
    pub fn generate(config: &ImdbConfig) -> Self {
        let mut rng = Rng::from_seed(config.seed);
        let labels = LabelSet::from_names(IMDB_LABELS).expect("static names");
        let mut builder = GraphBuilder::new(labels);
        let mut label_offsets = [0u32; 6];
        builder
            .add_nodes(Label::new(0), config.movies)
            .expect("movies fit");
        let mut next = config.movies as u32;
        for (role, &pool) in config.pools.iter().enumerate() {
            label_offsets[role + 1] = next;
            if pool > 0 {
                builder
                    .add_nodes(Label::new(role as u8 + 1), pool)
                    .expect("pool fits");
            }
            next += pool as u32;
        }
        for movie in 0..config.movies as u32 {
            for role in 0..5usize {
                let (lo, hi) = config.cast[role];
                let count = rng.gen_range(lo..=hi);
                let mut picked: Vec<u32> = Vec::with_capacity(count);
                let mut guard = 0;
                while picked.len() < count && guard < 20 * count {
                    guard += 1;
                    let idx = zipf_index(&mut rng, config.pools[role], config.popularity[role]);
                    let node = label_offsets[role + 1] + idx as u32;
                    if !picked.contains(&node) {
                        picked.push(node);
                        builder
                            .add_edge(NodeId::new(movie), NodeId::new(node))
                            .expect("nodes exist");
                    }
                }
            }
        }
        ImdbData {
            graph: builder.build(),
            label_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{DegreeStats, LabelConnectivityGraph};

    use super::*;

    fn tiny() -> ImdbData {
        ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn shape_matches_config() {
        let data = tiny();
        assert_eq!(data.graph.node_count(), 40 + 120 + 25 + 40 + 18 + 60);
        assert_eq!(data.graph.label_count(), 6);
    }

    #[test]
    fn lcg_is_a_loop_free_star_on_movies() {
        let data = tiny();
        let lcg = LabelConnectivityGraph::of(&data.graph);
        assert!(
            lcg.is_star_on(Label::new(0)),
            "LCG must be a star on `movie`"
        );
        assert!(!lcg.has_any_self_loop());
        assert_eq!(lcg.unique_encoding_emax(), 5);
    }

    #[test]
    fn movies_have_plausible_record_sizes() {
        let data = tiny();
        for m in 0..40u32 {
            let deg = data.graph.degree(NodeId::new(m));
            // Min: 5+1+1+1+3 = 11; max: 14+2+3+1+8 = 28.
            assert!((11..=28).contains(&deg), "movie {m} has degree {deg}");
        }
    }

    #[test]
    fn popularity_makes_star_actors() {
        let data = ImdbData::generate(&ImdbConfig {
            movies: 300,
            ..ImdbConfig::at_scale(Scale::Tiny)
        });
        let stats = DegreeStats::of(&data.graph);
        assert!(stats.hub_ratio() > 3.0, "hub ratio {}", stats.hub_ratio());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny();
        let b = tiny();
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn composers_are_singletons_per_movie() {
        let data = tiny();
        let composer_label = Label::new(4);
        for m in 0..40u32 {
            let composers = data
                .graph
                .neighbors_with_label(NodeId::new(m), composer_label)
                .len();
            assert_eq!(composers, 1, "movie {m}");
        }
    }
}
