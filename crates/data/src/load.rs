//! Synthetic LOAD-style entity co-occurrence network (paper §4.1).
//!
//! The real LOAD network links disambiguated named-entity mentions —
//! **L**ocations, **O**rganizations, **A**ctors (persons), **D**ates — that
//! co-occur in Wikipedia sentences about the American Civil War: 4 labels,
//! 55k nodes, 1.13M edges, very dense, complete label connectivity graph
//! with self loops on every label.
//!
//! The generator mirrors that construction: it samples "sentences" from a
//! set of latent *topics* (campaigns, battles, politics, …), each with its
//! own label mixture and entity popularity profile, and clique-connects the
//! entities mentioned in a sentence. Dates are few and extremely hubby
//! (years recur everywhere), persons are many with long-tailed fame —
//! matching the degree-profile asymmetries that make labels predictable
//! from local topology alone.

use hsgf_graph::rng::{Rng, WeightedIndex};
use hsgf_graph::{generators::zipf_index, GraphBuilder, HetGraph, Label, LabelSet, NodeId};

use crate::Scale;

/// LOAD generator parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Entity counts per label: `[locations, organizations, actors, dates]`.
    pub entities: [usize; 4],
    /// Number of sentences sampled.
    pub sentences: usize,
    /// Zipf popularity exponent per label (higher = hubbier).
    pub popularity: [f64; 4],
    /// Number of latent topics.
    pub topics: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LoadConfig {
    /// Preset sizes; `Paper` approximates the real network's 55k nodes.
    pub fn at_scale(scale: Scale) -> Self {
        // Sentence counts are tuned so the mean degree lands near the real
        // network's ≈ 41 (55.3k nodes, 1.13M edges) at every scale.
        let (entities, sentences) = match scale {
            Scale::Tiny => ([60, 40, 80, 20], 400),
            Scale::Small => ([1_500, 1_000, 2_500, 300], 15_000),
            Scale::Paper => ([15_000, 10_000, 28_000, 2_300], 550_000),
        };
        LoadConfig {
            entities,
            sentences,
            // Dates are the hubbiest (years recur in every article),
            // locations next, persons have the longest tail.
            popularity: [1.05, 0.95, 0.85, 1.3],
            topics: 24,
            seed: 0x10AD,
        }
    }
}

/// The generated network with bookkeeping.
pub struct LoadData {
    /// The co-occurrence network. Labels: `location`, `organization`,
    /// `actor`, `date` (in that fixed order).
    pub graph: HetGraph,
    /// First node id of each label block (entities are laid out label by
    /// label).
    pub label_offsets: [u32; 4],
}

/// Label names in fixed order.
pub const LOAD_LABELS: [&str; 4] = ["location", "organization", "actor", "date"];

impl LoadData {
    /// Generates a LOAD-style network.
    pub fn generate(config: &LoadConfig) -> Self {
        let mut rng = Rng::from_seed(config.seed);
        let labels = LabelSet::from_names(LOAD_LABELS).expect("static names");
        let mut builder = GraphBuilder::new(labels);
        let mut label_offsets = [0u32; 4];
        let mut next = 0u32;
        for l in 0..4 {
            label_offsets[l] = next;
            if config.entities[l] > 0 {
                builder
                    .add_nodes(Label::new(l as u8), config.entities[l])
                    .expect("label fits");
            }
            next += config.entities[l] as u32;
        }
        // Topics: each has a Dirichlet-ish label mixture and a "window"
        // into each label's entity range so that topical entities co-occur
        // repeatedly (communities), as battles share locations and actors.
        struct Topic {
            label_weights: [f64; 4],
            window_start: [usize; 4],
            window_len: [usize; 4],
        }
        let topics: Vec<Topic> = (0..config.topics)
            .map(|_| {
                let mut w = [0.0f64; 4];
                for v in w.iter_mut() {
                    *v = rng.gen_range(0.2..1.0);
                }
                // Every topic mentions dates a bit less often but from a
                // very small pool.
                w[3] *= 0.6;
                let mut window_start = [0usize; 4];
                let mut window_len = [0usize; 4];
                for l in 0..4 {
                    let n = config.entities[l];
                    // Topical windows cover ~20% of a label's entities.
                    let len = (n / 5).max(1);
                    window_len[l] = len;
                    window_start[l] = rng.gen_range(0..n.saturating_sub(len).max(1));
                }
                Topic {
                    label_weights: w,
                    window_start,
                    window_len,
                }
            })
            .collect();
        let mut sentence: Vec<u32> = Vec::with_capacity(8);
        // With no topics there is nothing to sample sentences from: degrade
        // to a node-only graph instead of panicking on an empty range.
        let sentences = if topics.is_empty() {
            0
        } else {
            config.sentences
        };
        for _ in 0..sentences {
            let topic = &topics[rng.gen_range(0..topics.len())];
            let dist = WeightedIndex::new(topic.label_weights).expect("positive weights");
            let mentions = rng.gen_range(2usize..=7);
            sentence.clear();
            for _ in 0..mentions {
                let l = dist.sample(&mut rng);
                if config.entities[l] == 0 {
                    continue;
                }
                // 70% topical (from the window), 30% global by popularity.
                let idx = if rng.gen_bool(0.7) {
                    topic.window_start[l]
                        + zipf_index(&mut rng, topic.window_len[l], config.popularity[l])
                } else {
                    zipf_index(&mut rng, config.entities[l], config.popularity[l])
                };
                let node = label_offsets[l] + idx as u32;
                if !sentence.contains(&node) {
                    sentence.push(node);
                }
            }
            // Clique-connect the sentence's mentions.
            for i in 0..sentence.len() {
                for j in (i + 1)..sentence.len() {
                    builder
                        .add_edge(NodeId::new(sentence[i]), NodeId::new(sentence[j]))
                        .expect("nodes exist");
                }
            }
        }
        LoadData {
            graph: builder.build(),
            label_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{DegreeStats, LabelConnectivityGraph};

    use super::*;

    fn tiny() -> LoadData {
        LoadData::generate(&LoadConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn shape_matches_config() {
        let data = tiny();
        assert_eq!(data.graph.node_count(), 60 + 40 + 80 + 20);
        assert_eq!(data.graph.label_count(), 4);
        let hist = data.graph.label_histogram();
        assert_eq!(hist, vec![60, 40, 80, 20]);
        assert!(data.graph.edge_count() > 500, "dense network expected");
    }

    #[test]
    fn lcg_is_complete_with_self_loops() {
        // The real LOAD LCG is complete incl. all self loops (paper Fig. 2).
        let data = tiny();
        let lcg = LabelConnectivityGraph::of(&data.graph);
        assert!(
            (lcg.density() - 1.0).abs() < 1e-9,
            "density {}",
            lcg.density()
        );
        for l in 0..4 {
            assert!(
                lcg.has_self_loop(Label::new(l)),
                "label {l} needs a self loop"
            );
        }
        assert_eq!(lcg.unique_encoding_emax(), 4);
    }

    #[test]
    fn degrees_are_skewed_and_dates_are_hubs() {
        let data = LoadData::generate(&LoadConfig::at_scale(Scale::Tiny));
        // Tiny graphs are dense enough that degrees saturate; the ratio is
        // far larger at Small/Paper scale.
        let stats = DegreeStats::of(&data.graph);
        assert!(stats.hub_ratio() > 2.0, "hub ratio {}", stats.hub_ratio());
        // Dates (few, popular) should have a higher mean degree than
        // actors (many, long tail).
        let mean_deg = |label: u8| -> f64 {
            let nodes: Vec<_> = data.graph.nodes_with_label(Label::new(label)).collect();
            nodes
                .iter()
                .map(|&v| data.graph.degree(v) as f64)
                .sum::<f64>()
                / nodes.len() as f64
        };
        assert!(
            mean_deg(3) > mean_deg(2),
            "dates {} vs actors {}",
            mean_deg(3),
            mean_deg(2)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn degenerate_configs_never_panic() {
        // Every pathological knob setting must degrade gracefully: the
        // generator's contract is a (possibly empty) graph, never a panic.
        let base = LoadConfig::at_scale(Scale::Tiny);

        // No sentences: nodes only.
        let no_sentences = LoadData::generate(&LoadConfig {
            sentences: 0,
            ..base.clone()
        });
        assert_eq!(no_sentences.graph.node_count(), 200);
        assert_eq!(no_sentences.graph.edge_count(), 0);

        // No topics: nothing to sample sentences from.
        let no_topics = LoadData::generate(&LoadConfig {
            topics: 0,
            ..base.clone()
        });
        assert_eq!(no_topics.graph.edge_count(), 0);

        // One label empty: its mentions are skipped, the rest connect.
        let no_dates = LoadData::generate(&LoadConfig {
            entities: [60, 40, 80, 0],
            ..base.clone()
        });
        assert_eq!(no_dates.graph.node_count(), 180);
        assert!(no_dates.graph.edge_count() > 0);

        // All labels empty: a completely empty graph.
        let empty = LoadData::generate(&LoadConfig {
            entities: [0, 0, 0, 0],
            ..base.clone()
        });
        assert_eq!(empty.graph.node_count(), 0);
        assert_eq!(empty.graph.edge_count(), 0);

        // Single entity per label: cliques collapse to at most a K4.
        let singletons = LoadData::generate(&LoadConfig {
            entities: [1, 1, 1, 1],
            ..base
        });
        assert_eq!(singletons.graph.node_count(), 4);
        assert!(singletons.graph.edge_count() <= 6);
    }

    #[test]
    fn label_offsets_partition_nodes() {
        let data = tiny();
        for l in 0..4u8 {
            let lo = data.label_offsets[l as usize];
            let hi = lo + [60u32, 40, 80, 20][l as usize];
            for v in lo..hi {
                assert_eq!(data.graph.label(NodeId::new(v)), Label::new(l));
            }
        }
    }
}
