//! Synthetic *affiliation-multiplex* network for the edge-heterogeneous
//! extension (paper §5: "an adaptation of the encoding to
//! edge-heterogeneous graphs … remains to be investigated").
//!
//! Construction: two person classes attach to groups with identical degree
//! laws and identical (untyped) neighbourhoods; the classes differ only in
//! their mix of *edge types* — `organizer`s mostly hold `admin` edges,
//! `participant`s mostly hold `member` edges. With the root label masked,
//! the plain census cannot separate the two person classes; the edge-typed
//! characteristic sequence can. Analogous in spirit to `flow` for the
//! directed extension.

use hsgf_graph::rng::Rng;
use hsgf_graph::{generators::zipf_index, GraphBuilder, HetGraph, Label, LabelSet, NodeId};

use crate::Scale;

/// Node label names in fixed order.
pub const MULTIPLEX_LABELS: [&str; 3] = ["group", "organizer", "participant"];

/// Edge type names, by type id.
pub const MULTIPLEX_EDGE_TYPES: [&str; 2] = ["member", "admin"];

/// Multiplex generator parameters.
#[derive(Clone, Debug)]
pub struct MultiplexConfig {
    /// Number of groups.
    pub groups: usize,
    /// Number of persons per class.
    pub persons_per_class: usize,
    /// Memberships per person, inclusive range.
    pub memberships: (usize, usize),
    /// Probability that an organizer's edge is of type `admin`
    /// (participants use the complement).
    pub admin_bias: f64,
    /// Zipf exponent for group popularity.
    pub group_popularity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MultiplexConfig {
    /// Preset sizes.
    pub fn at_scale(scale: Scale) -> Self {
        let (groups, persons) = match scale {
            Scale::Tiny => (25, 60),
            Scale::Small => (350, 1_200),
            Scale::Paper => (3_500, 12_000),
        };
        MultiplexConfig {
            groups,
            persons_per_class: persons,
            memberships: (2, 6),
            admin_bias: 0.85,
            group_popularity: 0.9,
            seed: 0x3171,
        }
    }
}

/// The generated multiplex network.
pub struct MultiplexData {
    /// The network; edges carry type 0 (`member`) or 1 (`admin`).
    pub graph: HetGraph,
}

impl MultiplexData {
    /// Generates a multiplex affiliation network.
    pub fn generate(config: &MultiplexConfig) -> Self {
        let mut rng = Rng::from_seed(config.seed);
        let labels = LabelSet::from_names(MULTIPLEX_LABELS).expect("static names");
        let mut b = GraphBuilder::new(labels);
        b.add_nodes(Label::new(0), config.groups).expect("fits");
        let org_base = config.groups as u32;
        b.add_nodes(Label::new(1), config.persons_per_class)
            .expect("fits");
        let part_base = org_base + config.persons_per_class as u32;
        b.add_nodes(Label::new(2), config.persons_per_class)
            .expect("fits");
        // Paired construction: the k-th organizer and the k-th participant
        // join the same number of groups from the same popularity law;
        // only the edge-type mix differs.
        for k in 0..config.persons_per_class as u32 {
            let n_groups = rng.gen_range(config.memberships.0..=config.memberships.1);
            for side in 0..2u32 {
                let person = if side == 0 {
                    org_base + k
                } else {
                    part_base + k
                };
                let admin_prob = if side == 0 {
                    config.admin_bias
                } else {
                    1.0 - config.admin_bias
                };
                let mut picked: Vec<u32> = Vec::with_capacity(n_groups);
                let mut guard = 0;
                while picked.len() < n_groups && guard < 20 * n_groups {
                    guard += 1;
                    let g = zipf_index(&mut rng, config.groups, config.group_popularity) as u32;
                    if !picked.contains(&g) {
                        picked.push(g);
                        let ty = u8::from(rng.gen_bool(admin_prob));
                        b.add_edge_typed(NodeId::new(person), NodeId::new(g), ty)
                            .expect("nodes exist");
                    }
                }
            }
        }
        MultiplexData { graph: b.build() }
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::LabelConnectivityGraph;

    use super::*;

    fn tiny() -> MultiplexData {
        MultiplexData::generate(&MultiplexConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn shape_and_star_lcg() {
        let data = tiny();
        let g = &data.graph;
        assert_eq!(g.node_count(), 25 + 60 + 60);
        assert!(g.has_edge_types());
        assert_eq!(g.edge_type_count(), 2);
        let lcg = LabelConnectivityGraph::of(g);
        assert!(lcg.is_star_on(Label::new(0)));
    }

    #[test]
    fn organizers_hold_mostly_admin_edges() {
        let data = tiny();
        let g = &data.graph;
        let type_fraction = |label: u8| -> f64 {
            let mut admin = 0usize;
            let mut total = 0usize;
            for v in g.nodes_with_label(Label::new(label)) {
                for &e in g.incident_edge_ids(v) {
                    total += 1;
                    admin += usize::from(g.edge_type(e) == 1);
                }
            }
            admin as f64 / total.max(1) as f64
        };
        let org = type_fraction(1);
        let part = type_fraction(2);
        assert!(org > 0.7, "organizer admin fraction {org}");
        assert!(part < 0.3, "participant admin fraction {part}");
    }

    #[test]
    fn classes_match_on_degrees() {
        let data = tiny();
        let g = &data.graph;
        let mut a: Vec<usize> = g
            .nodes_with_label(Label::new(1))
            .map(|v| g.degree(v))
            .collect();
        let mut b: Vec<usize> = g
            .nodes_with_label(Label::new(2))
            .map(|v| g.degree(v))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
