//! Synthetic *citation-flow* network for the directed-features extension
//! (paper §5 future work: "for denser directed networks, directed subgraph
//! features may turn out to be more performant").
//!
//! Construction: `hub` nodes sit in the middle; `source` nodes only *emit*
//! arcs into hubs, `sink` nodes only *receive* arcs from hubs. Sources and
//! sinks have identical degree distributions and identical (undirected)
//! label neighbourhoods, so the undirected census cannot tell them apart
//! once the root label is masked — edge direction is the only signal. Any
//! accuracy above the source/sink coin-flip therefore measures exactly what
//! the directed characteristic sequence adds.

use hsgf_graph::rng::Rng;
use hsgf_graph::{generators::zipf_index, GraphBuilder, HetGraph, Label, LabelSet, NodeId};

use crate::Scale;

/// Label names in fixed order.
pub const FLOW_LABELS: [&str; 3] = ["hub", "source", "sink"];

/// Flow-network generator parameters.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Number of hub nodes.
    pub hubs: usize,
    /// Number of source nodes (equal count of sinks is generated).
    pub sources: usize,
    /// Arcs per source/sink node, inclusive range.
    pub arcs: (usize, usize),
    /// Zipf exponent for hub popularity.
    pub hub_popularity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FlowConfig {
    /// Preset sizes.
    pub fn at_scale(scale: Scale) -> Self {
        let (hubs, sources) = match scale {
            Scale::Tiny => (30, 60),
            Scale::Small => (400, 1_200),
            Scale::Paper => (4_000, 12_000),
        };
        FlowConfig {
            hubs,
            sources,
            arcs: (2, 6),
            hub_popularity: 0.9,
            seed: 0xF10,
        }
    }
}

/// The generated directed network.
pub struct FlowData {
    /// The network; arcs point source → hub and hub → sink.
    pub graph: HetGraph,
}

impl FlowData {
    /// Generates a flow network.
    pub fn generate(config: &FlowConfig) -> Self {
        let mut rng = Rng::from_seed(config.seed);
        let labels = LabelSet::from_names(FLOW_LABELS).expect("static names");
        let mut b = GraphBuilder::new(labels);
        b.add_nodes(Label::new(0), config.hubs).expect("fits");
        let src_base = config.hubs as u32;
        b.add_nodes(Label::new(1), config.sources).expect("fits");
        let sink_base = src_base + config.sources as u32;
        b.add_nodes(Label::new(2), config.sources).expect("fits");
        // Symmetric construction: the k-th source and the k-th sink attach
        // to hubs drawn from the same popularity law with the same degree
        // law, differing only in arc direction.
        for k in 0..config.sources as u32 {
            let n_arcs = rng.gen_range(config.arcs.0..=config.arcs.1);
            for side in 0..2u32 {
                let node = if side == 0 {
                    src_base + k
                } else {
                    sink_base + k
                };
                let mut picked: Vec<u32> = Vec::with_capacity(n_arcs);
                let mut guard = 0;
                while picked.len() < n_arcs && guard < 20 * n_arcs {
                    guard += 1;
                    let hub = zipf_index(&mut rng, config.hubs, config.hub_popularity) as u32;
                    if !picked.contains(&hub) {
                        picked.push(hub);
                        if side == 0 {
                            // source → hub
                            b.add_arc(NodeId::new(node), NodeId::new(hub)).expect("ok");
                        } else {
                            // hub → sink
                            b.add_arc(NodeId::new(hub), NodeId::new(node)).expect("ok");
                        }
                    }
                }
            }
        }
        FlowData { graph: b.build() }
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{LabelConnectivityGraph, Orientation};

    use super::*;

    fn tiny() -> FlowData {
        FlowData::generate(&FlowConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn shape_and_star_lcg() {
        let data = tiny();
        let g = &data.graph;
        assert_eq!(g.node_count(), 30 + 60 + 60);
        let lcg = LabelConnectivityGraph::of(g);
        assert!(lcg.is_star_on(Label::new(0)));
        assert!(!lcg.has_any_self_loop());
    }

    #[test]
    fn all_edges_are_directed_correctly() {
        let data = tiny();
        let g = &data.graph;
        assert!(g.has_directions());
        for v in g.nodes_with_label(Label::new(1)) {
            let ids = g.incident_edge_ids(v);
            let nbrs = g.neighbors(v);
            for (&w, &e) in nbrs.iter().zip(ids) {
                assert_eq!(
                    g.orientation(v, w, e),
                    Orientation::Outgoing,
                    "sources only emit arcs"
                );
            }
        }
        for v in g.nodes_with_label(Label::new(2)) {
            let ids = g.incident_edge_ids(v);
            let nbrs = g.neighbors(v);
            for (&w, &e) in nbrs.iter().zip(ids) {
                assert_eq!(
                    g.orientation(v, w, e),
                    Orientation::Incoming,
                    "sinks only receive arcs"
                );
            }
        }
    }

    #[test]
    fn sources_and_sinks_have_matching_degree_distributions() {
        let data = tiny();
        let g = &data.graph;
        let mut src: Vec<usize> = g
            .nodes_with_label(Label::new(1))
            .map(|v| g.degree(v))
            .collect();
        let mut snk: Vec<usize> = g
            .nodes_with_label(Label::new(2))
            .map(|v| g.degree(v))
            .collect();
        src.sort_unstable();
        snk.sort_unstable();
        assert_eq!(
            src, snk,
            "paired construction must match degree laws exactly"
        );
    }
}
