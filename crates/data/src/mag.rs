//! Synthetic MAG-style scientific publication network (paper §4.1, §4.2).
//!
//! Replaces the Microsoft Academic Graph subsets used by the paper with a
//! generative model whose latent process *is* the ground truth:
//!
//! * Institutions carry a Zipf-like latent prestige; authors are affiliated
//!   with institutions (multi-affiliation is possible but rare, as in the
//!   real data) and inherit a skill correlated with prestige.
//! * Per conference and year, full and short papers are written by teams
//!   whose lead authors are sampled proportionally to skill; strong teams
//!   collaborate across institutional boundaries more often — the very
//!   signal the paper's Fig. 4 finds discriminative.
//! * Papers cite earlier papers with recency decay and preference for
//!   strong teams; externally cited papers live in journals.
//! * Titles are Zipf-distributed word sequences with conference-specific
//!   vocabulary bias, giving the "linguistic" classic features signal.
//!
//! Institution relevance follows the 2016 KDD Cup directives verbatim
//! (§4.2): each accepted full paper has one vote, split equally among its
//! authors, and each author's share is split equally among their
//! affiliations. Because relevance derives from the same latent process
//! that shapes the topology, the task "predict relevance from topology"
//! stays meaningful.

use hsgf_graph::rng::{Rng, WeightedIndex};
use hsgf_graph::{GraphBuilder, HetGraph, Label, LabelSet, NodeId};

use crate::Scale;

/// MAG generator parameters.
#[derive(Clone, Debug)]
pub struct MagConfig {
    /// Number of research institutions.
    pub institutions: usize,
    /// Number of authors.
    pub authors: usize,
    /// Conference names (the paper uses KDD, FSE, ICML, MM, MOBICOM).
    pub conferences: Vec<String>,
    /// First publication year (paper: 2007).
    pub first_year: u32,
    /// Last publication year — the prediction target (paper: 2015).
    pub last_year: u32,
    /// Accepted full papers per conference per year.
    pub full_papers: usize,
    /// Short / workshop / demo papers per conference per year.
    pub short_papers: usize,
    /// Number of journals for externally cited papers.
    pub journals: usize,
    /// Number of fields of study.
    pub fields: usize,
    /// External (journal) papers generated per year as citation targets.
    pub external_papers_per_year: usize,
    /// Probability that an author holds two affiliations.
    pub multi_affiliation_prob: f64,
    /// Title vocabulary size.
    pub vocab: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MagConfig {
    /// Preset sizes; `Paper` uses the paper's 741 institutions and five
    /// conferences over 2007–2015.
    pub fn at_scale(scale: Scale) -> Self {
        let (institutions, authors, confs, full, short, external) = match scale {
            Scale::Tiny => (18, 120, 2, 8, 4, 20),
            Scale::Small => (150, 1_500, 5, 40, 20, 250),
            Scale::Paper => (741, 12_000, 5, 160, 90, 2_500),
        };
        let names = ["KDD", "FSE", "ICML", "MM", "MOBICOM"];
        MagConfig {
            institutions,
            authors,
            conferences: names.iter().take(confs).map(|s| s.to_string()).collect(),
            first_year: 2007,
            last_year: 2015,
            full_papers: full,
            short_papers: short,
            journals: 30,
            fields: 25,
            external_papers_per_year: external,
            multi_affiliation_prob: 0.02,
            vocab: 2_000,
            seed: 0x3A6,
        }
    }

    /// All years covered, ascending.
    pub fn years(&self) -> impl Iterator<Item = u32> {
        self.first_year..=self.last_year
    }
}

/// An author with affiliations and latent skill.
#[derive(Clone, Debug)]
pub struct Author {
    /// Affiliated institutions (1, rarely 2).
    pub institutions: Vec<usize>,
    /// Latent skill, correlated with institutional prestige.
    pub skill: f64,
}

/// A generated paper (conference or journal).
#[derive(Clone, Debug)]
pub struct Paper {
    /// Conference index, or `None` for external journal papers.
    pub conference: Option<usize>,
    /// Journal index for external papers.
    pub journal: Option<usize>,
    /// Publication year.
    pub year: u32,
    /// Whether the paper is a full paper (only these count for relevance).
    pub full: bool,
    /// Author ids; the last entry is the senior "last author".
    pub authors: Vec<usize>,
    /// Indices of cited earlier papers.
    pub citations: Vec<usize>,
    /// Title as word ids into the Zipf vocabulary.
    pub title: Vec<u32>,
    /// Number of attached keywords.
    pub keywords: usize,
    /// Fields of study.
    pub fields: Vec<usize>,
}

/// The generated publication corpus.
pub struct MagData {
    /// Generator parameters (retained for downstream feature extraction).
    pub config: MagConfig,
    /// Latent institutional prestige (the hidden driver of everything).
    pub prestige: Vec<f64>,
    /// Authors.
    pub authors: Vec<Author>,
    /// All papers, internal and external.
    pub papers: Vec<Paper>,
}

/// Labels of the rank-prediction subgraphs (paper Fig. 2 left).
pub const MAG_RANK_LABELS: [&str; 3] = ["institution", "author", "paper"];

/// Labels of the label-prediction network (paper Fig. 2 right).
pub const MAG_LABEL_LABELS: [&str; 6] = [
    "author",
    "institution",
    "conference",
    "journal",
    "field",
    "paper",
];

impl MagData {
    /// Generates the corpus.
    pub fn generate(config: &MagConfig) -> Self {
        let mut rng = Rng::from_seed(config.seed);
        let config = config.clone();
        // Institutional prestige: Zipf-like with noise.
        let prestige: Vec<f64> = (0..config.institutions)
            .map(|i| (1.0 / (i as f64 + 1.0).powf(0.7)) * rng.gen_range(0.7..1.3))
            .collect();
        // Authors join institutions proportionally to prestige (prestigious
        // institutions are larger in the MAG too).
        let inst_dist = WeightedIndex::new(&prestige).expect("positive prestige");
        let authors: Vec<Author> = (0..config.authors)
            .map(|_| {
                let first = inst_dist.sample(&mut rng);
                let mut institutions = vec![first];
                if rng.gen_bool(config.multi_affiliation_prob) && config.institutions > 1 {
                    let mut second = inst_dist.sample(&mut rng);
                    while second == first {
                        second = inst_dist.sample(&mut rng);
                    }
                    institutions.push(second);
                }
                let skill = prestige[first] * rng.gen_range(0.5..1.5) + rng.gen_range(0.0..0.05);
                Author {
                    institutions,
                    skill,
                }
            })
            .collect();
        let author_skill: Vec<f64> = authors.iter().map(|a| a.skill).collect();
        let lead_dist =
            WeightedIndex::new(author_skill.iter().map(|s| s * s)).expect("positive skills");

        // Conference-specific vocabulary bias: each conference over-uses a
        // band of the vocabulary.
        let vocab_band = |conf: usize| -> (u32, u32) {
            let band = (config.vocab / 10) as u32;
            let start = (conf as u32 * band * 2) % config.vocab as u32;
            (start, band.max(1))
        };

        let mut papers: Vec<Paper> = Vec::new();
        for year in config.first_year..=config.last_year {
            // External journal papers first (citable in the same year).
            for _ in 0..config.external_papers_per_year {
                let team = sample_team(&mut rng, &lead_dist, &authors, 1, 4);
                let journal = rng.gen_range(0..config.journals.max(1));
                let paper = make_paper(
                    &mut rng,
                    &config,
                    None,
                    Some(journal),
                    year,
                    false,
                    team,
                    &papers,
                    (0, 1),
                );
                papers.push(paper);
            }
            for conf in 0..config.conferences.len() {
                let band = vocab_band(conf);
                for k in 0..config.full_papers + config.short_papers {
                    let full = k < config.full_papers;
                    let team = sample_team(&mut rng, &lead_dist, &authors, 2, 5);
                    let paper = make_paper(
                        &mut rng,
                        &config,
                        Some(conf),
                        None,
                        year,
                        full,
                        team,
                        &papers,
                        band,
                    );
                    papers.push(paper);
                }
            }
        }
        MagData {
            config,
            prestige,
            authors,
            papers,
        }
    }

    /// The KDD-Cup relevance of every institution for one conference and
    /// year: full papers vote equally; authors split a paper's vote; an
    /// author's share splits across their affiliations.
    pub fn relevance(&self, conference: usize, year: u32) -> Vec<f64> {
        let mut rel = vec![0.0f64; self.config.institutions];
        for paper in &self.papers {
            if paper.conference != Some(conference) || paper.year != year || !paper.full {
                continue;
            }
            let per_author = 1.0 / paper.authors.len() as f64;
            for &a in &paper.authors {
                let insts = &self.authors[a].institutions;
                let per_inst = per_author / insts.len() as f64;
                for &i in insts {
                    rel[i] += per_inst;
                }
            }
        }
        rel
    }

    /// Builds the rank-prediction subgraph for one conference and year
    /// (labels: institution, author, paper): the conference's papers of
    /// that year, referenced papers up to distance 2, every author of an
    /// included paper, and those authors' institutions.
    ///
    /// Returns the graph and the node id of every institution (indexed by
    /// institution id; institutions with no presence in the subgraph still
    /// get an isolated node so every feature row is well-defined).
    pub fn rank_graph(&self, conference: usize, year: u32) -> (HetGraph, Vec<NodeId>) {
        let labels = LabelSet::from_names(MAG_RANK_LABELS).expect("static names");
        let mut builder = GraphBuilder::new(labels);
        // All institutions up front, ids align with institution indices.
        let inst_nodes: Vec<NodeId> = (0..self.config.institutions)
            .map(|_| builder.add_node_with(Label::new(0)).expect("fits"))
            .collect();
        let mut author_nodes: Vec<Option<NodeId>> = vec![None; self.authors.len()];
        let mut paper_nodes: Vec<Option<NodeId>> = vec![None; self.papers.len()];
        // Seed papers: this conference + year.
        let seeds: Vec<usize> = (0..self.papers.len())
            .filter(|&p| {
                self.papers[p].conference == Some(conference) && self.papers[p].year == year
            })
            .collect();
        // Expand citations to distance ≤ 2.
        let mut include: Vec<usize> = seeds.clone();
        let mut frontier = seeds;
        for _depth in 0..2 {
            let mut next = Vec::new();
            for &p in &frontier {
                for &c in &self.papers[p].citations {
                    if paper_nodes[c].is_none() && !include.contains(&c) && !next.contains(&c) {
                        next.push(c);
                    }
                }
            }
            include.extend(next.iter().copied());
            frontier = next;
        }
        let mut add_paper = |builder: &mut GraphBuilder, p: usize| -> NodeId {
            let node = builder.add_node_with(Label::new(2)).expect("fits");
            paper_nodes[p] = Some(node);
            node
        };
        for &p in &include {
            add_paper(&mut builder, p);
        }
        // Authors, affiliations, authorship edges.
        for &p in &include {
            let p_node = paper_nodes[p].expect("just added");
            for &a in &self.papers[p].authors {
                let a_node = match author_nodes[a] {
                    Some(n) => n,
                    None => {
                        let n = builder.add_node_with(Label::new(1)).expect("fits");
                        author_nodes[a] = Some(n);
                        for &i in &self.authors[a].institutions {
                            builder.add_edge(n, inst_nodes[i]).expect("nodes exist");
                        }
                        n
                    }
                };
                builder.add_edge(p_node, a_node).expect("nodes exist");
            }
        }
        // Citation edges among included papers.
        for &p in &include {
            for &c in &self.papers[p].citations {
                if let (Some(a), Some(b)) = (paper_nodes[p], paper_nodes[c]) {
                    builder.add_edge(a, b).expect("nodes exist");
                }
            }
        }
        (builder.build(), inst_nodes)
    }

    /// Builds the six-label network used for label prediction (paper
    /// Fig. 2 right): all papers, authors, institutions, conferences,
    /// journals, and fields, with authorship, affiliation, venue, field,
    /// and citation edges.
    pub fn label_graph(&self) -> HetGraph {
        let labels = LabelSet::from_names(MAG_LABEL_LABELS).expect("static names");
        let mut builder = GraphBuilder::new(labels);
        let author_nodes: Vec<NodeId> = (0..self.authors.len())
            .map(|_| builder.add_node_with(Label::new(0)).expect("fits"))
            .collect();
        let inst_nodes: Vec<NodeId> = (0..self.config.institutions)
            .map(|_| builder.add_node_with(Label::new(1)).expect("fits"))
            .collect();
        let conf_nodes: Vec<NodeId> = (0..self.config.conferences.len())
            .map(|_| builder.add_node_with(Label::new(2)).expect("fits"))
            .collect();
        let journal_nodes: Vec<NodeId> = (0..self.config.journals)
            .map(|_| builder.add_node_with(Label::new(3)).expect("fits"))
            .collect();
        let field_nodes: Vec<NodeId> = (0..self.config.fields)
            .map(|_| builder.add_node_with(Label::new(4)).expect("fits"))
            .collect();
        for (a, author) in self.authors.iter().enumerate() {
            for &i in &author.institutions {
                builder
                    .add_edge(author_nodes[a], inst_nodes[i])
                    .expect("nodes exist");
            }
        }
        let paper_nodes: Vec<NodeId> = self
            .papers
            .iter()
            .map(|_| builder.add_node_with(Label::new(5)).expect("fits"))
            .collect();
        for (p, paper) in self.papers.iter().enumerate() {
            let pn = paper_nodes[p];
            for &a in &paper.authors {
                builder.add_edge(pn, author_nodes[a]).expect("nodes exist");
            }
            if let Some(c) = paper.conference {
                builder.add_edge(pn, conf_nodes[c]).expect("nodes exist");
            }
            if let Some(j) = paper.journal {
                builder.add_edge(pn, journal_nodes[j]).expect("nodes exist");
            }
            for &f in &paper.fields {
                builder.add_edge(pn, field_nodes[f]).expect("nodes exist");
            }
            for &c in &paper.citations {
                builder.add_edge(pn, paper_nodes[c]).expect("nodes exist");
            }
        }
        builder.build()
    }

    /// Index of the conference by name.
    pub fn conference_index(&self, name: &str) -> Option<usize> {
        self.config.conferences.iter().position(|c| c == name)
    }
}

/// Samples an author team: a skill-weighted lead plus collaborators.
/// Stronger leads collaborate across institutions more often (the latent
/// signal behind the paper's Fig. 4 observation).
fn sample_team(
    rng: &mut Rng,
    lead_dist: &WeightedIndex,
    authors: &[Author],
    min_size: usize,
    max_size: usize,
) -> Vec<usize> {
    let lead = lead_dist.sample(rng);
    let size = rng.gen_range(min_size..=max_size);
    let mut team = vec![lead];
    let cross_inst_prob = (authors[lead].skill * 0.6).clamp(0.05, 0.8);
    let mut guard = 0;
    while team.len() < size && guard < 20 * size {
        guard += 1;
        let cand = if rng.gen_bool(cross_inst_prob) {
            // Cross-institution collaborator, skill-weighted.
            lead_dist.sample(rng)
        } else {
            // Same-institution colleague: rejection sample.
            let home = authors[lead].institutions[0];
            let c = lead_dist.sample(rng);
            if authors[c].institutions.contains(&home) {
                c
            } else {
                continue;
            }
        };
        if !team.contains(&cand) {
            team.push(cand);
        }
    }
    // Most senior (highest skill) author last, as conventions go.
    let last = (0..team.len())
        .max_by(|&a, &b| {
            authors[team[a]]
                .skill
                .partial_cmp(&authors[team[b]].skill)
                .expect("finite skill")
        })
        .expect("non-empty team");
    let n = team.len();
    team.swap(last, n - 1);
    team
}

#[allow(clippy::too_many_arguments)]
fn make_paper(
    rng: &mut Rng,
    config: &MagConfig,
    conference: Option<usize>,
    journal: Option<usize>,
    year: u32,
    full: bool,
    team: Vec<usize>,
    earlier: &[Paper],
    vocab_band: (u32, u32),
) -> Paper {
    // Citations: recency-weighted sample of earlier papers.
    let n_cites = rng.gen_range(2usize..=9).min(earlier.len());
    let mut citations = Vec::with_capacity(n_cites);
    let mut guard = 0;
    while citations.len() < n_cites && guard < 20 * n_cites {
        guard += 1;
        // Bias toward recent papers: sample an offset from the end.
        let span = earlier.len();
        let back = (hsgf_graph::generators::zipf_index(rng, span, 1.1)) + 1;
        let idx = span - back;
        if !citations.contains(&idx) {
            citations.push(idx);
        }
    }
    // Title: conference band words mixed with global Zipf words.
    let title_len = rng.gen_range(4usize..=12);
    let title: Vec<u32> = (0..title_len)
        .map(|_| {
            if rng.gen_bool(0.35) {
                vocab_band.0 + rng.gen_range(0..vocab_band.1)
            } else {
                hsgf_graph::generators::zipf_index(rng, config.vocab, 1.05) as u32
            }
        })
        .collect();
    let n_fields = rng.gen_range(1usize..=3).min(config.fields.max(1));
    let mut fields = Vec::with_capacity(n_fields);
    // Conference-correlated fields.
    let base_field = conference.unwrap_or(0) * 3 % config.fields.max(1);
    while fields.len() < n_fields {
        let f = if rng.gen_bool(0.5) {
            (base_field + fields.len()) % config.fields.max(1)
        } else {
            rng.gen_range(0..config.fields.max(1))
        };
        if !fields.contains(&f) {
            fields.push(f);
        } else {
            let f2 = rng.gen_range(0..config.fields.max(1));
            if !fields.contains(&f2) {
                fields.push(f2);
            }
        }
    }
    Paper {
        conference,
        journal,
        year,
        full,
        authors: team,
        citations,
        title,
        keywords: rng.gen_range(3usize..=8),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::LabelConnectivityGraph;

    use super::*;

    fn tiny() -> MagData {
        MagData::generate(&MagConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn corpus_shape() {
        let data = tiny();
        let c = &data.config;
        let years = (c.last_year - c.first_year + 1) as usize;
        let expected = years
            * (c.external_papers_per_year + c.conferences.len() * (c.full_papers + c.short_papers));
        assert_eq!(data.papers.len(), expected);
        assert_eq!(data.authors.len(), c.authors);
    }

    #[test]
    fn relevance_follows_kdd_cup_directives() {
        let data = tiny();
        let rel = data.relevance(0, 2010);
        // Total relevance equals the number of full papers at (conf, year):
        // votes are conserved under equal splitting.
        let full_count = data
            .papers
            .iter()
            .filter(|p| p.conference == Some(0) && p.year == 2010 && p.full)
            .count();
        let total: f64 = rel.iter().sum();
        assert!(
            (total - full_count as f64).abs() < 1e-9,
            "total {total} vs {full_count} full papers"
        );
    }

    #[test]
    fn relevance_correlates_with_prestige() {
        let data = MagData::generate(&MagConfig::at_scale(Scale::Tiny));
        // Aggregate over all conferences/years for stability.
        let mut total = vec![0.0; data.config.institutions];
        for conf in 0..data.config.conferences.len() {
            for year in data.config.years() {
                for (t, r) in total.iter_mut().zip(data.relevance(conf, year)) {
                    *t += r;
                }
            }
        }
        // Spearman-ish check: the top-prestige third must collect more
        // relevance than the bottom third.
        let k = data.config.institutions / 3;
        let mut by_prestige: Vec<usize> = (0..data.config.institutions).collect();
        by_prestige.sort_by(|&a, &b| {
            data.prestige[b]
                .partial_cmp(&data.prestige[a])
                .expect("finite")
        });
        let top: f64 = by_prestige[..k].iter().map(|&i| total[i]).sum();
        let bottom: f64 = by_prestige[data.config.institutions - k..]
            .iter()
            .map(|&i| total[i])
            .sum();
        assert!(top > 2.0 * bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn citations_point_backwards() {
        let data = tiny();
        for (p, paper) in data.papers.iter().enumerate() {
            for &c in &paper.citations {
                assert!(c < p, "paper {p} cites a later paper {c}");
            }
        }
    }

    #[test]
    fn rank_graph_has_three_labels_and_all_institutions() {
        let data = tiny();
        let (graph, inst_nodes) = data.rank_graph(0, 2009);
        assert_eq!(graph.label_count(), 3);
        assert_eq!(inst_nodes.len(), data.config.institutions);
        for &n in &inst_nodes {
            assert_eq!(graph.label(n), Label::new(0));
        }
        // Seed papers of the target conference/year are present: count
        // paper-labelled nodes.
        let papers = graph.label_histogram()[2];
        assert!(papers >= data.config.full_papers + data.config.short_papers);
    }

    #[test]
    fn rank_graph_lcg_shape() {
        // I–A, A–P, P–P: no I–I, no I–P, no A–A edges.
        let data = tiny();
        let (graph, _) = data.rank_graph(1, 2012);
        let lcg = LabelConnectivityGraph::of(&graph);
        assert!(lcg.connected(Label::new(0), Label::new(1)));
        assert!(lcg.connected(Label::new(1), Label::new(2)));
        assert!(
            lcg.has_self_loop(Label::new(2)),
            "citations are P–P self loops"
        );
        assert!(!lcg.connected(Label::new(0), Label::new(2)));
        assert!(!lcg.has_self_loop(Label::new(0)));
        assert!(!lcg.has_self_loop(Label::new(1)));
    }

    #[test]
    fn label_graph_has_six_labels_and_venue_edges() {
        let data = tiny();
        let g = data.label_graph();
        assert_eq!(g.label_count(), 6);
        let hist = g.label_histogram();
        assert_eq!(hist[0], data.config.authors);
        assert_eq!(hist[1], data.config.institutions);
        assert_eq!(hist[2], data.config.conferences.len());
        assert_eq!(hist[5], data.papers.len());
        let lcg = LabelConnectivityGraph::of(&g);
        // Papers connect to everything paper-ish; conferences/journals/
        // fields only to papers.
        assert!(lcg.connected(Label::new(5), Label::new(2)));
        assert!(lcg.connected(Label::new(5), Label::new(3)));
        assert!(lcg.connected(Label::new(5), Label::new(4)));
        assert!(!lcg.connected(Label::new(2), Label::new(3)));
        assert!(lcg.has_self_loop(Label::new(5)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.papers.len(), b.papers.len());
        for (pa, pb) in a.papers.iter().zip(&b.papers) {
            assert_eq!(pa.authors, pb.authors);
            assert_eq!(pa.citations, pb.citations);
        }
    }

    #[test]
    fn teams_have_last_author_with_max_skill() {
        let data = tiny();
        for paper in data.papers.iter().take(200) {
            let last = *paper.authors.last().expect("non-empty");
            for &a in &paper.authors {
                assert!(data.authors[a].skill <= data.authors[last].skill + 1e-12);
            }
        }
    }
}
