//! Synthetic heterogeneous-network datasets with generative ground truth.
//!
//! The paper evaluates on three proprietary / no-longer-distributed
//! datasets: subsets of the Microsoft Academic Graph, the LOAD entity
//! co-occurrence network, and IMDB movie records. This crate replaces each
//! with a *generator* that reproduces the structural properties the paper
//! reports (label sets, label-connectivity-graph shape, skewed degrees)
//! plus a generative ground-truth process for each prediction task — see
//! DESIGN.md §2 for the substitution rationale.
//!
//! * [`mag`] — publication network (institutions, authors, papers, venues,
//!   fields) with the KDD-Cup-2016 relevance directives as ground truth.
//! * [`load`] — dense entity co-occurrence network over locations,
//!   organizations, actors, and dates (complete LCG with self loops).
//! * [`imdb`] — star-structured movie-record network (six labels, hub label
//!   `movie`, loop-free star LCG).
//! * [`classic`] — the hand-engineered "classic" + linguistic features of
//!   paper §4.2.2, computed from the generated publication metadata.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod classic;
pub mod flow;
pub mod imdb;
pub mod load;
pub mod mag;
pub mod multiplex;

pub use flow::{FlowConfig, FlowData};
pub use imdb::{ImdbConfig, ImdbData};
pub use load::{LoadConfig, LoadData};
pub use mag::{MagConfig, MagData};
pub use multiplex::{MultiplexConfig, MultiplexData};

/// Size presets shared by the generators so tests, default experiment runs,
/// and paper-scale runs stay consistent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred nodes — unit tests.
    Tiny,
    /// A few thousand nodes — default experiment runs (minutes, laptop).
    Small,
    /// Tens of thousands of nodes — the paper's order of magnitude.
    Paper,
}
