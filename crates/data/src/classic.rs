//! The hand-engineered "classic" and linguistic features of paper §4.2.2,
//! computed from the generated publication metadata.
//!
//! Features are extracted per institution for one (conference, target
//! year) pair, using only information from years strictly before the
//! target year — the setup under which the paper trains on 2007–2014 and
//! predicts 2015. History-dependent features use a sliding window of
//! [`HISTORY_WINDOW`] years so every row has a fixed dimension regardless
//! of the target year.

use crate::mag::MagData;

/// Number of past years the per-year history features cover.
pub const HISTORY_WINDOW: usize = 4;

/// Number of top title words tracked per conference (paper: 20).
pub const TOP_WORDS: usize = 20;

/// Names of all classic + linguistic features, in column order.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::new();
    for k in 1..=HISTORY_WINDOW {
        names.push(format!("relevance_y-{k}"));
    }
    for k in 1..=HISTORY_WINDOW {
        names.push(format!("relevance_norm_y-{k}"));
    }
    names.push("full_papers".into());
    names.push("all_papers".into());
    names.push("authorship".into());
    names.push("full_paper_authors".into());
    names.push("short_paper_authors".into());
    names.push("last_author_count".into());
    // Linguistic block.
    names.push("avg_institutions_per_paper".into());
    names.push("avg_keywords".into());
    names.push("avg_title_words".into());
    names.push("avg_title_chars".into());
    for class in [
        "noun",
        "verb",
        "adjective",
        "adverb",
        "number",
        "punctuation",
    ] {
        names.push(format!("frac_{class}"));
    }
    names.push("distinct_word_fraction".into());
    names.push("repeated_word_fraction".into());
    for k in 0..TOP_WORDS {
        names.push(format!("top_word_{k}"));
    }
    names
}

/// Synthetic part-of-speech class of a vocabulary word (stable hash of the
/// word id). Stands in for the real POS tagger the paper applies to title
/// text.
fn word_class(word: u32) -> usize {
    // Weighted so that "nouns" dominate, as in English titles.
    match word % 10 {
        0..=3 => 0, // noun
        4..=5 => 1, // verb
        6 => 2,     // adjective
        7 => 3,     // adverb
        8 => 4,     // number
        _ => 5,     // punctuation
    }
}

/// Synthetic word length in characters (stable per word id).
fn word_len(word: u32) -> f64 {
    3.0 + (word % 8) as f64
}

/// Extracts the classic + linguistic features for every institution, for
/// one conference and target year. Returns a flat row-major matrix
/// (`institutions × feature_names().len()`).
pub fn classic_features(data: &MagData, conference: usize, target_year: u32) -> Vec<f64> {
    let n_inst = data.config.institutions;
    let d = feature_names().len();
    let mut out = vec![0.0f64; n_inst * d];
    let window_years: Vec<u32> = (1..=HISTORY_WINDOW as u32)
        .filter_map(|k| target_year.checked_sub(k))
        .filter(|&y| y >= data.config.first_year)
        .collect();

    // Per-year relevance history.
    for (k, &y) in window_years.iter().enumerate() {
        let rel = data.relevance(conference, y);
        let full_count = data
            .papers
            .iter()
            .filter(|p| p.conference == Some(conference) && p.year == y && p.full)
            .count()
            .max(1) as f64;
        for i in 0..n_inst {
            out[i * d + k] = rel[i];
            out[i * d + HISTORY_WINDOW + k] = rel[i] / full_count;
        }
    }

    // The global top title words of this conference in the window.
    let mut word_counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for paper in &data.papers {
        if paper.conference == Some(conference) && window_years.contains(&paper.year) {
            for &w in &paper.title {
                *word_counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    let mut top_words: Vec<(u32, usize)> = word_counts.into_iter().collect();
    top_words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top_words.truncate(TOP_WORDS);
    let top_words: Vec<u32> = top_words.into_iter().map(|(w, _)| w).collect();

    // Paper-sweep accumulators per institution.
    let base = 2 * HISTORY_WINDOW;
    let mut paper_counts = vec![0usize; n_inst]; // all papers (for averaging)
    for paper in &data.papers {
        if paper.conference != Some(conference) || !window_years.contains(&paper.year) {
            continue;
        }
        // Institutions represented on this paper.
        let mut insts: Vec<usize> = Vec::new();
        for &a in &paper.authors {
            for &i in &data.authors[a].institutions {
                if !insts.contains(&i) {
                    insts.push(i);
                }
            }
        }
        let n_title = paper.title.len() as f64;
        let chars: f64 = paper.title.iter().map(|&w| word_len(w)).sum();
        let mut class_counts = [0.0f64; 6];
        for &w in &paper.title {
            class_counts[word_class(w)] += 1.0;
        }
        let mut distinct = paper.title.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let distinct_frac = distinct.len() as f64 / n_title.max(1.0);
        let top_hits: f64 = paper.title.iter().filter(|w| top_words.contains(w)).count() as f64;
        let last_author = *paper.authors.last().expect("papers have authors");
        for &i in &insts {
            let row = &mut out[i * d..(i + 1) * d];
            paper_counts[i] += 1;
            if paper.full {
                row[base] += 1.0; // full papers
            }
            row[base + 1] += 1.0; // all papers
                                  // Authors of this institution on the paper.
            let inst_authors = paper
                .authors
                .iter()
                .filter(|&&a| data.authors[a].institutions.contains(&i))
                .count() as f64;
            row[base + 2] += inst_authors / window_years.len().max(1) as f64;
            if paper.full {
                row[base + 3] += inst_authors;
            } else {
                row[base + 4] += inst_authors;
            }
            if data.authors[last_author].institutions.contains(&i) {
                row[base + 5] += 1.0;
            }
            // Linguistic accumulators (averaged after the sweep).
            row[base + 6] += insts.len() as f64;
            row[base + 7] += paper.keywords as f64;
            row[base + 8] += n_title;
            row[base + 9] += chars;
            for (c, &cc) in class_counts.iter().enumerate() {
                row[base + 10 + c] += cc / n_title.max(1.0);
            }
            row[base + 16] += distinct_frac;
            row[base + 17] += 1.0 - distinct_frac;
            for (k, w) in top_words.iter().enumerate() {
                row[base + 18 + k] += paper.title.iter().filter(|&x| x == w).count() as f64;
            }
            let _ = top_hits;
        }
    }
    // Convert per-paper accumulators into averages.
    for i in 0..n_inst {
        let count = paper_counts[i] as f64;
        if count > 0.0 {
            let row = &mut out[i * d..(i + 1) * d];
            for slot in base + 6..d {
                row[slot] /= count;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::mag::MagConfig;
    use crate::Scale;

    use super::*;

    fn tiny() -> MagData {
        MagData::generate(&MagConfig::at_scale(Scale::Tiny))
    }

    #[test]
    fn dimensions_match_names() {
        let data = tiny();
        let names = feature_names();
        let x = classic_features(&data, 0, 2012);
        assert_eq!(x.len(), data.config.institutions * names.len());
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relevance_history_columns_match_relevance() {
        let data = tiny();
        let target = 2012u32;
        let x = classic_features(&data, 0, target);
        let d = feature_names().len();
        let rel_prev = data.relevance(0, target - 1);
        for i in 0..data.config.institutions {
            assert!(
                (x[i * d] - rel_prev[i]).abs() < 1e-12,
                "inst {i}: feature {} vs relevance {}",
                x[i * d],
                rel_prev[i]
            );
        }
    }

    #[test]
    fn uses_only_past_years() {
        // Features for the earliest possible target year see no history:
        // all history columns are zero.
        let data = tiny();
        let x = classic_features(&data, 0, data.config.first_year);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn paper_counts_are_window_sums() {
        let data = tiny();
        let target = 2011u32;
        let x = classic_features(&data, 1, target);
        let d = feature_names().len();
        let base = 2 * HISTORY_WINDOW;
        // Summed over institutions, each full paper is counted once per
        // distinct institution on it.
        let mut expected = 0.0;
        for paper in &data.papers {
            if paper.conference == Some(1)
                && paper.year < target
                && paper.year + (HISTORY_WINDOW as u32) >= target
                && paper.full
            {
                let mut insts: Vec<usize> = Vec::new();
                for &a in &paper.authors {
                    for &i in &data.authors[a].institutions {
                        if !insts.contains(&i) {
                            insts.push(i);
                        }
                    }
                }
                expected += insts.len() as f64;
            }
        }
        let total: f64 = (0..data.config.institutions).map(|i| x[i * d + base]).sum();
        assert!(
            (total - expected).abs() < 1e-9,
            "total {total} vs {expected}"
        );
    }

    #[test]
    fn fractions_are_normalized() {
        let data = tiny();
        let x = classic_features(&data, 0, 2013);
        let d = feature_names().len();
        let base = 2 * HISTORY_WINDOW;
        for i in 0..data.config.institutions {
            let frac_sum: f64 = (0..6).map(|c| x[i * d + base + 10 + c]).sum();
            if frac_sum > 0.0 {
                assert!((frac_sum - 1.0).abs() < 1e-9, "inst {i}: {frac_sum}");
            }
        }
    }
}
