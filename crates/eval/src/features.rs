//! Shared feature-extraction pipelines: subgraph censuses and neural
//! embeddings, both shaped into dense matrices for the learners.

use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::features::FeatureMatrix;
use hsgf_core::parallel::extract_censuses;
use hsgf_embed::EmbeddingKind;
use hsgf_graph::{DegreeStats, HetGraph, NodeId};

/// Which family of node features to extract.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FeatureFamily {
    /// Heterogeneous subgraph features (the paper's contribution).
    Subgraph,
    /// A neural embedding baseline.
    Embedding(EmbeddingKind),
}

impl FeatureFamily {
    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            FeatureFamily::Subgraph => "Subgraph",
            FeatureFamily::Embedding(k) => k.name(),
        }
    }

    /// The four families compared in the label-prediction figures, in the
    /// paper's order.
    pub const LABEL_TASK: [FeatureFamily; 4] = [
        FeatureFamily::Subgraph,
        FeatureFamily::Embedding(EmbeddingKind::Node2Vec),
        FeatureFamily::Embedding(EmbeddingKind::DeepWalk),
        FeatureFamily::Embedding(EmbeddingKind::Line),
    ];
}

/// Parameters of the subgraph feature pipeline.
#[derive(Clone, Debug)]
pub struct SubgraphFeatureConfig {
    /// Census parameters.
    pub census: CensusConfig,
    /// Drop features occurring in fewer rows than this.
    pub min_df: u32,
    /// Cap the vocabulary to the `k` most document-frequent features
    /// (unsupervised, so leak-free). `None` keeps everything.
    pub max_features: Option<usize>,
    /// Apply `ln(1+x)` to counts before learning.
    pub log1p: bool,
    /// Worker threads.
    pub threads: usize,
}

impl Default for SubgraphFeatureConfig {
    fn default() -> Self {
        SubgraphFeatureConfig {
            census: CensusConfig::default(),
            min_df: 2,
            max_features: None,
            log1p: true,
            threads: default_threads(),
        }
    }
}

/// A sensible worker count for the current machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Resolves a `dmax` percentile (e.g. 90.0) into a concrete degree bound
/// for the graph; `None` or `>= 100` means unbounded (the paper's "100%" /
/// `dmax = ∞` setting).
pub fn dmax_from_percentile(graph: &HetGraph, percentile: Option<f64>) -> Option<u32> {
    match percentile {
        Some(p) if p < 100.0 => Some(DegreeStats::of(graph).degree_at_percentile(p)),
        _ => None,
    }
}

/// Extracts the subgraph [`FeatureMatrix`] for `roots`, applying min-df
/// pruning and log scaling per the config.
pub fn subgraph_features(
    graph: &HetGraph,
    roots: &[NodeId],
    config: &SubgraphFeatureConfig,
) -> FeatureMatrix {
    let engine =
        CensusEngine::new(graph, config.census.clone()).expect("config validated by caller");
    let censuses = extract_censuses(&engine, roots, config.threads).expect("roots are valid nodes");
    let mut matrix = FeatureMatrix::from_censuses(roots.to_vec(), censuses);
    if config.min_df > 1 {
        matrix = matrix.filter_min_df(config.min_df);
    }
    if let Some(k) = config.max_features {
        matrix = matrix.top_k_by_document_frequency(k);
    }
    if config.log1p {
        matrix = matrix.log1p();
    }
    matrix
}

/// Extracts dense embedding features for `roots` by training the baseline
/// on the whole graph (embeddings are transductive).
pub fn embedding_features(
    graph: &HetGraph,
    roots: &[NodeId],
    kind: EmbeddingKind,
    dim: usize,
    budget: f64,
    seed: u64,
) -> Vec<f64> {
    let embedding = kind.train(graph, dim, budget, seed);
    let ids: Vec<u32> = roots.iter().map(|r| r.raw()).collect();
    embedding.features_for(&ids)
}

#[cfg(test)]
mod tests {
    use hsgf_data::{LoadConfig, LoadData, Scale};

    use super::*;

    fn small_graph() -> HetGraph {
        LoadData::generate(&LoadConfig::at_scale(Scale::Tiny)).graph
    }

    #[test]
    fn subgraph_pipeline_produces_rows_for_all_roots() {
        let graph = small_graph();
        let roots: Vec<NodeId> = graph.nodes().step_by(13).collect();
        let mut config = SubgraphFeatureConfig::default();
        config.census.emax = 3;
        config.census.dmax = dmax_from_percentile(&graph, Some(90.0));
        let m = subgraph_features(&graph, &roots, &config);
        assert_eq!(m.row_count(), roots.len());
        assert!(m.feature_count() > 0);
    }

    #[test]
    fn dmax_percentile_resolution() {
        let graph = small_graph();
        assert!(dmax_from_percentile(&graph, None).is_none());
        assert!(dmax_from_percentile(&graph, Some(100.0)).is_none());
        let d90 = dmax_from_percentile(&graph, Some(90.0)).unwrap();
        let d98 = dmax_from_percentile(&graph, Some(98.0)).unwrap();
        assert!(d90 <= d98);
    }

    #[test]
    fn embedding_features_have_expected_shape() {
        let graph = small_graph();
        let roots: Vec<NodeId> = graph.nodes().take(10).collect();
        let x = embedding_features(&graph, &roots, EmbeddingKind::DeepWalk, 16, 0.05, 1);
        assert_eq!(x.len(), 10 * 16);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
