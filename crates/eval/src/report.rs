//! Plain-text table and series rendering for experiment binaries.

use std::fmt::Write as _;

/// Renders an aligned text table: header row plus data rows, all columns
/// padded to their widest cell.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |cells: &[String], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    emit(header, &mut out);
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    emit(&sep, &mut out);
    for row in rows {
        emit(row, &mut out);
    }
    out
}

/// Formats `mean ± ci` compactly.
pub fn fmt_ci(mean: f64, ci: f64) -> String {
    if ci > 0.0 {
        format!("{mean:.3}±{ci:.3}")
    } else {
        format!("{mean:.3}")
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Renders an ASCII line series (one row per x value) — the text stand-in
/// for the paper's figures.
pub fn render_series(x_label: &str, xs: &[String], series: &[(String, Vec<String>)]) -> String {
    let mut header = vec![x_label.to_string()];
    header.extend(series.iter().map(|(name, _)| name.clone()));
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.clone()];
            row.extend(series.iter().map(|(_, ys)| ys[i].clone()));
            row
        })
        .collect();
    render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let out = render_table(
            &["name".into(), "value".into()],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{out}");
        assert!(out.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ci(0.5, 0.0), "0.500");
        assert_eq!(fmt_ci(0.5, 0.01), "0.500±0.010");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5µs");
    }

    #[test]
    fn series_layout() {
        let out = render_series(
            "x",
            &["10%".into(), "20%".into()],
            &[
                ("a".into(), vec!["0.1".into(), "0.2".into()]),
                ("b".into(), vec!["0.3".into(), "0.4".into()]),
            ],
        );
        assert!(out.contains("10%"));
        assert!(out.contains("0.4"));
        assert_eq!(out.lines().count(), 4);
    }
}
