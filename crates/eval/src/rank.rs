//! The rank-prediction evaluation (paper §4.2): institution relevance for
//! five conferences, NDCG@20, four regressors × six feature sets
//! (Fig. 3 + Table 1), and the discriminative-subgraph analysis (Fig. 4).
//!
//! Setup mirrors the paper: training rows are (institution, target year)
//! pairs for every year but the last, with features computed strictly from
//! earlier years; the last year is the test ranking. Subgraph features are
//! censuses rooted at the institution in the previous year's
//! conference subgraph (`emax = 6`, `dmax = ∞` in the paper; the edge
//! bound is configurable because it dominates runtime).

use std::collections::HashMap;

use hsgf_core::census::CensusConfig;
use hsgf_core::features::FeatureMatrix;
use hsgf_core::sequence::Encoding;
use hsgf_data::classic::classic_features;
use hsgf_data::mag::MagData;
use hsgf_embed::EmbeddingKind;
use hsgf_graph::rng::Rng;
use hsgf_ml::dataset::{Dataset, StandardScaler};
use hsgf_ml::forest::{ForestConfig, RandomForestRegressor};
use hsgf_ml::metrics::{mean_ci95, ndcg_at};
use hsgf_ml::tree::TreeConfig;
use hsgf_ml::RegressorKind;

use crate::features::SubgraphFeatureConfig;

/// The six feature sets of Fig. 3 / Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RankFeatureSet {
    /// Hand-engineered classic + linguistic features (§4.2.2).
    Classic,
    /// Heterogeneous subgraph features.
    Subgraph,
    /// Classic and subgraph features concatenated.
    Combined,
    /// A neural embedding baseline.
    Embedding(EmbeddingKind),
}

impl RankFeatureSet {
    /// All six sets in the paper's presentation order.
    pub const ALL: [RankFeatureSet; 6] = [
        RankFeatureSet::Classic,
        RankFeatureSet::Subgraph,
        RankFeatureSet::Combined,
        RankFeatureSet::Embedding(EmbeddingKind::Node2Vec),
        RankFeatureSet::Embedding(EmbeddingKind::DeepWalk),
        RankFeatureSet::Embedding(EmbeddingKind::Line),
    ];

    /// Display name matching Table 1 rows.
    pub fn name(self) -> &'static str {
        match self {
            RankFeatureSet::Classic => "classic",
            RankFeatureSet::Subgraph => "subgraph",
            RankFeatureSet::Combined => "combined",
            RankFeatureSet::Embedding(k) => k.name(),
        }
    }
}

/// Parameters of the rank-prediction evaluation.
#[derive(Clone, Debug)]
pub struct RankTaskConfig {
    /// Census edge bound (paper: 6; 4 keeps the default run fast).
    pub emax: usize,
    /// Minimum document frequency for subgraph features, as an absolute
    /// row count.
    pub min_df: u32,
    /// Cap on the subgraph vocabulary (most document-frequent features
    /// kept; unsupervised). Bounds forest/selection cost.
    pub max_features: Option<usize>,
    /// Embedding dimension (paper: 128).
    pub embed_dim: usize,
    /// Embedding walk/sample budget relative to paper defaults.
    pub embed_budget: f64,
    /// Trees in the random forest (paper: 300).
    pub forest_trees: usize,
    /// Use √d feature subsampling in forest splits (keeps the full
    /// subgraph vocabulary tractable; the paper's sklearn default scans
    /// all features).
    pub forest_sqrt_features: bool,
    /// Bootstrap repetitions for the 95% CIs of Fig. 3.
    pub bootstrap_repeats: usize,
    /// Census worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for RankTaskConfig {
    fn default() -> Self {
        RankTaskConfig {
            emax: 4,
            min_df: 3,
            max_features: Some(1024),
            embed_dim: 128,
            embed_budget: 0.2,
            forest_trees: 100,
            forest_sqrt_features: true,
            bootstrap_repeats: 3,
            threads: crate::features::default_threads(),
            seed: 0x4A8B,
        }
    }
}

/// Mean NDCG and CI half-width for one cell of Fig. 3.
#[derive(Clone, Copy, Debug)]
pub struct RankCell {
    /// Mean NDCG@20 over bootstrap repetitions.
    pub mean: f64,
    /// 95% CI half-width.
    pub ci95: f64,
}

/// Full Fig. 3 / Table 1 result grid.
pub struct RankResults {
    /// Conference names.
    pub conferences: Vec<String>,
    /// `ndcg[conference][regressor][feature_set]` aligned with
    /// [`RegressorKind::ALL`] and [`RankFeatureSet::ALL`].
    pub ndcg: Vec<Vec<Vec<RankCell>>>,
}

impl RankResults {
    /// Table 1: average NDCG over conferences per (regressor, feature set).
    pub fn table1(&self) -> Vec<Vec<f64>> {
        let nr = RegressorKind::ALL.len();
        let nf = RankFeatureSet::ALL.len();
        let mut out = vec![vec![0.0; nf]; nr];
        for conf in &self.ndcg {
            for (r, row) in conf.iter().enumerate() {
                for (f, cell) in row.iter().enumerate() {
                    out[r][f] += cell.mean;
                }
            }
        }
        let nc = self.ndcg.len().max(1) as f64;
        for row in &mut out {
            for v in row.iter_mut() {
                *v /= nc;
            }
        }
        out
    }
}

/// Per-conference feature tables for all target years, aligned row-wise as
/// `year_index * institutions + institution`.
struct ConferenceFeatures {
    /// Target years (ascending); the last is the test year.
    years: Vec<u32>,
    institutions: usize,
    /// Relevance targets per row.
    targets: Vec<f64>,
    /// Dense matrices per feature set (row-major, aligned with targets).
    sets: HashMap<RankFeatureSet, (Vec<f64>, usize)>,
    /// The subgraph feature matrix (kept for the importance analysis).
    subgraph_matrix: FeatureMatrix,
}

/// Extracts every feature set for one conference.
fn conference_features(
    data: &MagData,
    conference: usize,
    config: &RankTaskConfig,
) -> ConferenceFeatures {
    let first = data.config.first_year;
    let last = data.config.last_year;
    let years: Vec<u32> = (first + 1..=last).collect();
    let n_inst = data.config.institutions;

    let mut targets = Vec::with_capacity(years.len() * n_inst);
    for &y in &years {
        targets.extend(data.relevance(conference, y));
    }

    // Classic features, year by year.
    let d_classic = hsgf_data::classic::feature_names().len();
    let mut classic = Vec::with_capacity(years.len() * n_inst * d_classic);
    for &y in &years {
        classic.extend(classic_features(data, conference, y));
    }

    // Subgraph features: census of every institution in the previous
    // year's conference subgraph, all years sharing one vocabulary.
    let mut censuses = Vec::with_capacity(years.len() * n_inst);
    let mut roots = Vec::with_capacity(years.len() * n_inst);
    let sg_config = SubgraphFeatureConfig {
        census: CensusConfig::default().with_emax(config.emax),
        min_df: config.min_df,
        max_features: None,
        log1p: true,
        threads: config.threads,
    };
    let mut embeddings: HashMap<EmbeddingKind, Vec<f64>> = EmbeddingKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                Vec::with_capacity(years.len() * n_inst * config.embed_dim),
            )
        })
        .collect();
    for &y in &years {
        let (graph, inst_nodes) = data.rank_graph(conference, y - 1);
        let engine = hsgf_core::census::CensusEngine::new(&graph, sg_config.census.clone())
            .expect("valid config");
        let year_censuses =
            hsgf_core::parallel::extract_censuses(&engine, &inst_nodes, config.threads)
                .expect("valid roots");
        censuses.extend(year_censuses);
        roots.extend(inst_nodes.iter().copied());
        // Embedding features from the same year graph. Institution nodes
        // share ids 0..n_inst across years, and the seed is fixed, so the
        // per-year spaces are as aligned as the method permits.
        for &kind in &EmbeddingKind::ALL {
            let embedding = kind.train(&graph, config.embed_dim, config.embed_budget, config.seed);
            let ids: Vec<u32> = inst_nodes.iter().map(|n| n.raw()).collect();
            embeddings
                .get_mut(&kind)
                .expect("prefilled")
                .extend(embedding.features_for(&ids));
        }
    }
    let mut subgraph_matrix = FeatureMatrix::from_censuses(roots, censuses);
    if config.min_df > 1 {
        subgraph_matrix = subgraph_matrix.filter_min_df(config.min_df);
    }
    if let Some(k) = config.max_features {
        subgraph_matrix = subgraph_matrix.top_k_by_document_frequency(k);
    }
    subgraph_matrix = subgraph_matrix.log1p();
    let subgraph = subgraph_matrix.to_dense();
    let d_subgraph = subgraph_matrix.feature_count();

    // Combined = classic ⧺ subgraph.
    let rows = years.len() * n_inst;
    let d_combined = d_classic + d_subgraph;
    let mut combined = Vec::with_capacity(rows * d_combined);
    for r in 0..rows {
        combined.extend_from_slice(&classic[r * d_classic..(r + 1) * d_classic]);
        combined.extend_from_slice(&subgraph[r * d_subgraph..(r + 1) * d_subgraph]);
    }

    let mut sets: HashMap<RankFeatureSet, (Vec<f64>, usize)> = HashMap::new();
    sets.insert(RankFeatureSet::Classic, (classic, d_classic));
    sets.insert(RankFeatureSet::Subgraph, (subgraph, d_subgraph));
    sets.insert(RankFeatureSet::Combined, (combined, d_combined));
    for (kind, x) in embeddings {
        sets.insert(RankFeatureSet::Embedding(kind), (x, config.embed_dim));
    }
    ConferenceFeatures {
        years,
        institutions: n_inst,
        targets,
        sets,
        subgraph_matrix,
    }
}

/// Fits `kind` on (optionally bootstrap-resampled) training rows and
/// returns NDCG@20 on the test year.
#[allow(clippy::too_many_arguments)]
fn fit_and_score(
    kind: RegressorKind,
    train: &Dataset,
    test: &Dataset,
    config: &RankTaskConfig,
    rng: &mut Rng,
    bootstrap: bool,
) -> f64 {
    let train_view: Dataset = if bootstrap {
        let n = train.len();
        let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        train.select_rows(&rows)
    } else {
        train.clone()
    };
    let preds = match kind {
        RegressorKind::RandomForest => {
            // Custom forest parameters (tree count / feature subsampling)
            // so the full subgraph vocabulary stays tractable.
            let (train_sel, test_sel) = (train_view, test.clone());
            let max_features = if config.forest_sqrt_features {
                Some((train_sel.dim() as f64).sqrt().ceil() as usize)
            } else {
                None
            };
            let forest = RandomForestRegressor::fit(
                &train_sel,
                &ForestConfig {
                    n_estimators: config.forest_trees,
                    tree: TreeConfig {
                        max_features,
                        ..TreeConfig::default()
                    },
                    bootstrap: true,
                    seed: rng.next_u64(),
                },
            );
            forest.predict(&test_sel)
        }
        other => other.fit_predict(&train_view, test, rng.next_u64()),
    };
    if preds.iter().any(|p| !p.is_finite()) {
        // A numerically degenerate fit (e.g. evidence maximization hitting
        // a perfect interpolation) must not poison the grid: rank such
        // predictions last and say so.
        eprintln!(
            "warning: {} produced non-finite predictions; ranking them last",
            kind.name()
        );
        let sanitized: Vec<f64> = preds
            .iter()
            .map(|p| if p.is_finite() { *p } else { f64::NEG_INFINITY })
            .collect();
        return ndcg_at(&sanitized, &test.y, 20);
    }
    ndcg_at(&preds, &test.y, 20)
}

/// Runs the full Fig. 3 / Table 1 grid.
pub fn run_rank_task(data: &MagData, config: &RankTaskConfig) -> RankResults {
    let mut ndcg = Vec::new();
    for conference in 0..data.config.conferences.len() {
        let features = conference_features(data, conference, config);
        let rows = features.years.len() * features.institutions;
        let test_start = rows - features.institutions;
        let mut conf_grid = vec![
            vec![
                RankCell {
                    mean: 0.0,
                    ci95: 0.0
                };
                RankFeatureSet::ALL.len()
            ];
            RegressorKind::ALL.len()
        ];
        for (fi, &set) in RankFeatureSet::ALL.iter().enumerate() {
            let (x, d) = features.sets.get(&set).expect("all sets extracted");
            let full = Dataset::new(x.clone(), rows, *d, features.targets.clone());
            let train_rows: Vec<usize> = (0..test_start).collect();
            let test_rows: Vec<usize> = (test_start..rows).collect();
            let train_raw = full.select_rows(&train_rows);
            let test_raw = full.select_rows(&test_rows);
            // Standardize on the training years only.
            let scaler = StandardScaler::fit(&train_raw.x);
            let train = Dataset {
                x: scaler.transform(&train_raw.x),
                y: train_raw.y,
            };
            let test = Dataset {
                x: scaler.transform(&test_raw.x),
                y: test_raw.y,
            };
            for (ri, &kind) in RegressorKind::ALL.iter().enumerate() {
                let mut rng = Rng::from_seed(
                    config.seed ^ ((conference as u64) << 32) ^ ((ri as u64) << 16) ^ fi as u64,
                );
                let scores: Vec<f64> = (0..config.bootstrap_repeats.max(1))
                    .map(|rep| fit_and_score(kind, &train, &test, config, &mut rng, rep > 0))
                    .collect();
                let (mean, ci95) = mean_ci95(&scores);
                conf_grid[ri][fi] = RankCell { mean, ci95 };
            }
        }
        ndcg.push(conf_grid);
    }
    RankResults {
        conferences: data.config.conferences.clone(),
        ndcg,
    }
}

/// One discriminative subgraph of Fig. 4.
pub struct DiscriminativeSubgraph {
    /// The feature's canonical encoding.
    pub encoding: Encoding,
    /// Paper-style rendering using the graph's label names.
    pub rendered: String,
    /// Random-forest importance (mean decrease in impurity).
    pub importance: f64,
}

/// Fig. 4: the `top_k` most discriminative subgraph features for one
/// conference, by random-forest importance on the training years.
pub fn discriminative_subgraphs(
    data: &MagData,
    conference: usize,
    config: &RankTaskConfig,
    top_k: usize,
) -> Vec<DiscriminativeSubgraph> {
    let features = conference_features(data, conference, config);
    let rows = features.years.len() * features.institutions;
    let test_start = rows - features.institutions;
    let (x, d) = features
        .sets
        .get(&RankFeatureSet::Subgraph)
        .expect("extracted");
    let full = Dataset::new(x.clone(), rows, *d, features.targets.clone());
    let train_rows: Vec<usize> = (0..test_start).collect();
    let train = full.select_rows(&train_rows);
    let max_features = if config.forest_sqrt_features {
        Some((train.dim() as f64).sqrt().ceil() as usize)
    } else {
        None
    };
    let forest = RandomForestRegressor::fit(
        &train,
        &ForestConfig {
            n_estimators: config.forest_trees.max(300),
            tree: TreeConfig {
                max_features,
                ..TreeConfig::default()
            },
            bootstrap: true,
            seed: config.seed,
        },
    );
    let importances = forest.feature_importances();
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .expect("finite")
            .then(a.cmp(&b))
    });
    let labels =
        hsgf_graph::LabelSet::from_names(hsgf_data::mag::MAG_RANK_LABELS).expect("static names");
    order
        .into_iter()
        .take(top_k)
        .map(|idx| {
            let encoding = features.subgraph_matrix.space().key(idx as u32).clone();
            let rendered = encoding.render(&labels);
            DiscriminativeSubgraph {
                encoding,
                rendered,
                importance: importances[idx],
            }
        })
        .collect()
}

/// Convenience: a tiny helper for the top-k test below and the binaries —
/// ranks feature-set scores of one regressor row.
pub fn best_feature_set(row: &[RankCell]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.mean.partial_cmp(&b.1.mean).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use hsgf_data::mag::MagConfig;
    use hsgf_data::Scale;

    use super::*;

    fn tiny_setup() -> (MagData, RankTaskConfig) {
        let mut mag = MagConfig::at_scale(Scale::Tiny);
        mag.conferences.truncate(1);
        mag.first_year = 2010;
        mag.last_year = 2013;
        let data = MagData::generate(&mag);
        let config = RankTaskConfig {
            emax: 3,
            embed_dim: 8,
            embed_budget: 0.02,
            forest_trees: 15,
            bootstrap_repeats: 2,
            threads: 2,
            ..RankTaskConfig::default()
        };
        (data, config)
    }

    #[test]
    fn grid_has_full_shape_and_valid_scores() {
        let (data, config) = tiny_setup();
        let results = run_rank_task(&data, &config);
        assert_eq!(results.conferences.len(), 1);
        assert_eq!(results.ndcg[0].len(), RegressorKind::ALL.len());
        for row in &results.ndcg[0] {
            assert_eq!(row.len(), RankFeatureSet::ALL.len());
            for cell in row {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&cell.mean),
                    "NDCG {} out of range",
                    cell.mean
                );
            }
        }
        let table = results.table1();
        assert_eq!(table.len(), RegressorKind::ALL.len());
        assert_eq!(table[0].len(), RankFeatureSet::ALL.len());
    }

    #[test]
    fn informative_features_predict_well_at_tiny_scale() {
        // At tiny scale (18 institutions) the NDCG@20 covers the whole
        // ranking and cross-feature orderings are noise; assert only that
        // history-bearing features predict decently. The full-scale shape
        // comparison lives in the exp_rank binary / EXPERIMENTS.md.
        let (data, config) = tiny_setup();
        let results = run_rank_task(&data, &config);
        let ridge_row = &results.ndcg[0][3];
        let classic = ridge_row[0].mean;
        let subgraph = ridge_row[1].mean;
        assert!(classic > 0.5, "classic NDCG {classic}");
        assert!(subgraph > 0.5, "subgraph NDCG {subgraph}");
    }

    #[test]
    fn importance_analysis_returns_rendered_subgraphs() {
        let (data, config) = tiny_setup();
        let top = discriminative_subgraphs(&data, 0, &config, 2);
        assert_eq!(top.len(), 2);
        for d in &top {
            assert!(d.importance >= 0.0);
            assert!(!d.rendered.is_empty());
            assert!(d.encoding.node_count() >= 1);
        }
        // Descending importance.
        assert!(top[0].importance >= top[1].importance);
    }

    #[test]
    fn best_feature_set_picks_argmax() {
        let row = vec![
            RankCell {
                mean: 0.2,
                ci95: 0.0,
            },
            RankCell {
                mean: 0.9,
                ci95: 0.0,
            },
            RankCell {
                mean: 0.5,
                ci95: 0.0,
            },
        ];
        assert_eq!(best_feature_set(&row), 1);
    }
}
