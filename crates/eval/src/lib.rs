//! Experiment harness reproducing every table and figure of the HSGF
//! evaluation (paper §4).
//!
//! | Paper artifact | Module entry point |
//! |---|---|
//! | Fig. 3 + Table 1 (rank prediction) | [`rank::run_rank_task`] |
//! | Fig. 4 (discriminative subgraphs) | [`rank::discriminative_subgraphs`] |
//! | Table 2 (`dmax` stability) | [`label::dmax_sweep`] |
//! | Table 3 (extraction runtime) | [`label::runtime_report`] |
//! | Fig. 5A–C (training-size sweep) | [`label::training_size_sweep`] |
//! | Fig. 5D–F (label removal) | [`label::label_removal_sweep`] |
//!
//! The binaries in `hsgf-bench` wire these to the synthetic datasets and
//! print the paper's tables; see EXPERIMENTS.md for paper-vs-measured.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod features;
pub mod label;
pub mod rank;
pub mod report;

pub use features::{FeatureFamily, SubgraphFeatureConfig};
pub use label::{LabelTaskConfig, RuntimeReport};
pub use rank::{RankFeatureSet, RankResults, RankTaskConfig};
