//! The label-prediction evaluation (paper §4.3): Fig. 5A–C training-size
//! sweeps, Fig. 5D–F label-removal sweeps, Table 2 `dmax` stability, and
//! Table 3 extraction runtimes.

use std::time::Instant;

use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_embed::EmbeddingKind;
use hsgf_graph::rng::Rng;
use hsgf_graph::{HetGraph, Label, LabelSet, NodeId};
use hsgf_ml::dataset::{Dataset, StandardScaler};
use hsgf_ml::logreg::{LogisticConfig, OneVsAllClassifier};
use hsgf_ml::metrics::{macro_f1, mean_ci95};

use crate::features::{
    dmax_from_percentile, embedding_features, subgraph_features, FeatureFamily,
    SubgraphFeatureConfig,
};

/// Parameters of one label-prediction evaluation.
#[derive(Clone, Debug)]
pub struct LabelTaskConfig {
    /// Nodes sampled per label (paper: 250).
    pub nodes_per_label: usize,
    /// Census edge bound (paper: 5).
    pub emax: usize,
    /// Hub-cutoff percentile; `None` = ∞ (paper uses the 90% mark).
    pub dmax_percentile: Option<f64>,
    /// Use the directed characteristic sequence (the §5 extension).
    pub directed: bool,
    /// Cap on the subgraph vocabulary (most document-frequent features
    /// kept). Keeps single-core classifier fits fast; `None` = unlimited.
    pub max_features: Option<usize>,
    /// Exclude sampled roots whose degree exceeds this percentile of the
    /// degree distribution (paper §4.3.5: "prediction performance does not
    /// decrease when we extract features only up to the 95% mark").
    /// `None` keeps every sampled root, including extreme hubs.
    pub root_cap_percentile: Option<f64>,
    /// Embedding dimension (paper: 128).
    pub embed_dim: usize,
    /// Embedding walk/sample budget relative to paper defaults.
    pub embed_budget: f64,
    /// Random re-splits per measurement (paper: 100).
    pub repeats: usize,
    /// Worker threads for the census.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for LabelTaskConfig {
    fn default() -> Self {
        LabelTaskConfig {
            nodes_per_label: 250,
            emax: 5,
            dmax_percentile: Some(90.0),
            directed: false,
            max_features: Some(256),
            root_cap_percentile: Some(99.0),
            embed_dim: 128,
            embed_budget: 0.25,
            repeats: 20,
            threads: crate::features::default_threads(),
            seed: 0xE7A1,
        }
    }
}

/// Samples up to `per_label` nodes of every label, returning node ids and
/// their class indices (the prediction targets). `degree_cap` excludes
/// nodes above the given degree (the §4.3.5 sampling strategy).
pub fn sample_labelled_nodes_capped(
    graph: &HetGraph,
    per_label: usize,
    degree_cap: Option<u32>,
    seed: u64,
) -> (Vec<NodeId>, Vec<usize>) {
    let mut rng = Rng::from_seed(seed);
    let mut nodes = Vec::new();
    let mut classes = Vec::new();
    for label in graph.labels().labels() {
        let mut pool: Vec<NodeId> = graph
            .nodes_with_label(label)
            .filter(|&v| degree_cap.map_or(true, |cap| graph.degree(v) as u32 <= cap))
            .collect();
        rng.shuffle(&mut pool);
        pool.truncate(per_label);
        for v in pool {
            nodes.push(v);
            classes.push(label.index());
        }
    }
    (nodes, classes)
}

/// Samples up to `per_label` nodes of every label with no degree cap.
pub fn sample_labelled_nodes(
    graph: &HetGraph,
    per_label: usize,
    seed: u64,
) -> (Vec<NodeId>, Vec<usize>) {
    sample_labelled_nodes_capped(graph, per_label, None, seed)
}

/// The task's root sample under its configuration (degree cap resolved
/// against this graph's distribution).
pub fn task_sample(graph: &HetGraph, config: &LabelTaskConfig) -> (Vec<NodeId>, Vec<usize>) {
    let cap = config
        .root_cap_percentile
        .filter(|&p| p < 100.0)
        .map(|p| hsgf_graph::DegreeStats::of(graph).degree_at_percentile(p));
    sample_labelled_nodes_capped(graph, config.nodes_per_label, cap, config.seed)
}

/// Extracts the feature matrix of one family for the sampled nodes.
/// Subgraph features mask the root label (paper §4.3.2) and standardize
/// after log scaling; embedding features are used as-is.
pub fn extract_label_features(
    graph: &HetGraph,
    nodes: &[NodeId],
    family: FeatureFamily,
    config: &LabelTaskConfig,
) -> Dataset {
    let x = match family {
        FeatureFamily::Subgraph => {
            let mut sg = SubgraphFeatureConfig {
                threads: config.threads,
                max_features: config.max_features,
                ..SubgraphFeatureConfig::default()
            };
            sg.census = CensusConfig::default()
                .with_emax(config.emax)
                .with_dmax(dmax_from_percentile(graph, config.dmax_percentile))
                .with_mask_root_label(true)
                .with_directed(config.directed);
            let matrix = subgraph_features(graph, nodes, &sg);
            let dense = matrix.to_dense();
            let d = matrix.feature_count();
            return standardized(dense, nodes.len(), d);
        }
        FeatureFamily::Embedding(kind) => embedding_features(
            graph,
            nodes,
            kind,
            config.embed_dim,
            config.embed_budget,
            config.seed,
        ),
    };
    let d = x.len() / nodes.len().max(1);
    Dataset::new(x, nodes.len(), d, vec![0.0; nodes.len()])
}

fn standardized(x: Vec<f64>, n: usize, d: usize) -> Dataset {
    let data = Dataset::new(x, n, d, vec![0.0; n]);
    let (_, t) = StandardScaler::fit_transform(&data.x);
    Dataset { x: t, y: data.y }
}

/// One measured point: mean Macro-F1 and its 95% CI half-width over the
/// repeated random splits.
#[derive(Clone, Copy, Debug)]
pub struct F1Point {
    /// Mean Macro-F1.
    pub mean: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
}

/// Trains one-vs-all logistic regression on `train_fraction` of the rows
/// and evaluates Macro-F1 on the rest, repeated over reshuffles, at the
/// default regularization strength (`C = 1`).
pub fn evaluate_classification(
    features: &Dataset,
    classes: &[usize],
    train_fraction: f64,
    repeats: usize,
    seed: u64,
) -> F1Point {
    evaluate_classification_with(features, classes, train_fraction, repeats, seed, 1.0)
}

/// As [`evaluate_classification`], at an explicit inverse regularization
/// strength `c`.
pub fn evaluate_classification_with(
    features: &Dataset,
    classes: &[usize],
    train_fraction: f64,
    repeats: usize,
    seed: u64,
    c: f64,
) -> F1Point {
    assert_eq!(features.len(), classes.len());
    let n = features.len();
    let mut scores = Vec::with_capacity(repeats);
    let mut rng = Rng::from_seed(seed);
    for _ in 0..repeats.max(1) {
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let cut = ((n as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, n - 1);
        let (train_rows, test_rows) = order.split_at(cut);
        let train_x = features.select_rows(train_rows);
        let test_x = features.select_rows(test_rows);
        let train_y: Vec<usize> = train_rows.iter().map(|&i| classes[i]).collect();
        let test_y: Vec<usize> = test_rows.iter().map(|&i| classes[i]).collect();
        let clf = OneVsAllClassifier::fit(
            &train_x,
            &train_y,
            &LogisticConfig {
                c,
                max_iter: 200,
                tol: 1e-4,
            },
        );
        let preds = clf.predict(&test_x);
        scores.push(macro_f1(&preds, &test_y));
    }
    let (mean, ci95) = mean_ci95(&scores);
    F1Point { mean, ci95 }
}

/// The paper's full §4.3.3 protocol: tune the regularization strength by
/// k-fold cross-validation on one training split, then evaluate at the
/// chosen strength over repeated re-splits. Returns the tuned `C` and the
/// resulting score.
pub fn evaluate_classification_tuned(
    features: &Dataset,
    classes: &[usize],
    train_fraction: f64,
    repeats: usize,
    seed: u64,
) -> (f64, F1Point) {
    // Carve a single training split for tuning so the tuning never sees
    // the evaluation test rows of the first repeat.
    let n = features.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::from_seed(seed ^ 0x7u64);
    rng.shuffle(&mut order);
    let cut = (((n as f64) * train_fraction).round() as usize).clamp(2, n - 1);
    let tune_rows = &order[..cut];
    let tune_x = features.select_rows(tune_rows);
    let tune_y: Vec<usize> = tune_rows.iter().map(|&i| classes[i]).collect();
    let folds = 3.min(cut);
    let c = hsgf_ml::crossval::tune_logistic_c(
        &tune_x,
        &tune_y,
        &hsgf_ml::crossval::DEFAULT_C_GRID,
        folds.max(2),
        seed,
    );
    let point = evaluate_classification_with(features, classes, train_fraction, repeats, seed, c);
    (c, point)
}

/// Fig. 5A–C: Macro-F1 per feature family per training fraction.
pub struct TrainingSizeSweep {
    /// Training fractions measured (e.g. 0.1 ..= 0.9).
    pub fractions: Vec<f64>,
    /// `results[family][fraction_idx]`.
    pub results: Vec<(FeatureFamily, Vec<F1Point>)>,
}

/// Runs the Fig. 5A–C sweep on one dataset.
pub fn training_size_sweep(
    graph: &HetGraph,
    config: &LabelTaskConfig,
    fractions: &[f64],
    families: &[FeatureFamily],
) -> TrainingSizeSweep {
    let (nodes, classes) = task_sample(graph, config);
    let results = families
        .iter()
        .map(|&family| {
            let features = extract_label_features(graph, &nodes, family, config);
            let points = fractions
                .iter()
                .map(|&f| {
                    evaluate_classification(&features, &classes, f, config.repeats, config.seed)
                })
                .collect();
            (family, points)
        })
        .collect();
    TrainingSizeSweep {
        fractions: fractions.to_vec(),
        results,
    }
}

/// Returns a copy of `graph` with a fraction of node labels replaced by an
/// artificial `unlabeled` label (paper Fig. 5D–F). The sampled nodes keep
/// their *true* labels as prediction targets; only the graph's label
/// information degrades.
pub fn remove_labels(graph: &HetGraph, fraction: f64, seed: u64) -> HetGraph {
    let mut rng = Rng::from_seed(seed);
    let mut labels = LabelSet::new();
    for (_, name) in graph.labels().iter() {
        labels.intern(name).expect("capacity");
    }
    let unlabeled = labels.intern("unlabeled").expect("capacity");
    let node_labels: Vec<Label> = graph
        .nodes()
        .map(|v| {
            if rng.gen_bool(fraction) {
                unlabeled
            } else {
                graph.label(v)
            }
        })
        .collect();
    graph
        .relabeled(labels, node_labels)
        .expect("labels in range")
}

/// Fig. 5D–F: Macro-F1 per family per removed-label fraction, at a fixed
/// 90% training size.
pub struct LabelRemovalSweep {
    /// Removed fractions measured (e.g. 0.0 ..= 0.75).
    pub fractions: Vec<f64>,
    /// `results[family][fraction_idx]`.
    pub results: Vec<(FeatureFamily, Vec<F1Point>)>,
}

/// Runs the Fig. 5D–F sweep. Embedding features are invariant to label
/// removal (they ignore labels), so they are computed once.
pub fn label_removal_sweep(
    graph: &HetGraph,
    config: &LabelTaskConfig,
    fractions: &[f64],
    families: &[FeatureFamily],
) -> LabelRemovalSweep {
    let (nodes, classes) = task_sample(graph, config);
    let train_fraction = 0.9;
    let results = families
        .iter()
        .map(|&family| {
            let points: Vec<F1Point> = match family {
                FeatureFamily::Subgraph => fractions
                    .iter()
                    .map(|&f| {
                        let degraded = remove_labels(graph, f, config.seed ^ 0xDE1);
                        let features = extract_label_features(&degraded, &nodes, family, config);
                        evaluate_classification(
                            &features,
                            &classes,
                            train_fraction,
                            config.repeats,
                            config.seed,
                        )
                    })
                    .collect(),
                FeatureFamily::Embedding(_) => {
                    let features = extract_label_features(graph, &nodes, family, config);
                    let point = evaluate_classification(
                        &features,
                        &classes,
                        train_fraction,
                        config.repeats,
                        config.seed,
                    );
                    vec![point; fractions.len()]
                }
            };
            (family, points)
        })
        .collect();
    LabelRemovalSweep {
        fractions: fractions.to_vec(),
        results,
    }
}

/// Table 2: Macro-F1 of subgraph features per `dmax` percentile.
pub fn dmax_sweep(
    graph: &HetGraph,
    config: &LabelTaskConfig,
    percentiles: &[f64],
) -> Vec<(f64, F1Point)> {
    let (nodes, classes) = task_sample(graph, config);
    percentiles
        .iter()
        .map(|&p| {
            let mut c = config.clone();
            c.dmax_percentile = if p >= 100.0 { None } else { Some(p) };
            let features = extract_label_features(graph, &nodes, FeatureFamily::Subgraph, &c);
            let point =
                evaluate_classification(&features, &classes, 0.9, config.repeats, config.seed);
            (p, point)
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for this module's tests.
    use hsgf_data::{ImdbConfig, ImdbData, Scale};

    pub fn tiny_graph_for_tuning() -> hsgf_graph::HetGraph {
        ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny)).graph
    }
}

/// Table 3 row: per-node subgraph extraction times plus per-node
/// amortized embedding times.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Mean subgraph extraction seconds per node.
    pub subgraph_mean: f64,
    /// 75th / 90th / 95th percentile and max, in seconds.
    pub subgraph_p75: f64,
    /// 90th percentile.
    pub subgraph_p90: f64,
    /// 95th percentile.
    pub subgraph_p95: f64,
    /// Maximum.
    pub subgraph_max: f64,
    /// `(name, amortized seconds per node)` for each embedding baseline.
    pub embeddings: Vec<(&'static str, f64)>,
}

/// Measures Table 3 on one dataset: times each sampled node's census
/// single-threaded and amortizes whole-graph embedding training over all
/// nodes (the embeddings are trained globally, as in the paper).
pub fn runtime_report(graph: &HetGraph, config: &LabelTaskConfig) -> RuntimeReport {
    let (nodes, _) = task_sample(graph, config);
    let census_config = CensusConfig::default()
        .with_emax(config.emax)
        .with_dmax(dmax_from_percentile(graph, config.dmax_percentile))
        .with_mask_root_label(true);
    let engine = CensusEngine::new(graph, census_config).expect("valid config");
    let mut scratch = engine.make_scratch();
    let mut times: Vec<f64> = nodes
        .iter()
        .map(|&v| {
            // hsgf-lint: allow(det-wallclock, the runtime report exists to measure wall time; its numbers are documented as non-deterministic)
            let start = Instant::now();
            let _ = engine.census_hashes(v, &mut scratch).expect("valid root");
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let pct = |p: f64| -> f64 {
        if times.is_empty() {
            return 0.0;
        }
        let idx = ((times.len() as f64 * p).ceil() as usize).clamp(1, times.len());
        times[idx - 1]
    };
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    let embeddings = EmbeddingKind::ALL
        .iter()
        .map(|&kind| {
            // hsgf-lint: allow(det-wallclock, the runtime report exists to measure wall time; its numbers are documented as non-deterministic)
            let start = Instant::now();
            let _ = kind.train(graph, config.embed_dim, config.embed_budget, config.seed);
            let total = start.elapsed().as_secs_f64();
            (kind.name(), total / graph.node_count().max(1) as f64)
        })
        .collect();
    RuntimeReport {
        subgraph_mean: mean,
        subgraph_p75: pct(0.75),
        subgraph_p90: pct(0.90),
        subgraph_p95: pct(0.95),
        subgraph_max: times.last().copied().unwrap_or(0.0),
        embeddings,
    }
}

#[cfg(test)]
mod tests {
    use hsgf_data::{ImdbConfig, ImdbData, Scale};

    #[test]
    fn tuned_evaluation_returns_grid_c() {
        let graph = super::tests_support::tiny_graph_for_tuning();
        let config = LabelTaskConfig {
            nodes_per_label: 12,
            emax: 2,
            repeats: 2,
            ..LabelTaskConfig::default()
        };
        let (nodes, classes) = task_sample(&graph, &config);
        let features = extract_label_features(&graph, &nodes, FeatureFamily::Subgraph, &config);
        let (c, point) = evaluate_classification_tuned(&features, &classes, 0.7, 2, 3);
        assert!(hsgf_ml::crossval::DEFAULT_C_GRID.contains(&c));
        assert!((0.0..=1.0).contains(&point.mean));
    }

    use super::*;

    fn tiny_config() -> LabelTaskConfig {
        LabelTaskConfig {
            nodes_per_label: 15,
            emax: 3,
            embed_dim: 8,
            embed_budget: 0.02,
            repeats: 3,
            threads: 2,
            ..LabelTaskConfig::default()
        }
    }

    fn tiny_graph() -> HetGraph {
        ImdbData::generate(&ImdbConfig::at_scale(Scale::Tiny)).graph
    }

    #[test]
    fn sampling_is_stratified_and_capped() {
        let graph = tiny_graph();
        let (nodes, classes) = sample_labelled_nodes(&graph, 10, 1);
        for label in 0..graph.label_count() {
            let count = classes.iter().filter(|&&c| c == label).count();
            let available = graph.label_histogram()[label];
            assert_eq!(count, available.min(10), "label {label}");
        }
        for (&v, &c) in nodes.iter().zip(&classes) {
            assert_eq!(graph.label(v).index(), c);
        }
    }

    #[test]
    fn subgraph_features_beat_chance_on_imdb_tiny() {
        let graph = tiny_graph();
        let config = tiny_config();
        let (nodes, classes) = sample_labelled_nodes(&graph, config.nodes_per_label, config.seed);
        let features = extract_label_features(&graph, &nodes, FeatureFamily::Subgraph, &config);
        let point = evaluate_classification(&features, &classes, 0.7, 5, 3);
        // 6 classes ⇒ chance macro-F1 ≈ 0.17.
        assert!(point.mean > 0.3, "macro F1 {}", point.mean);
    }

    #[test]
    fn remove_labels_adds_unlabeled_class() {
        let graph = tiny_graph();
        let degraded = remove_labels(&graph, 0.5, 7);
        assert_eq!(degraded.label_count(), graph.label_count() + 1);
        let unlabeled = degraded.label_count() - 1;
        let hist = degraded.label_histogram();
        let removed = hist[unlabeled];
        let n = graph.node_count();
        assert!(
            removed > n / 4 && removed < 3 * n / 4,
            "removed {removed} of {n}"
        );
        assert_eq!(degraded.edge_count(), graph.edge_count());
    }

    #[test]
    fn remove_labels_zero_fraction_is_identity_modulo_alphabet() {
        let graph = tiny_graph();
        let degraded = remove_labels(&graph, 0.0, 7);
        let hist = degraded.label_histogram();
        assert_eq!(hist[degraded.label_count() - 1], 0);
        for v in graph.nodes() {
            assert_eq!(graph.label(v).index(), degraded.label(v).index());
        }
    }

    #[test]
    fn dmax_sweep_produces_a_point_per_percentile() {
        let graph = tiny_graph();
        let config = tiny_config();
        let rows = dmax_sweep(&graph, &config, &[90.0, 100.0]);
        assert_eq!(rows.len(), 2);
        for (_, p) in rows {
            assert!(p.mean >= 0.0 && p.mean <= 1.0);
        }
    }

    #[test]
    fn runtime_report_is_ordered() {
        let graph = tiny_graph();
        let config = tiny_config();
        let report = runtime_report(&graph, &config);
        assert!(report.subgraph_p75 <= report.subgraph_p90);
        assert!(report.subgraph_p90 <= report.subgraph_p95);
        assert!(report.subgraph_p95 <= report.subgraph_max);
        assert_eq!(report.embeddings.len(), 3);
    }
}
