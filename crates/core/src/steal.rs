//! Work-stealing scheduler for the by-node census (paper §3.2, Table 3).
//!
//! The atomic-cursor scheduler in [`crate::parallel`] balances *whole roots*
//! across workers. That is fine when per-root costs are comparable, but the
//! census cost of a root follows the graph's (skewed) degree distribution:
//! one hub root can dominate an entire run while every other worker sits
//! idle (the limiting factor both Rossi et al. and Cleveland et al. report
//! for parallel heterogeneous subgraph counting). This module adds the
//! missing half of the answer:
//!
//! * a **work-stealing pool** — one deque per worker in the Chase–Lev
//!   style (LIFO local pop for cache locality, FIFO steal so thieves take
//!   the oldest — and with intra-root splitting, the largest — tasks) with
//!   condvar parking for idle workers and steal/park counters for
//!   observability;
//! * **intra-root task splitting** (implemented by the callers in
//!   [`crate::parallel`] and [`crate::supervisor`]) — a hub root's census
//!   is split into stealable shards over its top-level DFS candidates, so
//!   the pool can spread a single pathological root over every idle worker.
//!
//! The workspace is hermetic (`#![forbid(unsafe_code)]`, std only), so the
//! deques are small mutex-guarded `VecDeque`s rather than lock-free arrays.
//! Census tasks are coarse (one root or one root-shard), so the lock is
//! taken once per task, not per subgraph — the scheduler overhead is noise
//! next to the enumeration work it distributes.
//!
//! # Scheduling protocol
//!
//! 1. A worker pops from the **back** of its own deque (LIFO).
//! 2. On empty, it scans the other deques round-robin from its right-hand
//!    neighbour and steals from the **front** (FIFO).
//! 3. On a fully empty scan it parks on a condvar. Spawns bump an epoch
//!    under the same lock, so a task published between the scan and the
//!    park is never lost; the final task completion wakes every parked
//!    worker for shutdown.
//!
//! Determinism: the pool schedules *which worker* runs a task, never *what
//! the task computes*. Every consumer in this crate keys results by root
//! (and shard) index and merges shard results with commutative sums, so the
//! assembled output is bit-for-bit identical to the cursor scheduler and to
//! the sequential path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::obs::{CounterSet, Metric, Obs};

/// Which scheduler [`crate::parallel`] and [`crate::supervisor`] use to
/// distribute per-root census work across threads.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The original atomic-cursor scheduler: workers claim whole roots from
    /// a shared counter. Lowest overhead; no defence against one hub root
    /// dominating the run.
    #[default]
    Cursor,
    /// Per-worker deques with LIFO local pop, FIFO stealing, parked idle
    /// workers, and intra-root splitting of hub roots into stealable
    /// shards. Output is bit-for-bit identical to [`SchedulerKind::Cursor`].
    Stealing,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Cursor => write!(f, "cursor"),
            SchedulerKind::Stealing => write!(f, "stealing"),
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cursor" => Ok(SchedulerKind::Cursor),
            "stealing" => Ok(SchedulerKind::Stealing),
            other => Err(format!(
                "unknown scheduler {other:?}; expected cursor or stealing"
            )),
        }
    }
}

/// Observability counters of one stealing-scheduler run — where the
/// balancing work went. All counts are totals across workers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Tasks executed (roots plus shards).
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Times a worker parked after a fully empty scan.
    pub parks: u64,
    /// Hub roots split into stealable shards.
    pub splits: u64,
}

impl std::fmt::Display for StealStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tasks, {} steals, {} parks, {} splits",
            self.tasks, self.steals, self.parks, self.splits
        )
    }
}

/// Park/wake bookkeeping guarded by the pool's mutex.
struct PoolSync {
    /// Bumped on every spawn; parked-worker rescan trigger.
    epoch: u64,
    /// Set when the last pending task completes.
    done: bool,
}

/// The work-stealing pool: per-worker deques plus shutdown accounting.
/// Tasks are plain values; executing a task may [`StealPool::spawn`] more
/// (intra-root shards).
pub(crate) struct StealPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    sync: Mutex<PoolSync>,
    wakeup: Condvar,
    /// Tasks spawned but not yet completed.
    pending: AtomicUsize,
    /// Scheduler counters, in registry storage ([`crate::obs::Metric`]
    /// indexed) so a run can merge them straight into an [`Obs`] handle —
    /// the pool keeps no bookkeeping of its own.
    counters: CounterSet,
}

/// Recovers a poisoned deque guard. Task values are plain data and every
/// panic in task *execution* is caught by the census isolation boundary
/// before it can reach a deque lock, so a poisoned lock only means some
/// worker died mid-push — the queue contents are still well-formed.
fn lock_deque<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T: Send> StealPool<T> {
    /// Creates a pool for `workers` deques with the initial tasks dealt
    /// round-robin (task `i` to deque `i % workers`), so the FIFO steal end
    /// of every deque starts with the earliest — typically the heaviest,
    /// when callers order hubs first — work.
    pub(crate) fn new(workers: usize, initial: Vec<T>) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        let pending = initial.len();
        for (i, task) in initial.into_iter().enumerate() {
            deques[i % workers].push_back(task);
        }
        StealPool {
            deques: deques.into_iter().map(Mutex::new).collect(),
            sync: Mutex::new(PoolSync {
                epoch: 0,
                done: pending == 0,
            }),
            wakeup: Condvar::new(),
            pending: AtomicUsize::new(pending),
            counters: CounterSet::new(),
        }
    }

    /// Publishes a new task onto `worker`'s deque (the spawning worker's
    /// own, so the local LIFO pop finds it immediately and thieves see it
    /// at the steal end last). Wakes one parked worker.
    pub(crate) fn spawn(&self, worker: usize, task: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock_deque(&self.deques[worker]).push_back(task);
        let mut sync = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        sync.epoch += 1;
        drop(sync);
        self.wakeup.notify_one();
    }

    /// Records that a hub root was split into shards (observability only).
    pub(crate) fn note_split(&self) {
        self.counters.incr(Metric::StealSplits);
    }

    /// Marks one task finished; the last completion releases every parked
    /// worker. Must be called exactly once per executed task.
    pub(crate) fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut sync = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
            sync.done = true;
            drop(sync);
            self.wakeup.notify_all();
        }
    }

    /// Claims the next task for `worker`: local LIFO pop, then a FIFO
    /// steal sweep, then parking. Returns `None` when the pool is drained
    /// (every spawned task completed).
    pub(crate) fn next_task(&self, worker: usize) -> Option<T> {
        loop {
            // Epoch snapshot BEFORE scanning: a spawn that lands mid-scan
            // bumps the epoch and is caught by the recheck below.
            let seen_epoch = {
                let sync = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
                if sync.done {
                    return None;
                }
                sync.epoch
            };
            if let Some(task) = lock_deque(&self.deques[worker]).pop_back() {
                self.counters.incr(Metric::StealTasks);
                return Some(task);
            }
            let n = self.deques.len();
            for offset in 1..n {
                let victim = (worker + offset) % n;
                if let Some(task) = lock_deque(&self.deques[victim]).pop_front() {
                    self.counters.incr(Metric::StealSteals);
                    self.counters.incr(Metric::StealTasks);
                    return Some(task);
                }
            }
            let sync = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
            if sync.done {
                return None;
            }
            if sync.epoch != seen_epoch {
                // A task was published during the scan; rescan instead of
                // parking (the notify may already have gone to someone
                // else).
                continue;
            }
            self.counters.incr(Metric::StealParks);
            // Spawners bump the epoch and notify under `sync`, so no task
            // published after the epoch check can be missed by this wait.
            let _guard = self
                .wakeup
                .wait(sync)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Snapshot of the pool's counters.
    pub(crate) fn stats(&self) -> StealStats {
        self.counters.steal_stats()
    }
}

/// Runs `initial` tasks (plus any they spawn) to completion on `threads`
/// workers. Each worker gets a private context from `make_ctx` (the census
/// scratch holder); `step` executes one task and may spawn follow-up tasks
/// through the pool handle. The pool's counters are merged into `obs`
/// (a no-op for a disabled handle) and returned as [`StealStats`].
///
/// `step` must not panic: census faults are expected to be caught inside it
/// (the isolation boundary of [`crate::parallel`]). If it panics anyway the
/// panic propagates out of the scope, matching `std::thread::scope`
/// semantics — nothing hangs, because sibling workers only ever park when
/// tasks are pending and a poisoned deque lock is recovered, but results
/// for unfinished tasks are lost.
pub(crate) fn run_stealing<T, C, F, G>(
    threads: usize,
    initial: Vec<T>,
    obs: &Obs,
    make_ctx: G,
    step: F,
) -> StealStats
where
    T: Send,
    C: Send,
    F: Fn(&mut C, T, usize, &StealPool<T>) + Sync,
    G: Fn() -> C + Sync,
{
    let threads = threads.max(1);
    let pool = StealPool::new(threads, initial);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let pool = &pool;
            let make_ctx = &make_ctx;
            let step = &step;
            scope.spawn(move || {
                let mut ctx = make_ctx();
                while let Some(task) = pool.next_task(worker) {
                    step(&mut ctx, task, worker, pool);
                    pool.complete();
                }
            });
        }
    });
    obs.merge_counters(&pool.counters);
    pool.stats()
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    use super::*;

    #[test]
    fn scheduler_kind_parses_and_displays() {
        assert_eq!("cursor".parse(), Ok(SchedulerKind::Cursor));
        assert_eq!("stealing".parse(), Ok(SchedulerKind::Stealing));
        assert!("rayon".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::Stealing.to_string(), "stealing");
        assert_eq!(SchedulerKind::default(), SchedulerKind::Cursor);
    }

    #[test]
    fn empty_pool_terminates_immediately() {
        let stats = run_stealing(
            4,
            Vec::<usize>::new(),
            &Obs::disabled(),
            || (),
            |_, _, _, _| {},
        );
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 1000usize;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let obs = Obs::enabled();
        let stats = run_stealing(
            8,
            (0..n).collect(),
            &obs,
            || (),
            |_, task: usize, _, _| {
                hits[task].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(stats.tasks, n as u64);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn spawned_subtasks_run_and_are_counted() {
        // Each seed task spawns 3 children; children spawn nothing.
        let executed = AtomicU64::new(0);
        let stats = run_stealing(
            4,
            vec![0u32; 10],
            &Obs::disabled(),
            || (),
            |_, task: u32, worker, pool| {
                executed.fetch_add(1, Ordering::Relaxed);
                if task == 0 {
                    for _ in 0..3 {
                        pool.spawn(worker, 1u32);
                    }
                }
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 40);
        assert_eq!(stats.tasks, 40);
    }

    #[test]
    fn skew_forces_steals_and_parks_are_bounded_by_wakeups() {
        // One heavy worker deque (all tasks land on deque 0 for a 1-worker
        // initial deal... instead: single long task spawns many children),
        // so idle workers must steal to make progress.
        let done = AtomicU64::new(0);
        let stats = run_stealing(
            4,
            vec![u32::MAX],
            &Obs::disabled(),
            || (),
            |_, task: u32, worker, pool| {
                if task == u32::MAX {
                    for child in 0..64u32 {
                        pool.spawn(worker, child);
                    }
                    // Give thieves something to contend for.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                } else {
                    done.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            },
        );
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(stats.tasks, 65);
        assert!(stats.steals > 0, "idle workers never stole: {stats:?}");
    }

    #[test]
    fn worker_context_is_private_and_reused() {
        // Contexts count tasks; the sum over contexts equals the task
        // count, proving contexts are per-worker and never shared.
        let totals = Mutex::new(Vec::new());
        run_stealing(
            3,
            (0..300usize).collect(),
            &Obs::disabled(),
            || 0u64,
            |ctx: &mut u64, _task, _, _| {
                *ctx += 1;
            },
        );
        // Re-run with a context that records its total on drop via a
        // sentinel final task is overkill; instead verify reuse by summing
        // through a shared vec in the step itself.
        let stats = run_stealing(
            3,
            (0..300usize).collect(),
            &Obs::disabled(),
            || 0u64,
            |ctx: &mut u64, task, _, _| {
                *ctx += 1;
                if task < 3 {
                    // Contexts are live across tasks; snapshot some value.
                    totals.lock().unwrap().push(*ctx);
                }
            },
        );
        assert_eq!(stats.tasks, 300);
        assert!(!totals.lock().unwrap().is_empty());
    }
}
