//! Characteristic sequences and the pseudo-canonical subgraph encoding
//! (paper §3.1).
//!
//! For a subgraph `H` over a label alphabet of size `k`, every node `v ∈ H`
//! contributes the row `s_v = (λ(v), t_1, …, t_k)` where `t_l` is the number
//! of neighbours of `v` *inside `H`* carrying label `l`. The encoding of `H`
//! is the concatenation of all rows in descending lexicographic order
//! (`s_{v1} ≥ s_{v2} ≥ … ≥ s_{vn}`), which makes it invariant under the node
//! visiting order of the census.
//!
//! The encoding distinguishes subgraphs up to isomorphism as long as they are
//! small: provably collision-free up to 5 edges (4 if the network's label
//! connectivity graph has self loops); see `hsgf-core::enumerate` for the
//! machinery that verifies those bounds exhaustively.

use std::fmt;

use hsgf_graph::{Label, LabelSet};
/// A pseudo-canonical encoding of a small labelled subgraph.
///
/// Stored as the flat byte matrix of sorted characteristic-sequence rows;
/// each row is `1 + label_count` bytes: `[λ(v), t_1, …, t_k]`. Node-local
/// neighbour counts fit in a `u8` because subgraphs carry at most
/// [`crate::census::MAX_EMAX`] edges.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Encoding {
    bytes: Vec<u8>,
    row_len: u8,
}

impl Encoding {
    /// Builds the encoding of a standalone small subgraph given as a label
    /// assignment and an edge list over local node indices.
    ///
    /// `label_count` fixes the alphabet (and thus the row width); every
    /// label must satisfy `label.index() < label_count`.
    ///
    /// ```
    /// use hsgf_core::Encoding;
    /// use hsgf_graph::{Label, LabelSet};
    ///
    /// // The paper's Fig. 1B example: a z–y–z path over labels {x, y, z}.
    /// let labels = [Label::new(2), Label::new(1), Label::new(2)];
    /// let enc = Encoding::of_subgraph(3, &labels, &[(0, 1), (1, 2)]);
    /// let names = LabelSet::from_names(["x", "y", "z"]).unwrap();
    /// assert_eq!(enc.render(&names), "z010z010y002");
    /// assert_eq!(enc.edge_count(), 2);
    /// ```
    pub fn of_subgraph(label_count: usize, node_labels: &[Label], edges: &[(u8, u8)]) -> Self {
        let n = node_labels.len();
        let row_len = 1 + label_count;
        let mut rows = vec![0u8; n * row_len];
        for (i, &l) in node_labels.iter().enumerate() {
            debug_assert!(l.index() < label_count);
            rows[i * row_len] = l.raw();
        }
        for &(u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            debug_assert!(u < n && v < n && u != v);
            rows[u * row_len + 1 + node_labels[v].index()] += 1;
            rows[v * row_len + 1 + node_labels[u].index()] += 1;
        }
        Self::from_unsorted_rows(rows, row_len as u8)
    }

    /// Builds an encoding from a pre-filled row matrix, sorting the rows
    /// into the canonical descending order.
    pub(crate) fn from_unsorted_rows(rows: Vec<u8>, row_len: u8) -> Self {
        let mut enc = Encoding {
            bytes: rows,
            row_len,
        };
        enc.sort_rows();
        enc
    }

    fn sort_rows(&mut self) {
        let rl = self.row_len as usize;
        debug_assert_eq!(self.bytes.len() % rl, 0);
        let n = self.bytes.len() / rl;
        // Subgraphs are tiny (≤ MAX_EMAX + 1 rows): insertion sort on row
        // chunks beats allocating a Vec<Vec<u8>>.
        for i in 1..n {
            let mut j = i;
            while j > 0 && row(&self.bytes, rl, j - 1) < row(&self.bytes, rl, j) {
                swap_rows(&mut self.bytes, rl, j - 1, j);
                j -= 1;
            }
        }
    }

    /// Number of nodes in the encoded subgraph.
    pub fn node_count(&self) -> usize {
        self.bytes.len() / self.row_len as usize
    }

    /// Number of edges in the encoded subgraph (half the sum of all
    /// neighbour counts).
    pub fn edge_count(&self) -> usize {
        let rl = self.row_len as usize;
        let total: usize = self
            .bytes
            .chunks_exact(rl)
            .map(|r| r[1..].iter().map(|&t| t as usize).sum::<usize>())
            .sum();
        total / 2
    }

    /// Size of the label alphabet the encoding was built over.
    pub fn label_count(&self) -> usize {
        self.row_len as usize - 1
    }

    /// Iterates the sorted rows; each row is `[λ(v), t_1, …, t_k]`.
    pub fn rows(&self) -> impl Iterator<Item = &[u8]> {
        self.bytes.chunks_exact(self.row_len as usize)
    }

    /// Raw canonical bytes (stable hash/compare key).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Renders the paper's compact form (e.g. `z010z010y002`), using the
    /// first letter of each label name from `labels`; multi-digit counts are
    /// wrapped in parentheses.
    pub fn render(&self, labels: &LabelSet) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for row in self.rows() {
            let label = Label::new(row[0]);
            match labels.name(label) {
                Some(name) => {
                    let c = name.chars().next().unwrap_or('?');
                    out.push(c.to_ascii_lowercase());
                }
                None => {
                    // Labels beyond the set (e.g. the artificial root mask)
                    // render as '*'.
                    out.push('*');
                }
            }
            for &t in &row[1..] {
                if t < 10 {
                    let _ = write!(out, "{t}");
                } else {
                    let _ = write!(out, "({t})");
                }
            }
        }
        out
    }
}

#[inline]
fn row(bytes: &[u8], rl: usize, i: usize) -> &[u8] {
    &bytes[i * rl..(i + 1) * rl]
}

#[inline]
fn swap_rows(bytes: &mut [u8], rl: usize, a: usize, b: usize) {
    debug_assert_ne!(a, b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = bytes.split_at_mut(hi * rl);
    head[lo * rl..(lo + 1) * rl].swap_with_slice(&mut tail[..rl]);
}

impl fmt::Debug for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Encoding[")?;
        for (i, row) in self.rows().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "L{}:", row[0])?;
            for &t in &row[1..] {
                write!(f, "{t}")?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Display for Encoding {
    /// Label-name-free rendering: `L<id>` followed by the count digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.rows() {
            write!(f, "L{}", row[0])?;
            for &t in &row[1..] {
                write!(f, "{t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    /// Paper Fig. 1B: labels {x, y, z}; path z -- y -- z encodes to
    /// z010 z010 y002 (z rows first because they sort higher... the paper
    /// sorts descending; z = label 2 > y = label 1).
    #[test]
    fn paper_example_z010z010y002() {
        // Node 0: z, node 1: y, node 2: z; edges z-y, y-z.
        let enc = Encoding::of_subgraph(3, &[l(2), l(1), l(2)], &[(0, 1), (1, 2)]);
        let rows: Vec<Vec<u8>> = enc.rows().map(|r| r.to_vec()).collect();
        assert_eq!(
            rows,
            vec![
                vec![2, 0, 1, 0], // z: one y-neighbour
                vec![2, 0, 1, 0], // z: one y-neighbour
                vec![1, 0, 0, 2], // y: two z-neighbours
            ]
        );
        assert_eq!(enc.node_count(), 3);
        assert_eq!(enc.edge_count(), 2);
        let labels = LabelSet::from_names(["x", "y", "z"]).unwrap();
        assert_eq!(enc.render(&labels), "z010z010y002");
    }

    #[test]
    fn encoding_is_invariant_under_node_order() {
        // Same path with nodes listed in a different order.
        let a = Encoding::of_subgraph(3, &[l(2), l(1), l(2)], &[(0, 1), (1, 2)]);
        let b = Encoding::of_subgraph(3, &[l(1), l(2), l(2)], &[(1, 0), (0, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_star_from_path_single_label() {
        // 3-edge path vs 3-edge star, single label: degree sequences differ.
        let path = Encoding::of_subgraph(1, &[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        let star = Encoding::of_subgraph(1, &[l(0); 4], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(path, star);
        assert_eq!(path.edge_count(), 3);
        assert_eq!(star.edge_count(), 3);
    }

    #[test]
    fn distinguishes_label_placement() {
        // Same topology (path of 2 edges), different label on the centre.
        let a = Encoding::of_subgraph(2, &[l(0), l(1), l(0)], &[(0, 1), (1, 2)]);
        let b = Encoding::of_subgraph(2, &[l(1), l(0), l(1)], &[(0, 1), (1, 2)]);
        assert_ne!(a, b);
    }

    #[test]
    fn rows_are_sorted_descending() {
        let enc = Encoding::of_subgraph(
            3,
            &[l(0), l(2), l(1), l(2)],
            &[(0, 1), (0, 2), (0, 3), (1, 2)],
        );
        let rows: Vec<&[u8]> = enc.rows().collect();
        for w in rows.windows(2) {
            assert!(w[0] >= w[1], "rows must be descending: {rows:?}");
        }
    }

    #[test]
    fn single_node_subgraph() {
        let enc = Encoding::of_subgraph(2, &[l(1)], &[]);
        assert_eq!(enc.node_count(), 1);
        assert_eq!(enc.edge_count(), 0);
        assert_eq!(enc.to_string(), "L100");
    }

    #[test]
    fn counts_above_nine_render_unambiguously() {
        // A star with 11 leaves (only possible with a raised emax, but the
        // encoding itself supports it).
        let mut labels = vec![l(0)];
        labels.extend(std::iter::repeat(l(1)).take(11));
        let edges: Vec<(u8, u8)> = (1..=11).map(|i| (0u8, i as u8)).collect();
        let enc = Encoding::of_subgraph(2, &labels, &edges);
        let names = LabelSet::from_names(["hub", "leaf"]).unwrap();
        let rendered = enc.render(&names);
        assert!(rendered.contains("(11)"), "got {rendered}");
    }

    #[test]
    fn display_and_debug_are_stable() {
        let enc = Encoding::of_subgraph(2, &[l(0), l(1)], &[(0, 1)]);
        assert_eq!(enc.to_string(), "L110L001");
        assert_eq!(format!("{enc:?}"), "Encoding[L1:10 L0:01]");
    }
}
