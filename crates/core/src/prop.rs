//! A minimal property-testing harness — the in-repo replacement for
//! `proptest`, so the randomized invariant tests run with zero external
//! dependencies.
//!
//! Model: a *generator* is a function `(rng, max_size) -> T` that builds a
//! random case no larger than `max_size`; a *property* maps `&T` to
//! `Ok(())` or `Err(description)`. [`check`] runs `cases` generated inputs.
//! On failure it **shrinks by halving** the size bound — regenerating from
//! the same seed under caps `max_size/2, /4, …, 1` — and reports the
//! smallest still-failing case along with its seed, so the exact failure
//! replays with `HSGF_PROP_SEED=<seed>`.
//!
//! Environment knobs:
//!
//! * `HSGF_PROP_CASES` — cases per property (default 48).
//! * `HSGF_PROP_SEED` — base seed; case 0 uses it verbatim, so setting it
//!   to a reported failure seed replays that case first.

use hsgf_graph::rng::{splitmix64, Rng};

/// Harness settings, resolved from the environment by default.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; per-case seeds are derived from it (case 0 uses it
    /// verbatim for replayability).
    pub seed: u64,
    /// Upper bound passed to the generator for full-size cases.
    pub max_size: usize,
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

impl Config {
    /// Defaults with `HSGF_PROP_CASES` / `HSGF_PROP_SEED` overrides.
    pub fn from_env() -> Self {
        Config {
            cases: env_u64("HSGF_PROP_CASES")
                .map(|v| v as usize)
                .unwrap_or(48)
                .max(1),
            seed: env_u64("HSGF_PROP_SEED").unwrap_or(0x4853_4746), // "HSGF"
            max_size: 32,
        }
    }

    /// Same settings with a different size bound.
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size.max(1);
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Runs `property` against `cases` inputs drawn from `generate`. Panics
/// with the failing seed, the (shrunk) case, and the property's message on
/// the first failure; returns normally if every case passes.
///
/// `generate` must be deterministic in `(rng, max_size)` — shrinking
/// regenerates from the same seed under smaller bounds.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    config: &Config,
    generate: impl Fn(&mut Rng, usize) -> T,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    let mut state = config.seed;
    for case in 0..config.cases {
        let case_seed = if case == 0 {
            config.seed
        } else {
            splitmix64(&mut state)
        };
        let mut rng = Rng::from_seed(case_seed);
        let value = generate(&mut rng, config.max_size);
        if let Err(message) = property(&value) {
            let (small, small_size, small_msg) =
                shrink(config.max_size, case_seed, &generate, &mut property).unwrap_or((
                    value,
                    config.max_size,
                    message,
                ));
            panic!(
                "property '{name}' failed (case {case}/{total}).\n\
                 replay with: HSGF_PROP_SEED={case_seed}\n\
                 smallest failing case (size bound {small_size}): {small:?}\n\
                 failure: {small_msg}",
                total = config.cases,
            );
        }
    }
}

/// Halving shrink: regenerate under caps `max/2, /4, …, 1` from the same
/// seed and keep the smallest bound that still fails.
fn shrink<T: std::fmt::Debug>(
    max_size: usize,
    seed: u64,
    generate: &impl Fn(&mut Rng, usize) -> T,
    property: &mut impl FnMut(&T) -> Result<(), String>,
) -> Option<(T, usize, String)> {
    let mut best: Option<(T, usize, String)> = None;
    let mut size = max_size;
    while size > 1 {
        size /= 2;
        let mut rng = Rng::from_seed(seed);
        let value = generate(&mut rng, size);
        match property(&value) {
            Err(message) => best = Some((value, size, message)),
            // Smaller cases pass: the halving ladder stops here.
            Ok(()) => break,
        }
    }
    best
}

/// `assert!`-style helper for property bodies: builds the `Err` branch
/// from a condition and a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use super::*;

    fn tiny_config() -> Config {
        Config {
            cases: 20,
            seed: 7,
            max_size: 32,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        check(
            "sorted-after-sort",
            &tiny_config(),
            |rng, max| {
                let n = rng.gen_range(0..max + 1);
                (0..n).map(|_| rng.next_u64()).collect::<Vec<_>>()
            },
            |v| {
                seen += 1;
                let mut s = v.clone();
                s.sort_unstable();
                prop_assert!(s.len() == v.len(), "sort changed length");
                Ok(())
            },
        );
        assert_eq!(seen, 20);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let config = tiny_config();
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "vectors-are-short",
                &config,
                |rng, max| {
                    let n = rng.gen_range(0..max + 1);
                    vec![0u8; n]
                },
                |v| {
                    prop_assert!(v.len() < 3, "length {} not < 3", v.len());
                    Ok(())
                },
            );
        }));
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("HSGF_PROP_SEED="), "no replay seed in: {msg}");
        assert!(msg.contains("vectors-are-short"));
        // The halving shrink must have reduced the size bound below full.
        assert!(msg.contains("size bound"), "no shrink report in: {msg}");
    }

    #[test]
    fn replay_seed_reproduces_case_zero() {
        // Whatever case 0 generates under a seed, a fresh run with that
        // seed as base generates it again.
        let config = Config {
            cases: 1,
            seed: 12345,
            max_size: 16,
        };
        let gen = |rng: &mut Rng, max: usize| {
            let n = rng.gen_range(1..max + 1);
            (0..n).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let mut first: Option<Vec<u64>> = None;
        check("capture", &config, gen, |v| {
            first = Some(v.clone());
            Ok(())
        });
        let mut second: Option<Vec<u64>> = None;
        check("capture-again", &config, gen, |v| {
            second = Some(v.clone());
            Ok(())
        });
        assert_eq!(first.expect("ran"), second.expect("ran"));
    }
}
