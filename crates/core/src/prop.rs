//! A minimal property-testing harness — the in-repo replacement for
//! `proptest`, so the randomized invariant tests run with zero external
//! dependencies.
//!
//! Model: a *generator* is a function `(rng, max_size) -> T` that builds a
//! random case no larger than `max_size`; a *property* maps `&T` to
//! `Ok(())` or `Err(description)`. [`check`] runs `cases` generated inputs.
//! On failure it **shrinks by halving** the size bound — regenerating from
//! the same seed under caps `max_size/2, /4, …, 1` — and reports the
//! smallest still-failing case along with its seed, so the exact failure
//! replays with `HSGF_PROP_SEED=<seed>`.
//!
//! [`check_structural`] layers *structural shrinking* on top: a caller
//! supplied `steps` function enumerates strictly-smaller mutations of a
//! failing case (for graphs, [`graph_shrink_steps`] drops one edge or one
//! node per candidate), and the harness greedily descends through failing
//! candidates until none fail. Halving alone can only shrink along the
//! generator's size parameter; structural steps reach counterexamples the
//! generator would never emit at a smaller size.
//!
//! Environment knobs:
//!
//! * `HSGF_PROP_CASES` — cases per property (default 48).
//! * `HSGF_PROP_SEED` — base seed; case 0 uses it verbatim, so setting it
//!   to a reported failure seed replays that case first.

use hsgf_graph::rng::{splitmix64, Rng};
use hsgf_graph::{Direction, GraphBuilder, HetGraph};

/// Harness settings, resolved from the environment by default.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; per-case seeds are derived from it (case 0 uses it
    /// verbatim for replayability).
    pub seed: u64,
    /// Upper bound passed to the generator for full-size cases.
    pub max_size: usize,
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

impl Config {
    /// Defaults with `HSGF_PROP_CASES` / `HSGF_PROP_SEED` overrides.
    pub fn from_env() -> Self {
        Config {
            cases: env_u64("HSGF_PROP_CASES")
                .map(|v| v as usize)
                .unwrap_or(48)
                .max(1),
            seed: env_u64("HSGF_PROP_SEED").unwrap_or(0x4853_4746), // "HSGF"
            max_size: 32,
        }
    }

    /// Same settings with a different size bound.
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size.max(1);
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Runs `property` against `cases` inputs drawn from `generate`. Panics
/// with the failing seed, the (shrunk) case, and the property's message on
/// the first failure; returns normally if every case passes.
///
/// `generate` must be deterministic in `(rng, max_size)` — shrinking
/// regenerates from the same seed under smaller bounds.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    config: &Config,
    generate: impl Fn(&mut Rng, usize) -> T,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    let mut state = config.seed;
    for case in 0..config.cases {
        let case_seed = if case == 0 {
            config.seed
        } else {
            splitmix64(&mut state)
        };
        let mut rng = Rng::from_seed(case_seed);
        let value = generate(&mut rng, config.max_size);
        if let Err(message) = property(&value) {
            let (small, small_size, small_msg) =
                shrink(config.max_size, case_seed, &generate, &mut property).unwrap_or((
                    value,
                    config.max_size,
                    message,
                ));
            panic!(
                "property '{name}' failed (case {case}/{total}).\n\
                 replay with: HSGF_PROP_SEED={case_seed}\n\
                 smallest failing case (size bound {small_size}): {small:?}\n\
                 failure: {small_msg}",
                total = config.cases,
            );
        }
    }
}

/// Like [`check`], but with structural shrinking: when a case fails, the
/// harness first runs the halving shrink, then repeatedly applies `steps`
/// — which must return strictly-smaller candidate mutations of its input —
/// and descends into the first candidate that still fails, until every
/// candidate passes or [`MAX_STRUCTURAL_STEPS`] descents have been taken.
/// The panic reports the structurally minimal case and how many structural
/// steps the descent took.
///
/// Termination relies on `steps` returning *smaller* values only; the step
/// cap is a backstop against a `steps` that violates that contract.
pub fn check_structural<T: std::fmt::Debug>(
    name: &str,
    config: &Config,
    generate: impl Fn(&mut Rng, usize) -> T,
    steps: impl Fn(&T) -> Vec<T>,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    let mut state = config.seed;
    for case in 0..config.cases {
        let case_seed = if case == 0 {
            config.seed
        } else {
            splitmix64(&mut state)
        };
        let mut rng = Rng::from_seed(case_seed);
        let value = generate(&mut rng, config.max_size);
        if let Err(message) = property(&value) {
            let (halved, small_size, halved_msg) =
                shrink(config.max_size, case_seed, &generate, &mut property).unwrap_or((
                    value,
                    config.max_size,
                    message,
                ));
            let (small, taken, small_msg) =
                shrink_structural(halved, halved_msg, &steps, &mut property);
            panic!(
                "property '{name}' failed (case {case}/{total}).\n\
                 replay with: HSGF_PROP_SEED={case_seed}\n\
                 smallest failing case (size bound {small_size}, \
                 {taken} structural step(s)): {small:?}\n\
                 failure: {small_msg}",
                total = config.cases,
            );
        }
    }
}

/// Upper bound on structural-shrink descents per failure; a backstop for
/// `steps` implementations that do not strictly shrink.
pub const MAX_STRUCTURAL_STEPS: usize = 512;

/// Greedy structural descent: take the first failing candidate each round
/// until no candidate fails (a local minimum) or the step cap is hit.
fn shrink_structural<T>(
    mut value: T,
    mut message: String,
    steps: &impl Fn(&T) -> Vec<T>,
    property: &mut impl FnMut(&T) -> Result<(), String>,
) -> (T, usize, String) {
    let mut taken = 0usize;
    'descend: while taken < MAX_STRUCTURAL_STEPS {
        for candidate in steps(&value) {
            if let Err(m) = property(&candidate) {
                value = candidate;
                message = m;
                taken += 1;
                continue 'descend;
            }
        }
        break;
    }
    (value, taken, message)
}

/// Structural shrink candidates for a heterogeneous graph: one copy per
/// dropped undirected edge, then one per dropped node (with its incident
/// edges). Node labels, edge directions, and edge types all survive the
/// rebuild, so a shrunk counterexample exercises the same heterogeneous
/// machinery as the original. Intended as the `steps` argument of
/// [`check_structural`] for graph-valued properties.
pub fn graph_shrink_steps(graph: &HetGraph) -> Vec<HetGraph> {
    let mut out = Vec::with_capacity(graph.edge_count() + graph.node_count());
    for drop_edge in 0..graph.edge_count() as u32 {
        out.push(rebuild_without(graph, Some(drop_edge), None));
    }
    for drop_node in graph.nodes() {
        out.push(rebuild_without(graph, None, Some(drop_node)));
    }
    out
}

/// Rebuilds `graph` minus one edge and/or one node, remapping node ids
/// densely (the remap is monotone, so relative id order — and therefore
/// stored [`Direction`]s — stay meaningful).
fn rebuild_without(
    graph: &HetGraph,
    drop_edge: Option<u32>,
    drop_node: Option<hsgf_graph::NodeId>,
) -> HetGraph {
    let mut builder = GraphBuilder::new(graph.labels().clone());
    let mut remap = Vec::with_capacity(graph.node_count());
    for v in graph.nodes() {
        if Some(v) == drop_node {
            remap.push(None);
        } else {
            let mapped = builder
                .add_node_with(graph.label(v))
                .expect("label comes from the same LabelSet");
            remap.push(Some(mapped));
        }
    }
    for u in graph.nodes() {
        for (&v, &id) in graph.neighbors(u).iter().zip(graph.incident_edge_ids(u)) {
            // Each undirected edge appears in both endpoint lists; keep the
            // u < v copy only.
            if u >= v || Some(id) == drop_edge {
                continue;
            }
            let (Some(a), Some(b)) = (remap[u.index()], remap[v.index()]) else {
                continue;
            };
            let edge_type = graph.edge_type(id);
            // a < b holds because the remap is monotone, so the original
            // low/high orientation translates directly.
            match graph.edge_direction(id) {
                Direction::Symmetric => builder.add_edge_typed(a, b, edge_type),
                Direction::LowToHigh => builder.add_arc_typed(a, b, edge_type),
                Direction::HighToLow => builder.add_arc_typed(b, a, edge_type),
            }
            .expect("endpoints were just added");
        }
    }
    builder.build()
}

/// Halving shrink: regenerate under caps `max/2, /4, …, 1` from the same
/// seed and keep the smallest bound that still fails.
fn shrink<T: std::fmt::Debug>(
    max_size: usize,
    seed: u64,
    generate: &impl Fn(&mut Rng, usize) -> T,
    property: &mut impl FnMut(&T) -> Result<(), String>,
) -> Option<(T, usize, String)> {
    let mut best: Option<(T, usize, String)> = None;
    let mut size = max_size;
    while size > 1 {
        size /= 2;
        let mut rng = Rng::from_seed(seed);
        let value = generate(&mut rng, size);
        match property(&value) {
            Err(message) => best = Some((value, size, message)),
            // Smaller cases pass: the halving ladder stops here.
            Ok(()) => break,
        }
    }
    best
}

/// `assert!`-style helper for property bodies: builds the `Err` branch
/// from a condition and a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use super::*;

    fn tiny_config() -> Config {
        Config {
            cases: 20,
            seed: 7,
            max_size: 32,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        check(
            "sorted-after-sort",
            &tiny_config(),
            |rng, max| {
                let n = rng.gen_range(0..max + 1);
                (0..n).map(|_| rng.next_u64()).collect::<Vec<_>>()
            },
            |v| {
                seen += 1;
                let mut s = v.clone();
                s.sort_unstable();
                prop_assert!(s.len() == v.len(), "sort changed length");
                Ok(())
            },
        );
        assert_eq!(seen, 20);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let config = tiny_config();
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "vectors-are-short",
                &config,
                |rng, max| {
                    let n = rng.gen_range(0..max + 1);
                    vec![0u8; n]
                },
                |v| {
                    prop_assert!(v.len() < 3, "length {} not < 3", v.len());
                    Ok(())
                },
            );
        }));
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("HSGF_PROP_SEED="), "no replay seed in: {msg}");
        assert!(msg.contains("vectors-are-short"));
        // The halving shrink must have reduced the size bound below full.
        assert!(msg.contains("size bound"), "no shrink report in: {msg}");
    }

    #[test]
    fn graph_shrink_steps_drop_one_edge_or_node_and_keep_metadata() {
        use hsgf_graph::{Label, LabelSet};
        let labels = LabelSet::from_names(["a", "b"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let n0 = b.add_node_with(Label::new(0)).unwrap();
        let n1 = b.add_node_with(Label::new(1)).unwrap();
        let n2 = b.add_node_with(Label::new(1)).unwrap();
        b.add_arc_typed(n0, n1, 2).unwrap();
        b.add_edge_typed(n1, n2, 1).unwrap();
        let g = b.build();

        let candidates = graph_shrink_steps(&g);
        assert_eq!(candidates.len(), g.edge_count() + g.node_count());
        // Edge-drop candidates lose exactly one edge, keep all nodes.
        for c in &candidates[..g.edge_count()] {
            assert_eq!(c.node_count(), 3);
            assert_eq!(c.edge_count(), 1);
        }
        // Node-drop candidates lose the node and its incident edges.
        let without_n1 = &candidates[g.edge_count() + n1.index()];
        assert_eq!(without_n1.node_count(), 2);
        assert_eq!(without_n1.edge_count(), 0);
        // Dropping the leaf n2 keeps the directed typed arc intact.
        let without_n2 = &candidates[g.edge_count() + n2.index()];
        assert_eq!(without_n2.node_count(), 2);
        assert_eq!(without_n2.edge_count(), 1);
        assert_eq!(without_n2.edge_direction(0), Direction::LowToHigh);
        assert_eq!(without_n2.edge_type(0), 2);
        assert_eq!(without_n2.label(hsgf_graph::NodeId::new(1)), Label::new(1));
    }

    #[test]
    fn structural_shrink_reaches_minimal_counterexample() {
        use hsgf_graph::{Label, LabelSet};
        // Generator: a path of `size` nodes plus random chords. Any path of
        // length ≥ 2 violates the property below, but halving alone can only
        // shrink the *size bound* — it still regenerates chords. Structural
        // shrinking must prune all the way down to a bare 3-node path.
        let generate = |rng: &mut Rng, max: usize| {
            let n = max.max(3);
            let labels = LabelSet::from_names(["x"]).unwrap();
            let mut b = GraphBuilder::new(labels);
            let nodes: Vec<_> = (0..n)
                .map(|_| b.add_node_with(Label::new(0)).unwrap())
                .collect();
            for w in nodes.windows(2) {
                b.add_edge(w[0], w[1]).unwrap();
            }
            for _ in 0..n / 2 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(nodes[u.min(v)], nodes[u.max(v)]).unwrap();
                }
            }
            b.build()
        };
        let mut last_fail: Option<(usize, usize)> = None;
        let config = Config {
            cases: 1,
            seed: 11,
            max_size: 32,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_structural(
                "no-degree-2-node",
                &config,
                generate,
                |g: &HetGraph| graph_shrink_steps(g),
                |g| {
                    let bad = g.nodes().any(|v| g.degree(v) >= 2);
                    if bad {
                        last_fail = Some((g.node_count(), g.edge_count()));
                        return Err("found a degree-2 node".into());
                    }
                    Ok(())
                },
            );
        }));
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("structural step(s)"), "no step report: {msg}");
        assert!(msg.contains("HSGF_PROP_SEED="), "no replay seed: {msg}");
        // The minimal graph with a degree-2 node is a 3-node path; greedy
        // descent must land exactly there — something the size-bound
        // shrinker cannot do, since the generator never emits it verbatim.
        assert_eq!(
            last_fail,
            Some((3, 2)),
            "structural shrink stopped early: {msg}"
        );
    }

    #[test]
    fn structural_shrink_stops_when_no_candidate_fails() {
        // `steps` that produces only passing candidates: the descent must
        // stop immediately and report zero structural steps.
        let config = Config {
            cases: 1,
            seed: 3,
            max_size: 8,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_structural(
                "always-fails-at-origin",
                &config,
                |_rng, _max| 10u32,
                |_v| vec![0u32],
                |v| {
                    prop_assert!(*v == 0, "nonzero {v}");
                    Ok(())
                },
            );
        }));
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        // The only candidate (0) passes, so no descent happens at all.
        assert!(msg.contains("0 structural step(s)"), "wrong steps: {msg}");
        assert!(msg.contains(": 10"), "value should stay 10: {msg}");
    }

    #[test]
    fn replay_seed_reproduces_case_zero() {
        // Whatever case 0 generates under a seed, a fresh run with that
        // seed as base generates it again.
        let config = Config {
            cases: 1,
            seed: 12345,
            max_size: 16,
        };
        let gen = |rng: &mut Rng, max: usize| {
            let n = rng.gen_range(1..max + 1);
            (0..n).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let mut first: Option<Vec<u64>> = None;
        check("capture", &config, gen, |v| {
            first = Some(v.clone());
            Ok(())
        });
        let mut second: Option<Vec<u64>> = None;
        check("capture-again", &config, gen, |v| {
            second = Some(v.clone());
            Ok(())
        });
        assert_eq!(first.expect("ran"), second.expect("ran"));
    }
}
