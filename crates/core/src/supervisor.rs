//! Fault-tolerant, budget-governed feature extraction.
//!
//! The plain [`crate::parallel`] helpers are all-or-nothing: one bad root
//! fails the whole run. This module adds the production posture the north
//! star asks for — a *supervisor* that runs the census per root under a
//! [`CensusBudget`], isolates panics with `catch_unwind`, retries
//! over-budget roots down a **deterministic degradation ladder** (tightened
//! `dmax`, then reduced `emax`), and reports a per-root [`RootOutcome`]
//! instead of sinking everyone else's finished work.
//!
//! # Degradation semantics
//!
//! Every ladder step keeps the label alphabet, hash seed, masking, and
//! direction/type modes of the base configuration, so an encoding discovered
//! under a degraded configuration is byte-identical to the same subgraph's
//! encoding under the base configuration. A `Degraded` row is therefore
//! *comparable but truncated*: it contains a subset of the counts an exact
//! census would produce (hub expansions and large subgraphs are missing),
//! never differently-keyed features. Downstream consumers that require exact
//! comparability can drop non-exact rows via
//! [`PartialExtraction::exact_matrix`].
//!
//! Given identical inputs, the ladder and the per-root outcomes are pure
//! functions of `(graph, config, policy)` — independent of thread count and
//! scheduling — as long as the policy uses only deterministic budget
//! dimensions (subgraph and frontier caps). Wall-clock deadlines are
//! supported but inherently nondeterministic.
//!
//! # Retries and the journal
//!
//! A [`RetryPolicy`] on the policy re-attempts *transient* faults
//! (isolated panics, deadline misses) on the same ladder rung before any
//! fidelity is given up; the per-root attempt count is reported in the
//! outcome so retried and clean successes stay distinguishable. A
//! [`Journal`] (see [`Supervisor::extract_journaled_with`]) write-ahead
//! logs each completed root in commit order, so a killed run resumes by
//! replaying the journal's durable prefix bit-identically.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use hsgf_graph::{HetGraph, NodeId};

use crate::budget::{BudgetKind, CancelToken, CensusBudget, RetryPolicy, SharedBudget};
use crate::cache::{
    config_fingerprint, policy_fingerprint, CacheEntry, CacheKey, CachedOutcome, CensusCache,
};
use crate::census::{CensusConfig, CensusEngine, CensusError, CensusScratch};
use crate::features::FeatureMatrix;
use crate::journal::{encode_root_payload, IoFault, IoOp, Journal, JournaledOutcome, RootRecord};
use crate::obs::{CensusCounters, Metric, Obs};
use crate::parallel::{cache_keys, panic_message, plan_shards, SPLIT_WIDTH};
use crate::sequence::Encoding;
use crate::steal::{run_stealing, SchedulerKind};

/// How one root's census concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RootOutcome {
    /// The census completed under the base configuration.
    Exact {
        /// Total census attempts spent on this root (1 = clean first try;
        /// more when a [`RetryPolicy`] rescued transient faults).
        attempts: u32,
    },
    /// The base census exceeded its budget; a ladder step completed instead.
    Degraded {
        /// The `dmax` of the completing ladder step.
        dmax: Option<u32>,
        /// The `emax` of the completing ladder step.
        emax: usize,
        /// Which ladder rung completed (1-based distance from the base
        /// configuration). Decoupled from `attempts`: retries can spend
        /// several attempts on one rung.
        rung: u8,
        /// Total census attempts for this root (base attempt and retries
        /// included).
        attempts: u32,
    },
    /// No configuration completed; the row is empty.
    Failed {
        /// The terminal error (budget exhaustion of the last ladder step,
        /// an isolated worker panic, or an invalid root).
        error: CensusError,
    },
    /// The run was cancelled before (or while) this root was processed.
    Cancelled,
}

impl RootOutcome {
    /// Whether the root produced a usable (exact or degraded) row.
    pub fn has_row(&self) -> bool {
        matches!(
            self,
            RootOutcome::Exact { .. } | RootOutcome::Degraded { .. }
        )
    }

    /// Whether the root completed under the base configuration (regardless
    /// of how many attempts it took).
    pub fn is_exact(&self) -> bool {
        matches!(self, RootOutcome::Exact { .. })
    }
}

/// Resource policy applied to every root of a supervised extraction.
#[derive(Clone, Debug, Default)]
pub struct ExtractionPolicy {
    /// Per-attempt cap on discovered subgraphs (deterministic).
    pub max_subgraphs: Option<u64>,
    /// Per-attempt cap on the extension-stack length (deterministic).
    pub max_frontier: Option<usize>,
    /// Per-attempt wall-clock deadline (nondeterministic; prefer
    /// `max_subgraphs` when reproducibility matters).
    pub root_timeout: Option<Duration>,
    /// Retry over-budget roots down the degradation ladder instead of
    /// failing them outright.
    pub degrade: bool,
    /// Re-attempt *transiently* failed roots (isolated panics, deadline
    /// near-misses) on the same ladder rung before degrading or failing.
    /// `None` disables retries (every fault is terminal for its attempt,
    /// the pre-retry behaviour). Excluded from the cache's policy
    /// fingerprint: retries only rescue nondeterministic faults and never
    /// change what a successful census contains.
    pub retry: Option<RetryPolicy>,
}

impl ExtractionPolicy {
    /// Whether any budget dimension is set.
    pub fn is_bounded(&self) -> bool {
        self.max_subgraphs.is_some() || self.max_frontier.is_some() || self.root_timeout.is_some()
    }

    /// The budget for one census attempt (the deadline clock starts now).
    fn attempt_budget(&self) -> CensusBudget {
        let mut budget = CensusBudget {
            max_subgraphs: self.max_subgraphs,
            max_frontier: self.max_frontier,
            deadline: None,
        };
        if let Some(timeout) = self.root_timeout {
            budget = budget.with_timeout(timeout);
        }
        budget
    }
}

/// The degradation ladder for `base`: successively cheaper configurations
/// tried (in order) when a root exceeds its budget. Deterministic — a pure
/// function of the base configuration:
///
/// 1. tighten `dmax` to 16, then to 4 (steps that would not tighten are
///    skipped);
/// 2. with `dmax` at the tightest value, reduce `emax` one step at a time
///    down to 2.
///
/// Encoding-affecting knobs (alphabet, masking, direction/type modes, hash
/// seed) are never touched, so degraded censuses stay feature-comparable.
pub fn degrade_ladder(base: &CensusConfig) -> Vec<CensusConfig> {
    let mut steps = Vec::new();
    for dmax in [16u32, 4] {
        if dmax_strictly_tighter(Some(dmax), base.dmax) {
            steps.push(base.clone().with_dmax(Some(dmax)));
        }
    }
    let tight_dmax = base.dmax.map_or(4, |d| d.min(4));
    let mut emax = base.emax;
    while emax > 2 {
        emax -= 1;
        steps.push(base.clone().with_emax(emax).with_dmax(Some(tight_dmax)));
    }
    steps
}

/// Whether `candidate` is a strictly tighter hub cutoff than `base`.
/// `None` means unlimited, so any finite candidate tightens it — including
/// `Some(u32::MAX)`, which is a real (if absurd) cap, not a sentinel.
/// Collapsing `Some(u32::MAX)` into `u32::MAX` via `unwrap_or` would make
/// the two indistinguishable and break rung-monotonicity checks.
pub fn dmax_strictly_tighter(candidate: Option<u32>, base: Option<u32>) -> bool {
    match (candidate, base) {
        (Some(_), None) => true,
        (Some(c), Some(b)) => c < b,
        (None, _) => false,
    }
}

/// Fault-injection hook for chaos testing the supervisor. Implementations
/// may panic (simulating a crashing root) or return a synthetic error; both
/// happen inside the supervisor's isolation boundary, exactly where a real
/// census fault would.
pub trait ChaosHook: Sync {
    /// Called before census `attempt` (0 = base configuration) of `root`.
    /// Returning `Some(error)` aborts the attempt with that error.
    fn inject(&self, root: NodeId, attempt: usize) -> Option<CensusError>;

    /// Called before the IO operation `op` (journal append/scan, disk-cache
    /// read/write). Returning `Some(fault)` makes that operation misbehave
    /// accordingly; the defaults inject nothing. Fault handling is the
    /// responsibility of the IO path under test — no injected fault may
    /// panic the process or corrupt a committed record.
    fn inject_io(&self, _op: IoOp) -> Option<IoFault> {
        None
    }
}

/// A [`ChaosHook`] injecting IO faults on a fixed schedule, parsed from a
/// spec string (the CLI's `HSGF_IO_CHAOS` environment variable):
/// comma-separated `FAULT@OP:N` entries, where `FAULT` is one of
/// `torn-write|short-read|enospc|corrupt-record`, `OP` one of
/// `journal-write|journal-read|cache-write|cache-read`, and `N` the 1-based
/// index of the matching operation to fault. Example:
/// `torn-write@journal-write:3,short-read@cache-read:1`.
#[derive(Debug, Default)]
pub struct ScheduledIoChaos {
    plan: Vec<(IoOp, u64, IoFault)>,
    /// Operations observed so far, indexed like [`ScheduledIoChaos::OPS`].
    calls: [AtomicU64; 4],
}

impl ScheduledIoChaos {
    const OPS: [(&'static str, IoOp); 4] = [
        ("journal-write", IoOp::JournalWrite),
        ("journal-read", IoOp::JournalRead),
        ("cache-write", IoOp::CacheWrite),
        ("cache-read", IoOp::CacheRead),
    ];

    const FAULTS: [(&'static str, IoFault); 4] = [
        ("torn-write", IoFault::TornWrite),
        ("short-read", IoFault::ShortRead),
        ("enospc", IoFault::Enospc),
        ("corrupt-record", IoFault::CorruptRecord),
    ];

    /// Parses a spec string; the error names the offending entry.
    pub fn parse(spec: &str) -> Result<ScheduledIoChaos, String> {
        let mut plan = Vec::new();
        for entry in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let entry = entry.trim();
            let bad = || format!("bad io-chaos entry '{entry}' (want FAULT@OP:N)");
            let (fault, rest) = entry.split_once('@').ok_or_else(bad)?;
            let (op, index) = rest.split_once(':').ok_or_else(bad)?;
            let fault = Self::FAULTS
                .iter()
                .find(|(name, _)| *name == fault)
                .map(|&(_, f)| f)
                .ok_or_else(|| format!("unknown io fault '{fault}'"))?;
            let op = Self::OPS
                .iter()
                .find(|(name, _)| *name == op)
                .map(|&(_, o)| o)
                .ok_or_else(|| format!("unknown io op '{op}'"))?;
            let index: u64 = index.parse().map_err(|_| bad())?;
            if index == 0 {
                return Err(format!("io-chaos index in '{entry}' is 1-based"));
            }
            plan.push((op, index, fault));
        }
        Ok(ScheduledIoChaos {
            plan,
            calls: Default::default(),
        })
    }

    fn op_index(op: IoOp) -> usize {
        Self::OPS
            .iter()
            .position(|&(_, o)| o == op)
            .expect("every IoOp is listed")
    }
}

impl ChaosHook for ScheduledIoChaos {
    fn inject(&self, _root: NodeId, _attempt: usize) -> Option<CensusError> {
        None
    }

    fn inject_io(&self, op: IoOp) -> Option<IoFault> {
        let seen = self.calls[Self::op_index(op)].fetch_add(1, Ordering::Relaxed) + 1;
        self.plan
            .iter()
            .find(|&&(o, at, _)| o == op && at == seen)
            .map(|&(_, _, fault)| fault)
    }
}

/// The result of a supervised extraction: a feature matrix over every root
/// (failed/cancelled roots keep an all-zero row so row indices always align
/// with the root list) plus one [`RootOutcome`] per root.
#[derive(Clone, Debug)]
pub struct PartialExtraction {
    /// Feature matrix in root order. Rows of non-`has_row` roots are empty.
    pub matrix: FeatureMatrix,
    /// Per-root outcome, parallel to `matrix.roots()`.
    pub outcomes: Vec<RootOutcome>,
}

impl PartialExtraction {
    /// Whether every root completed exactly.
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(RootOutcome::is_exact)
    }

    /// `(exact, degraded, failed, cancelled)` root counts.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for o in &self.outcomes {
            match o {
                RootOutcome::Exact { .. } => t.0 += 1,
                RootOutcome::Degraded { .. } => t.1 += 1,
                RootOutcome::Failed { .. } => t.2 += 1,
                RootOutcome::Cancelled => t.3 += 1,
            }
        }
        t
    }

    /// The sub-matrix of exactly-extracted roots only (strict feature
    /// comparability; see the module docs on degradation semantics).
    pub fn exact_matrix(&self) -> FeatureMatrix {
        let keep: Vec<bool> = self.outcomes.iter().map(RootOutcome::is_exact).collect();
        self.matrix.retain_rows(&keep)
    }

    /// Iterates `(root, outcome)` pairs for non-exact roots (the anomaly
    /// report).
    pub fn anomalies(&self) -> impl Iterator<Item = (NodeId, &RootOutcome)> {
        self.matrix
            .roots()
            .iter()
            .copied()
            .zip(self.outcomes.iter())
            .filter(|(_, o)| !o.is_exact())
    }
}

/// Whether `error` is worth retrying: isolated worker panics and
/// wall-clock deadline misses are scheduling/environment artifacts that a
/// re-run may avoid; subgraph/frontier exhaustion is a pure function of
/// `(graph, config)` and will recur identically.
fn is_transient(error: &CensusError) -> bool {
    matches!(
        error,
        CensusError::WorkerPanicked { .. }
            | CensusError::BudgetExhausted {
                kind: BudgetKind::Deadline,
                ..
            }
    )
}

/// The journalable view of an outcome: successful outcomes map to their
/// [`JournaledOutcome`]; failed/cancelled roots return `None` and are never
/// written (a resume re-extracts them — deterministic failures re-fail
/// identically, transient ones get their retry).
fn journaled_outcome(outcome: &RootOutcome) -> Option<JournaledOutcome> {
    match outcome {
        RootOutcome::Exact { attempts } => Some(JournaledOutcome::Exact {
            attempts: *attempts,
        }),
        RootOutcome::Degraded {
            dmax,
            emax,
            rung,
            attempts,
        } => Some(JournaledOutcome::Degraded {
            dmax: *dmax,
            emax: *emax,
            rung: *rung,
            attempts: *attempts,
        }),
        RootOutcome::Failed { .. } | RootOutcome::Cancelled => None,
    }
}

/// The inverse of [`journaled_outcome`], for replay.
fn replayed_outcome(outcome: &JournaledOutcome) -> RootOutcome {
    match outcome {
        JournaledOutcome::Exact { attempts } => RootOutcome::Exact {
            attempts: *attempts,
        },
        JournaledOutcome::Degraded {
            dmax,
            emax,
            rung,
            attempts,
        } => RootOutcome::Degraded {
            dmax: *dmax,
            emax: *emax,
            rung: *rung,
            attempts: *attempts,
        },
    }
}

/// Orders journal appends by root-list position — *commit order* — no
/// matter which worker finishes first. Workers offer every result as it
/// completes; the sink buffers out-of-order results and drains the
/// contiguous prefix to the journal, so the journal's content is always a
/// prefix of the root list and replay is deterministic across schedulers
/// and thread counts. Failed/cancelled roots advance the frontier without
/// writing a record.
struct CommitSink<'a> {
    journal: &'a Journal,
    chaos: Option<&'a dyn ChaosHook>,
    obs: &'a Obs,
    state: Mutex<SinkState>,
}

struct SinkState {
    /// Next root index the journal is waiting for.
    next: usize,
    /// Completed-but-unjournaled results; `None` marks a recordless
    /// (failed/cancelled) root.
    pending: BTreeMap<usize, Option<Vec<u8>>>,
}

impl<'a> CommitSink<'a> {
    fn new(journal: &'a Journal, chaos: Option<&'a dyn ChaosHook>, obs: &'a Obs) -> Self {
        CommitSink {
            journal,
            chaos,
            obs,
            state: Mutex::new(SinkState {
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    fn offer(&self, index: usize, root: NodeId, result: &RootResult) {
        // Serialize outside the lock; under it the sink only moves bytes.
        let payload = match result {
            (Some(counts), outcome) => journaled_outcome(outcome)
                .map(|outcome| encode_root_payload(root.raw(), &outcome, counts)),
            _ => None,
        };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.pending.insert(index, payload);
        while state
            .pending
            .first_key_value()
            .is_some_and(|(&index, _)| index == state.next)
        {
            let (_, payload) = state.pending.pop_first().expect("checked non-empty");
            state.next += 1;
            if let Some(payload) = payload {
                // A real append failure (device gone, say) must not sink
                // the extraction: the record is simply not durable and a
                // resume re-extracts that root.
                if self.journal.append_payload(&payload, self.chaos).is_ok() {
                    self.obs.incr(Metric::JournalAppends);
                }
            }
        }
    }
}

/// The per-root census result a worker hands back: the counts (when a row
/// was produced) and how it went.
type RootResult = (Option<HashMap<Encoding, u64>>, RootOutcome);

/// Budget-governed, fault-tolerant census supervisor over one graph.
pub struct Supervisor<'g> {
    /// Engine per ladder rung; index 0 is the base configuration.
    engines: Vec<CensusEngine<'g>>,
    policy: ExtractionPolicy,
    /// Shared observability handle (no-op by default); every ladder engine
    /// holds a clone, so completed censuses on any rung flush into the same
    /// registry.
    obs: Obs,
    /// Retries spent by the current extraction, charged against
    /// [`RetryPolicy::max_total_retries`]; reset at every extraction entry
    /// point.
    retry_spent: AtomicU64,
}

impl<'g> Supervisor<'g> {
    /// Creates a supervisor. The ladder is materialized eagerly so an
    /// invalid configuration fails here, not mid-extraction.
    pub fn new(
        graph: &'g HetGraph,
        config: CensusConfig,
        policy: ExtractionPolicy,
    ) -> Result<Self, CensusError> {
        let mut configs = vec![config.clone()];
        if policy.degrade {
            configs.extend(degrade_ladder(&config));
        }
        let engines = configs
            .into_iter()
            .map(|c| CensusEngine::new(graph, c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Supervisor {
            engines,
            policy,
            obs: Obs::disabled(),
            retry_spent: AtomicU64::new(0),
        })
    }

    /// Attaches an observability handle: every ladder engine (and the
    /// supervisor's own outcome/phase instrumentation) emits into `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        for engine in &mut self.engines {
            engine.set_obs(obs.clone());
        }
        self.obs = obs;
        self
    }

    /// The base-configuration engine.
    pub fn base_engine(&self) -> &CensusEngine<'g> {
        &self.engines[0]
    }

    /// Number of configurations that may be attempted per root (base + the
    /// degradation ladder when enabled).
    pub fn ladder_len(&self) -> usize {
        self.engines.len()
    }

    /// Extracts censuses for `roots` with `threads` workers (0 or 1 runs on
    /// the caller's thread). Never fails as a whole: each root's fate is
    /// reported in [`PartialExtraction::outcomes`].
    pub fn extract(&self, roots: &[NodeId], threads: usize) -> PartialExtraction {
        self.extract_with(roots, threads, None, None, SchedulerKind::Cursor)
    }

    /// [`Supervisor::extract`] with an explicit scheduler choice. Outcomes
    /// and matrix rows are identical for every scheduler (see
    /// [`Supervisor::extract_with`] for how the stealing path guarantees
    /// this); [`SchedulerKind::Stealing`] additionally balances skewed
    /// per-root costs across workers.
    pub fn extract_scheduled(
        &self,
        roots: &[NodeId],
        threads: usize,
        scheduler: SchedulerKind,
    ) -> PartialExtraction {
        self.extract_with(roots, threads, None, None, scheduler)
    }

    /// The full-form extraction: optional cooperative cancellation token,
    /// optional fault-injection hook (chaos testing), and scheduler choice.
    ///
    /// Under [`SchedulerKind::Stealing`], wide hub roots have their *base*
    /// census attempt split into shards drawing on one [`SharedBudget`], so
    /// exhaustion still depends only on the root's true subgraph count. If
    /// every shard completes, the merged census is bit-for-bit the
    /// sequential base census and the outcome is `Exact`. If *any* shard
    /// stops (budget, cancellation, panic), all shard work is discarded and
    /// the root is re-run through the ordinary sequential ladder
    /// ([`Supervisor::census_root`]) for the canonical outcome — so
    /// [`PartialExtraction`] is independent of scheduler and thread count.
    /// Roots are never sharded while a chaos hook is installed (hooks
    /// model per-root faults, not per-shard ones).
    pub fn extract_with(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        scheduler: SchedulerKind,
    ) -> PartialExtraction {
        self.retry_spent.store(0, Ordering::Relaxed);
        let results = self.run_roots(roots, threads, cancel, chaos, scheduler, None);
        self.assemble(roots, results)
    }

    /// [`Supervisor::extract_with`] through a write-ahead [`Journal`]:
    /// `replayed` records (from [`Journal::resume`]) fill their roots'
    /// rows bit-identically without re-extraction, and every newly
    /// completed root is appended to `journal` in root-list order (commit
    /// order), so a crash at any point leaves a journal whose durable
    /// prefix replays exactly. Journal records from roots outside `roots`
    /// are ignored (the run header already pins the root list).
    pub fn extract_journaled_with(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        scheduler: SchedulerKind,
        journal: &Journal,
        replayed: &[RootRecord],
    ) -> PartialExtraction {
        self.retry_spent.store(0, Ordering::Relaxed);
        let mut by_root: HashMap<u32, &RootRecord> = HashMap::with_capacity(replayed.len());
        for record in replayed {
            by_root.insert(record.root, record);
        }
        let mut slots: Vec<Option<RootResult>> = (0..roots.len()).map(|_| None).collect();
        let mut miss_roots = Vec::new();
        let mut miss_idx = Vec::new();
        for (i, &root) in roots.iter().enumerate() {
            match by_root.get(&root.raw()) {
                Some(record) => {
                    self.obs.incr(Metric::JournalReplays);
                    slots[i] = Some((
                        Some(record.counts.clone()),
                        replayed_outcome(&record.outcome),
                    ));
                }
                None => {
                    miss_roots.push(root);
                    miss_idx.push(i);
                }
            }
        }
        let sink = CommitSink::new(journal, chaos, &self.obs);
        let results = self.run_roots(&miss_roots, threads, cancel, chaos, scheduler, Some(&sink));
        for (&i, result) in miss_idx.iter().zip(results) {
            slots[i] = Some(result);
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every slot is either replayed or refilled from the miss run"))
            .collect();
        self.assemble(roots, results)
    }

    /// Dispatches `roots` to the sequential loop or the chosen scheduler,
    /// offering every completed result to `sink` (when journaling) keyed by
    /// its index in `roots`.
    fn run_roots(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        scheduler: SchedulerKind,
        sink: Option<&CommitSink>,
    ) -> Vec<RootResult> {
        if roots.is_empty() {
            return Vec::new();
        }
        if threads <= 1 {
            let mut holder = None;
            roots
                .iter()
                .enumerate()
                .map(|(i, &root)| {
                    let timer = self.obs.root_timer();
                    let result = self.census_root(root, &mut holder, cancel, chaos);
                    self.obs.record_root(root.raw(), 0, timer);
                    if let Some(sink) = sink {
                        sink.offer(i, root, &result);
                    }
                    result
                })
                .collect()
        } else {
            match scheduler {
                SchedulerKind::Cursor => self.extract_parallel(roots, threads, cancel, chaos, sink),
                SchedulerKind::Stealing => {
                    self.extract_stealing(roots, threads, cancel, chaos, sink)
                }
            }
        }
    }

    /// [`Supervisor::extract_scheduled`] through a [`CensusCache`].
    pub fn extract_cached(
        &self,
        roots: &[NodeId],
        threads: usize,
        scheduler: SchedulerKind,
        cache: &CensusCache,
    ) -> PartialExtraction {
        self.extract_cached_with(roots, threads, None, None, scheduler, cache)
    }

    /// [`Supervisor::extract_with`] through a [`CensusCache`].
    ///
    /// The cache key extends the plain config fingerprint with the policy
    /// knobs that shape the ladder ([`policy_fingerprint`]), and each root
    /// probes ladder levels in ascending order — outcomes are pure
    /// functions of `(graph, config, policy)`, so the lowest stored level
    /// is *the* level a recomputation would land on. Cacheability rules:
    /// `Exact` results are stored at level 0, `Degraded` results at their
    /// ladder level, and `Failed`/`Cancelled` roots — including
    /// chaos-poisoned ones — are never stored. When the policy carries a
    /// wall-clock `root_timeout`, outcomes are nondeterministic and the
    /// whole run bypasses the cache.
    pub fn extract_cached_with(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        scheduler: SchedulerKind,
        cache: &CensusCache,
    ) -> PartialExtraction {
        if self.policy.root_timeout.is_some() {
            return self.extract_with(roots, threads, cancel, chaos, scheduler);
        }
        self.retry_spent.store(0, Ordering::Relaxed);
        let config = policy_fingerprint(
            config_fingerprint(self.base_engine().config()),
            &self.policy,
        );
        let keys = cache_keys(self.base_engine(), roots, cache, config);
        let mut slots: Vec<Option<RootResult>> = (0..roots.len()).map(|_| None).collect();
        let mut miss_roots = Vec::new();
        let mut miss_idx = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let hit = (0..self.ladder_len()).find_map(|level| {
                cache.lookup_uncounted(&CacheKey {
                    level: level as u8,
                    ..*key
                })
            });
            match hit {
                Some(entry) => {
                    cache.note_hit();
                    // The cache stores fidelity, not attempt history:
                    // replayed attempt counts are the retry-free values
                    // (1 for exact, rung + 1 for degraded).
                    let outcome = match entry.outcome {
                        CachedOutcome::Exact => RootOutcome::Exact { attempts: 1 },
                        CachedOutcome::Degraded { dmax, emax, rung } => RootOutcome::Degraded {
                            dmax,
                            emax,
                            rung,
                            attempts: rung as u32 + 1,
                        },
                    };
                    slots[i] = Some((Some(entry.counts), outcome));
                }
                None => {
                    cache.note_miss();
                    miss_roots.push(roots[i]);
                    miss_idx.push(i);
                }
            }
        }
        let miss_results = self.run_roots(&miss_roots, threads, cancel, chaos, scheduler, None);
        for (&i, result) in miss_idx.iter().zip(miss_results) {
            if let (Some(counts), outcome) = &result {
                let cached = match outcome {
                    RootOutcome::Exact { .. } => Some(CachedOutcome::Exact),
                    RootOutcome::Degraded {
                        dmax, emax, rung, ..
                    } => Some(CachedOutcome::Degraded {
                        dmax: *dmax,
                        emax: *emax,
                        rung: *rung,
                    }),
                    // Failed and cancelled roots say nothing reusable and
                    // must never pollute the cache.
                    RootOutcome::Failed { .. } | RootOutcome::Cancelled => None,
                };
                if let Some(outcome) = cached {
                    let key = CacheKey {
                        level: outcome.level(),
                        ..keys[i]
                    };
                    cache.store(
                        key,
                        &CacheEntry {
                            counts: counts.clone(),
                            outcome,
                        },
                    );
                }
            }
            slots[i] = Some(result);
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every slot is either a cache hit or refilled from the miss run"))
            .collect();
        self.assemble(roots, results)
    }

    fn extract_parallel(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        sink: Option<&CommitSink>,
    ) -> Vec<RootResult> {
        // Tiny extractions must not pay spawn/teardown for workers that
        // would immediately exit.
        let threads = threads.min(roots.len());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RootResult>>> =
            roots.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || {
                    let mut holder = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= roots.len() {
                            break;
                        }
                        let timer = self.obs.root_timer();
                        let result = self.census_root(roots[i], &mut holder, cancel, chaos);
                        self.obs.record_root(roots[i].raw(), worker as u64, timer);
                        if let Some(sink) = sink {
                            sink.offer(i, roots[i], &result);
                        }
                        // The result is computed before the lock is taken,
                        // and `census_root` never panics (faults are caught
                        // inside), so the lock cannot be poisoned by census
                        // work; recover anyway rather than propagate.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .zip(roots)
            .map(|(slot, &root)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // A worker died between claiming the slot and
                        // filling it. With in-loop isolation this should be
                        // unreachable, but a lost root must never sink the
                        // run — report it and move on.
                        (
                            None,
                            RootOutcome::Failed {
                                error: CensusError::WorkerPanicked {
                                    root: root.raw(),
                                    message: "worker terminated without reporting".to_owned(),
                                },
                            },
                        )
                    })
            })
            .collect()
    }

    /// The stealing-scheduler extraction. Whole roots are pool tasks; a
    /// worker claiming a wide hub root (frontier width at least
    /// [`SPLIT_WIDTH`], `emax >= 2`, no chaos hook) spawns shard tasks for
    /// its base attempt instead, each charging subgraphs against one
    /// [`SharedBudget`]. All-shards-success merges to the exact base
    /// census; any shard failure falls back to the sequential ladder for
    /// the canonical outcome (see [`Supervisor::extract_with`]).
    fn extract_stealing(
        &self,
        roots: &[NodeId],
        threads: usize,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
        sink: Option<&CommitSink>,
    ) -> Vec<RootResult> {
        /// A pool task: one root, or one shard of a split root's base
        /// attempt. Indices are into `roots`.
        #[derive(Copy, Clone)]
        enum Task {
            Root(usize),
            Shard {
                slot: usize,
                shard: usize,
                lo: usize,
                hi: usize,
            },
        }
        /// Merge bookkeeping for one split root's base attempt. Each part
        /// carries the shard's deterministic counter delta; the deltas are
        /// flushed into the metrics registry only when every shard
        /// completes (a failed split flushes nothing — the sequential
        /// ladder fallback produces the canonical counts instead).
        struct Merge {
            parts: Vec<Option<Result<(HashMap<Encoding, u64>, CensusCounters), CensusError>>>,
            remaining: usize,
        }
        let base = self.base_engine();
        let splittable = chaos.is_none() && base.config().emax >= 2;
        let plans: Vec<Option<Vec<(usize, usize)>>> = (0..roots.len())
            .map(|i| {
                let width = base.root_width(roots[i]);
                (splittable && width >= SPLIT_WIDTH)
                    .then(|| plan_shards(width, (threads * 2).min(width)))
            })
            .collect();
        // One pooled subgraph counter and one attempt budget per root,
        // pre-built so every shard of a root observes the same cap and the
        // same deadline instant (as the sequential base attempt would).
        let shareds: Vec<SharedBudget> = (0..roots.len())
            .map(|_| SharedBudget::new(self.policy.max_subgraphs))
            .collect();
        let budgets: Vec<CensusBudget> = (0..roots.len())
            .map(|_| self.policy.attempt_budget())
            .collect();
        let merges: Vec<Mutex<Merge>> = plans
            .iter()
            .map(|plan| {
                let n = plan.as_ref().map_or(0, Vec::len);
                Mutex::new(Merge {
                    parts: (0..n).map(|_| None).collect(),
                    remaining: n,
                })
            })
            .collect();
        let slots: Vec<Mutex<Option<RootResult>>> =
            roots.iter().map(|_| Mutex::new(None)).collect();
        let mut order: Vec<usize> = (0..roots.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(base.root_width(roots[i])));
        let tasks: Vec<Task> = order.into_iter().map(Task::Root).collect();
        let workers = if plans.iter().any(Option::is_some) {
            threads
        } else {
            threads.min(tasks.len())
        }
        .max(1);
        run_stealing(
            workers,
            tasks,
            &self.obs,
            || None,
            |holder: &mut Option<CensusScratch>, task, worker, pool| match task {
                Task::Root(i) => {
                    if let Some(ranges) = &plans[i] {
                        pool.note_split();
                        for (k, &(lo, hi)) in ranges.iter().enumerate() {
                            pool.spawn(
                                worker,
                                Task::Shard {
                                    slot: i,
                                    shard: k,
                                    lo,
                                    hi,
                                },
                            );
                        }
                        return;
                    }
                    let timer = self.obs.root_timer();
                    let result = self.census_root(roots[i], holder, cancel, chaos);
                    self.obs.record_root(roots[i].raw(), worker as u64, timer);
                    if let Some(sink) = sink {
                        sink.offer(i, roots[i], &result);
                    }
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                }
                Task::Shard {
                    slot,
                    shard,
                    lo,
                    hi,
                } => {
                    let root = roots[slot];
                    let timer = self.obs.root_timer();
                    let scratch = holder.get_or_insert_with(|| self.engines[0].make_scratch());
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        base.census_encodings_shard(
                            root,
                            scratch,
                            (lo, hi),
                            &budgets[slot],
                            cancel,
                            Some(&shareds[slot]),
                        )
                    }));
                    let result = match attempt {
                        Ok(r) => r.map(|c| {
                            let delta = holder.as_ref().map(|s| s.last_delta).unwrap_or_default();
                            (c.counts, delta)
                        }),
                        Err(payload) => {
                            *holder = None;
                            Err(CensusError::WorkerPanicked {
                                root: root.raw(),
                                message: panic_message(payload.as_ref()),
                            })
                        }
                    };
                    self.obs.record_root(root.raw(), worker as u64, timer);
                    let mut merge = merges[slot].lock().unwrap_or_else(PoisonError::into_inner);
                    merge.parts[shard] = Some(result);
                    merge.remaining -= 1;
                    if merge.remaining > 0 {
                        return;
                    }
                    let parts = std::mem::take(&mut merge.parts);
                    drop(merge);
                    let mut counts: HashMap<Encoding, u64> = HashMap::new();
                    let mut delta = CensusCounters::default();
                    let mut failed = false;
                    for part in parts {
                        match part.expect("every shard reported before merge") {
                            Ok((shard_counts, shard_delta)) => {
                                delta.absorb(&shard_delta);
                                for (enc, n) in shard_counts {
                                    *counts.entry(enc).or_insert(0) += n;
                                }
                            }
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                    let result = if failed {
                        // Canonical-outcome fallback: any shard stop means
                        // the base attempt did not complete as sharded;
                        // the sequential ladder decides what this root
                        // really gets (Degraded / Failed / Cancelled —
                        // bounded work, since each attempt aborts at its
                        // budget). This keeps outcomes independent of
                        // scheduler and thread count. No shard delta is
                        // flushed — the fallback's completing attempt
                        // produces the canonical counts.
                        self.census_root(root, holder, cancel, chaos)
                    } else {
                        self.obs.record_census(&delta);
                        self.obs.observe_root_subgraphs(delta.subgraphs);
                        // All shards of the base attempt completed: one
                        // logical attempt, exactly like the sequential path.
                        (Some(counts), RootOutcome::Exact { attempts: 1 })
                    };
                    if let Some(sink) = sink {
                        sink.offer(slot, root, &result);
                    }
                    *slots[slot].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                }
            },
        );
        slots
            .into_iter()
            .zip(roots)
            .map(|(slot, &root)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        (
                            None,
                            RootOutcome::Failed {
                                error: CensusError::WorkerPanicked {
                                    root: root.raw(),
                                    message: "worker terminated without reporting".to_owned(),
                                },
                            },
                        )
                    })
            })
            .collect()
    }

    /// Whether the current extraction may still spend one more retry
    /// against the run-wide [`RetryPolicy::max_total_retries`] cap.
    fn try_spend_retry(&self, retry: &RetryPolicy) -> bool {
        self.retry_spent
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |spent| {
                (spent < retry.max_total_retries).then_some(spent + 1)
            })
            .is_ok()
    }

    /// Runs one root down the ladder inside the panic-isolation boundary.
    /// `holder` carries the worker's reusable scratch; it is discarded after
    /// a panic (its invariants can no longer be trusted).
    ///
    /// With a [`RetryPolicy`], *transient* faults (isolated panics,
    /// wall-clock deadline misses) are re-attempted on the same rung —
    /// with exponential deterministically-jittered backoff — before any
    /// fidelity is given up to the degrade ladder. Deterministic budget
    /// exhaustion (subgraph/frontier caps) is never retried: re-running it
    /// reproduces the identical exhaustion.
    fn census_root(
        &self,
        root: NodeId,
        holder: &mut Option<CensusScratch>,
        cancel: Option<&CancelToken>,
        chaos: Option<&dyn ChaosHook>,
    ) -> RootResult {
        let mut total_attempts: u32 = 0;
        for (rung, engine) in self.engines.iter().enumerate() {
            let mut tries: u32 = 0;
            loop {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return (None, RootOutcome::Cancelled);
                }
                tries += 1;
                total_attempts += 1;
                let budget = self.policy.attempt_budget();
                // Ladder steps only shrink emax/dmax, never the alphabet or
                // column layout, so one scratch fits every engine.
                let scratch = holder.get_or_insert_with(|| self.engines[0].make_scratch());
                let attempt_run = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(error) = chaos.and_then(|hook| hook.inject(root, rung)) {
                        return Err(error);
                    }
                    engine.census_encodings_budgeted(root, scratch, &budget, cancel)
                }));
                let error = match attempt_run {
                    Ok(Ok(census)) => {
                        let outcome = if rung == 0 {
                            RootOutcome::Exact {
                                attempts: total_attempts,
                            }
                        } else {
                            RootOutcome::Degraded {
                                dmax: engine.config().dmax,
                                emax: engine.config().emax,
                                rung: rung as u8,
                                attempts: total_attempts,
                            }
                        };
                        return (Some(census.counts), outcome);
                    }
                    Ok(Err(CensusError::Cancelled { .. })) => {
                        return (None, RootOutcome::Cancelled);
                    }
                    Ok(Err(error)) => error,
                    Err(payload) => {
                        // The scratch may hold arbitrary partial state:
                        // drop it so the next attempt starts from a fresh
                        // one.
                        *holder = None;
                        CensusError::WorkerPanicked {
                            root: root.raw(),
                            message: panic_message(payload.as_ref()),
                        }
                    }
                };
                if is_transient(&error) {
                    if let Some(retry) = &self.policy.retry {
                        if tries < retry.max_attempts && self.try_spend_retry(retry) {
                            self.obs.incr(Metric::RetryAttempts);
                            let pause = retry.backoff(root.raw(), rung as u32, tries);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                            continue;
                        }
                    }
                }
                match error {
                    CensusError::BudgetExhausted { .. } if rung + 1 < self.engines.len() => {
                        self.obs.incr(Metric::DegradeAttempts);
                        break; // next rung
                    }
                    error => return (None, RootOutcome::Failed { error }),
                }
            }
        }
        unreachable!("the final ladder attempt always returns");
    }

    fn assemble(&self, roots: &[NodeId], results: Vec<RootResult>) -> PartialExtraction {
        let mut censuses = Vec::with_capacity(results.len());
        let mut outcomes = Vec::with_capacity(results.len());
        for (counts, outcome) in results {
            let metric = match &outcome {
                RootOutcome::Exact { .. } => Metric::RootsExact,
                RootOutcome::Degraded { .. } => Metric::RootsDegraded,
                RootOutcome::Failed { .. } => Metric::RootsFailed,
                RootOutcome::Cancelled => Metric::RootsCancelled,
            };
            self.obs.incr(metric);
            censuses.push(counts.unwrap_or_default());
            outcomes.push(outcome);
        }
        let matrix = self.obs.phase("feature-matrix", || {
            FeatureMatrix::from_censuses(roots.to_vec(), censuses)
        });
        PartialExtraction { matrix, outcomes }
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, LabelSet};

    use super::*;

    fn test_graph() -> HetGraph {
        let labels = LabelSet::from_names(["a", "b", "c"]).unwrap();
        generators::barabasi_albert(labels, &[1.0, 1.0, 1.0], 150, 3, 23).unwrap()
    }

    /// A row's counts keyed by encoding bytes, sorted — interning order
    /// differs between runs that saw different encoding sets, so rows are
    /// compared in this space-independent form. Census counts are integral.
    fn row_census(p: &PartialExtraction, i: usize) -> Vec<(Vec<u8>, u64)> {
        let mut row: Vec<(Vec<u8>, u64)> = p
            .matrix
            .row(i)
            .iter()
            .map(|&(f, v)| (p.matrix.space().key(f).as_bytes().to_vec(), v as u64))
            .collect();
        row.sort();
        row
    }

    #[test]
    fn unbounded_supervisor_matches_plain_extraction() {
        let graph = test_graph();
        let config = CensusConfig::default().with_emax(3);
        let sup = Supervisor::new(&graph, config.clone(), ExtractionPolicy::default()).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(9).collect();
        let partial = sup.extract(&roots, 3);
        assert!(partial.is_complete());
        let engine = CensusEngine::new(&graph, config).unwrap();
        let plain = crate::parallel::extract_feature_matrix(&engine, &roots, 1).unwrap();
        assert_eq!(partial.matrix.row_count(), plain.row_count());
        for i in 0..roots.len() {
            let mut b: Vec<(Vec<u8>, u64)> = plain
                .row(i)
                .iter()
                .map(|&(f, v)| (plain.space().key(f).as_bytes().to_vec(), v as u64))
                .collect();
            b.sort();
            assert_eq!(row_census(&partial, i), b, "row {i} differs");
        }
    }

    #[test]
    fn ladder_is_deterministic_and_strictly_cheaper() {
        let shape = |cfgs: &[CensusConfig]| -> Vec<(usize, Option<u32>)> {
            cfgs.iter().map(|c| (c.emax, c.dmax)).collect()
        };
        let base = CensusConfig::default().with_emax(5);
        let ladder = degrade_ladder(&base);
        assert_eq!(shape(&ladder), shape(&degrade_ladder(&base)));
        assert!(!ladder.is_empty());
        // Each rung must shrink emax or strictly tighten dmax — compared
        // over Option<u32> directly, so an unlimited base (None) is not
        // conflated with a base capped at exactly u32::MAX.
        let mut prev = (base.emax, base.dmax);
        for step in &ladder {
            let cur = (step.emax, step.dmax);
            assert!(
                cur.0 < prev.0 || (cur.0 == prev.0 && dmax_strictly_tighter(cur.1, prev.1)),
                "ladder must strictly tighten: {prev:?} -> {cur:?}"
            );
            assert_eq!(step.hash_seed, base.hash_seed);
            assert_eq!(step.mask_root_label, base.mask_root_label);
            prev = cur;
        }
        // An already-tight base yields a short (possibly empty) ladder.
        let tight = CensusConfig::default().with_emax(2).with_dmax(Some(3));
        assert!(degrade_ladder(&tight).is_empty());
    }

    #[test]
    fn ladder_treats_dmax_u32_max_as_a_real_cap() {
        // Regression: dmax = Some(u32::MAX) used to collapse into the
        // unwrap_or(u32::MAX) sentinel for "unlimited", making the two
        // indistinguishable. A u32::MAX cap is bounded, and every rung must
        // still strictly tighten under the Option-aware comparison.
        let capped = CensusConfig::default()
            .with_emax(4)
            .with_dmax(Some(u32::MAX));
        let unlimited = CensusConfig::default().with_emax(4);
        let capped_ladder = degrade_ladder(&capped);
        let unlimited_ladder = degrade_ladder(&unlimited);
        assert!(!capped_ladder.is_empty());
        let shape = |cfgs: &[CensusConfig]| -> Vec<(usize, Option<u32>)> {
            cfgs.iter().map(|c| (c.emax, c.dmax)).collect()
        };
        // Both ladders tighten to the same finite rungs (16, then 4, then
        // emax reductions at dmax 4) because 16 < u32::MAX and 16 tightens
        // an unlimited base too.
        assert_eq!(shape(&capped_ladder), shape(&unlimited_ladder));
        let mut prev = (capped.emax, capped.dmax);
        for step in &capped_ladder {
            let cur = (step.emax, step.dmax);
            assert!(
                cur.0 < prev.0 || (cur.0 == prev.0 && dmax_strictly_tighter(cur.1, prev.1)),
                "rung {cur:?} does not tighten {prev:?}"
            );
            prev = cur;
        }
        // The helper itself: a finite cap tightens None, None tightens
        // nothing, and Some(u32::MAX) is not treated as unlimited.
        assert!(dmax_strictly_tighter(Some(u32::MAX), None));
        assert!(!dmax_strictly_tighter(None, Some(u32::MAX)));
        assert!(!dmax_strictly_tighter(Some(u32::MAX), Some(u32::MAX)));
        assert!(dmax_strictly_tighter(Some(16), Some(u32::MAX)));
    }

    #[test]
    fn over_budget_root_degrades_deterministically() {
        let graph = test_graph();
        // Find the busiest root so the budget reliably trips.
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        let mut worst = (NodeId::new(0), 0u64);
        for v in graph.nodes() {
            let total: u64 = engine
                .census_encodings(v, &mut scratch)
                .unwrap()
                .counts
                .values()
                .sum();
            if total > worst.1 {
                worst = (v, total);
            }
        }
        let policy = ExtractionPolicy {
            max_subgraphs: Some(worst.1 / 2),
            degrade: true,
            ..ExtractionPolicy::default()
        };
        let sup = Supervisor::new(&graph, CensusConfig::default().with_emax(4), policy).unwrap();
        let a = sup.extract(&[worst.0], 1);
        let b = sup.extract(&[worst.0], 4);
        assert!(matches!(
            a.outcomes[0],
            RootOutcome::Degraded { .. } | RootOutcome::Failed { .. }
        ));
        assert_eq!(a.outcomes, b.outcomes, "outcomes depend on thread count");
        assert_eq!(row_census(&a, 0), row_census(&b, 0));
    }

    #[test]
    fn without_degrade_over_budget_root_fails() {
        let graph = test_graph();
        let policy = ExtractionPolicy {
            max_subgraphs: Some(1),
            degrade: false,
            ..ExtractionPolicy::default()
        };
        let sup = Supervisor::new(&graph, CensusConfig::default().with_emax(4), policy).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(4).collect();
        let partial = sup.extract(&roots, 2);
        let (_, _, failed, _) = partial.tally();
        assert!(failed > 0);
        for (_, outcome) in partial.anomalies() {
            assert!(matches!(
                outcome,
                RootOutcome::Failed {
                    error: CensusError::BudgetExhausted { .. }
                }
            ));
        }
    }

    struct PanicOn(u32);
    impl ChaosHook for PanicOn {
        fn inject(&self, root: NodeId, _attempt: usize) -> Option<CensusError> {
            if root.raw() == self.0 {
                panic!("chaos: injected fault on root {}", self.0);
            }
            None
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_other_rows_survive() {
        let graph = test_graph();
        let sup = Supervisor::new(
            &graph,
            CensusConfig::default().with_emax(3),
            ExtractionPolicy::default(),
        )
        .unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(20).collect();
        let chaos = PanicOn(roots[7].raw());
        let faulted = sup.extract_with(&roots, 4, None, Some(&chaos), SchedulerKind::Cursor);
        let clean = sup.extract(&roots, 1);
        let (exact, _, failed, _) = faulted.tally();
        assert_eq!(failed, 1);
        assert_eq!(exact, roots.len() - 1);
        assert!(matches!(
            &faulted.outcomes[7],
            RootOutcome::Failed {
                error: CensusError::WorkerPanicked { message, .. }
            } if message.contains("chaos")
        ));
        for i in 0..roots.len() {
            if i == 7 {
                assert!(faulted.matrix.row(i).is_empty());
            } else {
                assert_eq!(row_census(&faulted, i), row_census(&clean, i));
            }
        }
        // The exact-only matrix drops exactly the faulted row.
        assert_eq!(faulted.exact_matrix().row_count(), roots.len() - 1);
    }

    /// A star hub wide enough to split, with mixed-label spokes on a ring.
    fn hub_graph(spokes: usize) -> HetGraph {
        use hsgf_graph::{GraphBuilder, Label};
        let labels = LabelSet::from_names(["hub", "x", "y", "z"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let hub = b.add_node_with(Label::new(0)).unwrap();
        let mut spoke_ids = Vec::new();
        for i in 0..spokes {
            let s = b.add_node_with(Label::new(1 + (i % 3) as u8)).unwrap();
            b.add_edge(hub, s).unwrap();
            spoke_ids.push(s);
        }
        for i in 0..spokes {
            b.add_edge(spoke_ids[i], spoke_ids[(i + 1) % spokes])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn stealing_supervisor_matches_cursor_exactly() {
        let graph = hub_graph(SPLIT_WIDTH + 12);
        let sup = Supervisor::new(
            &graph,
            CensusConfig::default().with_emax(3),
            ExtractionPolicy::default(),
        )
        .unwrap();
        let roots: Vec<NodeId> = graph.nodes().collect();
        let cursor = sup.extract_scheduled(&roots, 4, SchedulerKind::Cursor);
        let stealing = sup.extract_scheduled(&roots, 4, SchedulerKind::Stealing);
        assert_eq!(cursor.outcomes, stealing.outcomes);
        assert!(stealing.is_complete());
        for i in 0..roots.len() {
            assert_eq!(row_census(&cursor, i), row_census(&stealing, i), "row {i}");
        }
    }

    #[test]
    fn stealing_supervisor_outcomes_survive_tight_budgets() {
        // The hub root exceeds the subgraph cap; leaf roots fit. Sharded
        // base attempts must exhaust the pooled cap and fall back to the
        // sequential ladder, reproducing cursor outcomes exactly.
        let graph = hub_graph(SPLIT_WIDTH + 12);
        let policy = ExtractionPolicy {
            max_subgraphs: Some(2_000),
            degrade: true,
            ..ExtractionPolicy::default()
        };
        let sup = Supervisor::new(&graph, CensusConfig::default().with_emax(3), policy).unwrap();
        let roots: Vec<NodeId> = graph.nodes().collect();
        let reference = sup.extract(&roots, 1);
        let (_, degraded, _, _) = reference.tally();
        assert!(degraded > 0, "budget never tripped — test graph too small");
        for threads in [2, 8] {
            let stealing = sup.extract_scheduled(&roots, threads, SchedulerKind::Stealing);
            assert_eq!(reference.outcomes, stealing.outcomes, "threads={threads}");
            for i in 0..roots.len() {
                assert_eq!(
                    row_census(&reference, i),
                    row_census(&stealing, i),
                    "threads={threads} row {i}"
                );
            }
        }
    }

    #[test]
    fn stealing_supervisor_with_chaos_matches_cursor() {
        // Chaos hooks suppress sharding; injected faults must land on the
        // same roots with the same outcomes under both schedulers.
        let graph = test_graph();
        let sup = Supervisor::new(
            &graph,
            CensusConfig::default().with_emax(3),
            ExtractionPolicy::default(),
        )
        .unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(20).collect();
        let chaos = PanicOn(roots[7].raw());
        let cursor = sup.extract_with(&roots, 4, None, Some(&chaos), SchedulerKind::Cursor);
        let stealing = sup.extract_with(&roots, 4, None, Some(&chaos), SchedulerKind::Stealing);
        assert_eq!(cursor.outcomes, stealing.outcomes);
        for i in 0..roots.len() {
            assert_eq!(row_census(&cursor, i), row_census(&stealing, i), "row {i}");
        }
    }

    #[test]
    fn cancellation_keeps_finished_work() {
        let graph = test_graph();
        let sup = Supervisor::new(
            &graph,
            CensusConfig::default().with_emax(3),
            ExtractionPolicy::default(),
        )
        .unwrap();
        let roots: Vec<NodeId> = graph.nodes().collect();
        struct CancelAfter<'a>(&'a CancelToken, u32);
        impl ChaosHook for CancelAfter<'_> {
            fn inject(&self, root: NodeId, _attempt: usize) -> Option<CensusError> {
                if root.raw() >= self.1 {
                    self.0.cancel();
                }
                None
            }
        }
        let token = CancelToken::new();
        let chaos = CancelAfter(&token, roots[roots.len() / 2].raw());
        let partial =
            sup.extract_with(&roots, 1, Some(&token), Some(&chaos), SchedulerKind::Cursor);
        let (exact, _, failed, cancelled) = partial.tally();
        assert_eq!(failed, 0);
        assert!(exact > 0, "work finished before the cancel must survive");
        assert!(cancelled > 0, "roots after the cancel must be marked");
        assert_eq!(exact + cancelled, roots.len());
    }

    #[test]
    fn cached_supervised_matches_uncached_and_reuses_degraded_rows() {
        let graph = test_graph();
        let policy = ExtractionPolicy {
            max_subgraphs: Some(300),
            degrade: true,
            ..ExtractionPolicy::default()
        };
        let sup = Supervisor::new(&graph, CensusConfig::default().with_emax(4), policy).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(11).collect();
        let plain = sup.extract_scheduled(&roots, 2, SchedulerKind::Cursor);
        let (_, degraded, _, _) = plain.tally();
        assert!(degraded > 0, "budget must clip some roots for this test");
        let cache = CensusCache::in_memory();
        let cold = sup.extract_cached(&roots, 2, SchedulerKind::Cursor, &cache);
        assert_eq!(plain.outcomes, cold.outcomes);
        let warm = sup.extract_cached(&roots, 2, SchedulerKind::Stealing, &cache);
        assert_eq!(plain.outcomes, warm.outcomes);
        for i in 0..roots.len() {
            assert_eq!(row_census(&plain, i), row_census(&cold, i), "cold row {i}");
            assert_eq!(row_census(&plain, i), row_census(&warm, i), "warm row {i}");
        }
        // Degraded rows are cacheable at their ladder level: the warm run
        // was all hits, one logical hit per root.
        let stats = cache.stats();
        assert_eq!(stats.hits, roots.len() as u64);
        assert_eq!(stats.misses, roots.len() as u64);
    }

    #[test]
    fn chaos_poisoned_roots_never_pollute_the_cache() {
        let graph = test_graph();
        let sup = Supervisor::new(
            &graph,
            CensusConfig::default().with_emax(3),
            ExtractionPolicy::default(),
        )
        .unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(12).collect();
        let chaos = PanicOn(roots[5].raw());
        let cache = CensusCache::in_memory();
        let faulted =
            sup.extract_cached_with(&roots, 2, None, Some(&chaos), SchedulerKind::Cursor, &cache);
        let (_, _, failed, _) = faulted.tally();
        assert_eq!(failed, 1);
        assert_eq!(cache.entry_count(), roots.len() - 1, "failed root stored");
        // Without the fault, the poisoned root misses (nothing was cached
        // for it) and recomputes correctly; everyone else hits.
        let healed = sup.extract_cached(&roots, 2, SchedulerKind::Cursor, &cache);
        assert!(healed.is_complete());
        let clean = sup.extract(&roots, 1);
        for i in 0..roots.len() {
            assert_eq!(row_census(&clean, i), row_census(&healed, i), "row {i}");
        }
    }

    #[test]
    fn timeout_policies_bypass_the_cache() {
        let graph = test_graph();
        let policy = ExtractionPolicy {
            root_timeout: Some(Duration::from_secs(3600)),
            ..ExtractionPolicy::default()
        };
        let sup = Supervisor::new(&graph, CensusConfig::default().with_emax(3), policy).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(6).collect();
        let cache = CensusCache::in_memory();
        let partial = sup.extract_cached(&roots, 1, SchedulerKind::Cursor, &cache);
        assert!(partial.is_complete());
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.stats(), crate::cache::CacheStats::default());
    }
}
