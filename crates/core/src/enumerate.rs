//! Exhaustive enumeration of small connected labelled graphs up to
//! isomorphism, and the encoding-collision analysis of paper §3.1.
//!
//! The paper derives the encoding's uniqueness limits ("the maximum number
//! of edges that a subgraph may contain to ensure unique encodings is
//! emax = 5 for graphs without loops in the label connectivity graph and
//! emax = 4 for graphs with loops") by enumerating all non-isomorphic
//! labelled graphs and pairwise-checking their encodings. This module
//! reproduces that derivation (experiment E1): [`enumerate_connected`]
//! grows every canonical form breadth-first by edge additions, and
//! [`collision_report`] groups the result by encoding.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::budget::{BudgetKind, BudgetState, CancelToken, CensusBudget, Stop};
use crate::sequence::Encoding;
use crate::small::SmallGraph;

/// Configuration for [`enumerate_connected`].
#[derive(Clone, Debug)]
pub struct EnumerationConfig {
    /// Size of the label alphabet.
    pub label_count: usize,
    /// Maximum number of edges per graph.
    pub max_edges: usize,
    /// Optional symmetric label-pair mask: `allowed[a][b] == false` forbids
    /// edges between labels `a` and `b`. `None` allows every pair
    /// (a complete label connectivity graph with all self loops).
    pub allowed_pairs: Option<Vec<Vec<bool>>>,
}

impl EnumerationConfig {
    /// All label pairs allowed (LCG complete, with self loops).
    pub fn unrestricted(label_count: usize, max_edges: usize) -> Self {
        EnumerationConfig {
            label_count,
            max_edges,
            allowed_pairs: None,
        }
    }

    /// Forbids same-label edges only (loop-free LCG, complete otherwise).
    pub fn loop_free(label_count: usize, max_edges: usize) -> Self {
        let allowed = (0..label_count)
            .map(|a| (0..label_count).map(|b| a != b).collect())
            .collect();
        EnumerationConfig {
            label_count,
            max_edges,
            allowed_pairs: Some(allowed),
        }
    }

    fn pair_allowed(&self, a: u8, b: u8) -> bool {
        match &self.allowed_pairs {
            None => true,
            Some(m) => m[a as usize][b as usize],
        }
    }
}

/// Why a budgeted enumeration returned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EnumerationStatus {
    /// Every canonical form within `max_edges` was produced.
    Complete,
    /// A budget dimension ran out; the graph list is a prefix of the full
    /// enumeration's discovery order (deterministic for the subgraph cap).
    Truncated(BudgetKind),
    /// The cancel token fired mid-enumeration.
    Cancelled,
}

/// Result of [`enumerate_connected_budgeted`].
#[derive(Clone, Debug)]
pub struct EnumerationOutcome {
    /// The canonical forms discovered, ordered by `(edge_count, node_count)`
    /// then canonical order (complete within that ordering only when
    /// `status` is [`EnumerationStatus::Complete`]).
    pub graphs: Vec<SmallGraph>,
    /// How the enumeration concluded.
    pub status: EnumerationStatus,
}

impl EnumerationOutcome {
    /// Whether the enumeration ran to completion.
    pub fn is_complete(&self) -> bool {
        self.status == EnumerationStatus::Complete
    }
}

/// Enumerates every connected labelled graph with between 1 and
/// `config.max_edges` edges (plus the single-node graphs), up to
/// isomorphism. Returned graphs are canonical forms, ordered by
/// `(edge_count, node_count)` then canonical order.
pub fn enumerate_connected(config: &EnumerationConfig) -> Vec<SmallGraph> {
    enumerate_connected_budgeted(config, &CensusBudget::unlimited(), None).graphs
}

/// [`enumerate_connected`] under a resource budget with cooperative
/// cancellation. The budget dimensions map naturally: `max_subgraphs` caps
/// the number of distinct canonical forms produced, `max_frontier` caps the
/// breadth-first frontier between edge levels, and `deadline`/`cancel` are
/// polled inside the inner successor loop. Enumeration stops cleanly at the
/// first exhausted dimension and reports what was found so far.
pub fn enumerate_connected_budgeted(
    config: &EnumerationConfig,
    budget: &CensusBudget,
    cancel: Option<&CancelToken>,
) -> EnumerationOutcome {
    let mut state = BudgetState::new(budget, cancel);
    let mut status = EnumerationStatus::Complete;
    let mut all: HashSet<SmallGraph> = HashSet::new();
    let mut frontier: Vec<SmallGraph> = Vec::new();
    'grow: {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            status = EnumerationStatus::Cancelled;
            break 'grow;
        }
        for l in 0..config.label_count as u8 {
            let g = SmallGraph::new(vec![l], &[]).canonical();
            if !all.contains(&g) {
                if let Err(stop) = state.on_record(1) {
                    status = stop_status(stop);
                    break 'grow;
                }
                all.insert(g.clone());
                frontier.push(g);
            }
        }
        for _edges in 1..=config.max_edges {
            // Per-level cancellation check: the in-loop poll is amortized
            // over 1024 records, too coarse for small enumerations.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                status = EnumerationStatus::Cancelled;
                break 'grow;
            }
            let mut next: Vec<SmallGraph> = Vec::new();
            for g in &frontier {
                for succ in successors(g, config) {
                    if !all.contains(&succ) {
                        if let Err(stop) = state.on_record(1) {
                            status = stop_status(stop);
                            break 'grow;
                        }
                        all.insert(succ.clone());
                        next.push(succ);
                    }
                }
            }
            if let Err(stop) = state.check_frontier(next.len()) {
                status = stop_status(stop);
                break 'grow;
            }
            frontier = next;
        }
    }
    // hsgf-lint: allow(det-hash-iter, drained into a Vec and fully sorted immediately below)
    let mut graphs: Vec<SmallGraph> = all.into_iter().collect();
    graphs.sort_by(|a, b| {
        (a.edge_count(), a.node_count())
            .cmp(&(b.edge_count(), b.node_count()))
            .then_with(|| a.cmp(b))
    });
    EnumerationOutcome { graphs, status }
}

fn stop_status(stop: Stop) -> EnumerationStatus {
    match stop {
        Stop::Budget(kind) => EnumerationStatus::Truncated(kind),
        Stop::Cancelled => EnumerationStatus::Cancelled,
    }
}

/// All canonical one-edge extensions of `g`: close a missing pair, or attach
/// a new node of each label to each existing node.
fn successors(g: &SmallGraph, config: &EnumerationConfig) -> Vec<SmallGraph> {
    let n = g.node_count();
    let mut out = Vec::new();
    let labels = g.labels().to_vec();
    let mut edges = g.edges();
    // (a) add a missing edge between existing nodes.
    for i in 0..n {
        for j in (i + 1)..n {
            if !g.has_edge(i, j) && config.pair_allowed(labels[i], labels[j]) {
                edges.push((i as u8, j as u8));
                out.push(SmallGraph::new(labels.clone(), &edges).canonical());
                edges.pop();
            }
        }
    }
    // (b) attach a fresh node of each label to each existing node.
    if n < crate::small::MAX_SMALL_NODES {
        for l in 0..config.label_count as u8 {
            let mut labels2 = labels.clone();
            labels2.push(l);
            for i in 0..n {
                if config.pair_allowed(labels[i], l) {
                    edges.push((i as u8, n as u8));
                    out.push(SmallGraph::new(labels2.clone(), &edges).canonical());
                    edges.pop();
                }
            }
        }
    }
    out
}

/// Statistics for one edge-count class of the collision analysis.
#[derive(Clone, Debug)]
pub struct EdgeClassStats {
    /// Number of edges in this class.
    pub edges: usize,
    /// Non-isomorphic graphs enumerated.
    pub graphs: usize,
    /// Distinct characteristic-sequence encodings among them.
    pub distinct_encodings: usize,
    /// Unordered pairs of non-isomorphic graphs sharing an encoding.
    pub colliding_pairs: usize,
    /// One witness collision, if any (two non-isomorphic graphs with the
    /// same encoding — the paper's Fig. 1C).
    pub example: Option<(SmallGraph, SmallGraph)>,
}

/// Full collision report over an enumeration result.
#[derive(Clone, Debug)]
pub struct CollisionReport {
    /// Per-edge-count statistics, index 0 = graphs with 0 edges.
    pub classes: Vec<EdgeClassStats>,
}

impl CollisionReport {
    /// The largest `e` such that every class with `edges ≤ e` is
    /// collision-free, i.e. the verified unique-encoding bound.
    pub fn unique_up_to_edges(&self) -> usize {
        let mut bound = 0;
        for class in &self.classes {
            if class.colliding_pairs > 0 {
                break;
            }
            bound = class.edges;
        }
        bound
    }
}

/// Groups non-isomorphic graphs by encoding, per edge count.
///
/// `graphs` must already be pairwise non-isomorphic (canonical forms from
/// [`enumerate_connected`]); any encoding shared by two entries is then a
/// genuine collision.
pub fn collision_report(graphs: &[SmallGraph], label_count: usize) -> CollisionReport {
    let max_edges = graphs.iter().map(SmallGraph::edge_count).max().unwrap_or(0);
    let mut classes: Vec<EdgeClassStats> = (0..=max_edges)
        .map(|e| EdgeClassStats {
            edges: e,
            graphs: 0,
            distinct_encodings: 0,
            colliding_pairs: 0,
            example: None,
        })
        .collect();
    let mut by_encoding: Vec<HashMap<Encoding, Vec<&SmallGraph>>> =
        vec![HashMap::new(); max_edges + 1];
    for g in graphs {
        let e = g.edge_count();
        classes[e].graphs += 1;
        by_encoding[e]
            .entry(g.encoding(label_count))
            .or_default()
            .push(g);
    }
    for (e, map) in by_encoding.iter().enumerate() {
        classes[e].distinct_encodings = map.len();
        for group in map.values() {
            let k = group.len();
            if k > 1 {
                classes[e].colliding_pairs += k * (k - 1) / 2;
                if classes[e].example.is_none() {
                    classes[e].example = Some((group[0].clone(), group[1].clone()));
                }
            }
        }
    }
    CollisionReport { classes }
}

/// Searches for a small graph whose encoding matches `target`, growing
/// candidates breadth-first. Used to render the discriminative subgraphs of
/// Fig. 4 from their feature encodings. `budget` caps the number of
/// canonical forms visited; returns `None` when exhausted.
pub fn find_realization(
    target: &Encoding,
    label_count: usize,
    budget: usize,
) -> Option<SmallGraph> {
    let want_nodes = target.node_count();
    let want_edges = target.edge_count();
    let mut label_multiset: Vec<u8> = target.rows().map(|r| r[0]).collect();
    label_multiset.sort_unstable();

    let config = EnumerationConfig::unrestricted(label_count, want_edges);
    let mut all: HashSet<SmallGraph> = HashSet::new();
    let mut frontier: Vec<SmallGraph> = Vec::new();
    for l in 0..label_count as u8 {
        // Only seed labels present in the target.
        if label_multiset.contains(&l) {
            let g = SmallGraph::new(vec![l], &[]).canonical();
            if all.insert(g.clone()) {
                frontier.push(g);
            }
        }
    }
    let mut visited = 0usize;
    for _ in 1..=want_edges {
        let mut next = Vec::new();
        for g in &frontier {
            for succ in successors(g, &config) {
                visited += 1;
                if visited > budget {
                    return None;
                }
                // Prune: label multiset must stay a sub-multiset of the
                // target, node count must not exceed it.
                if succ.node_count() > want_nodes {
                    continue;
                }
                if !is_sub_multiset(succ.labels(), &label_multiset) {
                    continue;
                }
                if succ.edge_count() == want_edges
                    && succ.node_count() == want_nodes
                    && &succ.encoding(label_count) == target
                {
                    return Some(succ);
                }
                if all.insert(succ.clone()) {
                    next.push(succ);
                }
            }
        }
        frontier = next;
    }
    None
}

fn is_sub_multiset(labels: &[u8], sorted_target: &[u8]) -> bool {
    let mut counts = [0i32; 256];
    for &l in sorted_target {
        counts[l as usize] += 1;
    }
    for &l in labels {
        counts[l as usize] -= 1;
        if counts[l as usize] < 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_for_single_label_tiny_graphs() {
        // Connected unlabeled graphs: 0 edges: 1 (the single node);
        // 1 edge: 1 (K2); 2 edges: 1 (P3); 3 edges: 3 (P4, star K1,3, C3).
        let graphs = enumerate_connected(&EnumerationConfig::unrestricted(1, 3));
        let count_with = |e: usize| graphs.iter().filter(|g| g.edge_count() == e).count();
        assert_eq!(count_with(0), 1);
        assert_eq!(count_with(1), 1);
        assert_eq!(count_with(2), 1);
        assert_eq!(count_with(3), 3);
    }

    #[test]
    fn counts_for_two_labels_one_edge() {
        // Labelled K2 over {a, b}: aa, ab, bb → 3 graphs with 1 edge,
        // 2 single-node graphs.
        let graphs = enumerate_connected(&EnumerationConfig::unrestricted(2, 1));
        assert_eq!(graphs.iter().filter(|g| g.edge_count() == 0).count(), 2);
        assert_eq!(graphs.iter().filter(|g| g.edge_count() == 1).count(), 3);
    }

    #[test]
    fn loop_free_excludes_same_label_edges() {
        let graphs = enumerate_connected(&EnumerationConfig::loop_free(2, 2));
        for g in &graphs {
            for (u, v) in g.edges() {
                assert_ne!(
                    g.labels()[u as usize],
                    g.labels()[v as usize],
                    "loop-free enumeration produced a same-label edge"
                );
            }
        }
        // One edge: only ab. Two edges: paths aba, bab → 2.
        assert_eq!(graphs.iter().filter(|g| g.edge_count() == 1).count(), 1);
        assert_eq!(graphs.iter().filter(|g| g.edge_count() == 2).count(), 2);
    }

    #[test]
    fn all_results_are_connected_canonical_and_distinct() {
        let graphs = enumerate_connected(&EnumerationConfig::unrestricted(2, 4));
        let mut seen = HashSet::new();
        for g in &graphs {
            assert!(g.is_connected());
            assert_eq!(&g.canonical(), g, "enumeration must yield canonical forms");
            assert!(seen.insert(g.clone()), "duplicate canonical form");
        }
    }

    #[test]
    fn no_collisions_up_to_four_edges_single_label() {
        // The weaker (with-loops) bound of §3.1: encodings are unique up to
        // 4 edges even when the LCG has self loops. Single label = the
        // all-loops worst case.
        let graphs = enumerate_connected(&EnumerationConfig::unrestricted(1, 4));
        let report = collision_report(&graphs, 1);
        assert!(report.unique_up_to_edges() >= 4, "report: {report:?}");
    }

    #[test]
    fn collision_exists_at_five_edges_single_label() {
        // With LCG loops the bound is exactly 4: some pair of 5-edge
        // graphs must collide (paper Fig. 1C left).
        let graphs = enumerate_connected(&EnumerationConfig::unrestricted(1, 5));
        let report = collision_report(&graphs, 1);
        assert_eq!(report.unique_up_to_edges(), 4);
        let class5 = &report.classes[5];
        assert!(class5.colliding_pairs > 0);
        let (a, b) = class5.example.as_ref().unwrap();
        assert!(
            !a.is_isomorphic(b),
            "collision witnesses must be non-isomorphic"
        );
        assert_eq!(a.encoding(1), b.encoding(1));
    }

    #[test]
    fn realization_search_recovers_a_path() {
        let target = SmallGraph::new(vec![0, 1, 0], &[(0, 1), (1, 2)]).encoding(2);
        let found = find_realization(&target, 2, 100_000).expect("path is realizable");
        assert_eq!(found.encoding(2), target);
        assert_eq!(found.edge_count(), 2);
    }

    #[test]
    fn realization_respects_budget() {
        let target = SmallGraph::new(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]).encoding(1);
        assert!(find_realization(&target, 1, 1).is_none());
    }

    #[test]
    fn unlimited_budget_matches_plain_enumeration() {
        let config = EnumerationConfig::unrestricted(2, 3);
        let plain = enumerate_connected(&config);
        let outcome = enumerate_connected_budgeted(&config, &CensusBudget::unlimited(), None);
        assert!(outcome.is_complete());
        assert_eq!(outcome.graphs, plain);
    }

    #[test]
    fn graph_cap_truncates_deterministically() {
        let config = EnumerationConfig::unrestricted(2, 4);
        let full = enumerate_connected(&config).len();
        let cap = (full / 2) as u64;
        let budget = CensusBudget::unlimited().with_max_subgraphs(cap);
        let a = enumerate_connected_budgeted(&config, &budget, None);
        let b = enumerate_connected_budgeted(&config, &budget, None);
        assert_eq!(
            a.status,
            EnumerationStatus::Truncated(BudgetKind::Subgraphs)
        );
        assert_eq!(a.graphs.len(), cap as usize, "cap must be exact");
        assert_eq!(a.graphs, b.graphs, "truncation must be deterministic");
    }

    #[test]
    fn cancelled_token_stops_enumeration_early() {
        let token = CancelToken::new();
        token.cancel();
        let config = EnumerationConfig::unrestricted(2, 4);
        let outcome =
            enumerate_connected_budgeted(&config, &CensusBudget::unlimited(), Some(&token));
        assert_eq!(outcome.status, EnumerationStatus::Cancelled);
        assert!(outcome.graphs.len() < enumerate_connected(&config).len());
    }
}
