//! Feature-matrix export: CSV and JSON for downstream tooling, a TSV
//! vocabulary listing, and JSON summaries of graph statistics. The paper's
//! original pipeline handed features to Python/scikit-learn; these writers
//! keep that workflow available. All serialization is hand-rolled via
//! [`crate::json`] — the workspace carries no serde.

use std::io::Write;

use hsgf_graph::{DegreeStats, HetGraph, LabelConnectivityGraph, LabelSet};

use crate::features::FeatureMatrix;
use crate::json::{JsonArray, JsonObject};

/// Writes the matrix as CSV: a header row of rendered encodings (using the
/// given label names) followed by one dense row per root. The first column
/// is the root node id.
pub fn write_csv<W: Write>(
    matrix: &FeatureMatrix,
    labels: &LabelSet,
    mut out: W,
) -> std::io::Result<()> {
    write!(out, "node")?;
    for (_, encoding) in matrix.space().iter() {
        write!(out, ",{}", encoding.render(labels))?;
    }
    writeln!(out)?;
    for (i, root) in matrix.roots().iter().enumerate() {
        write!(out, "{}", root.raw())?;
        let row = matrix.row(i);
        let mut cursor = 0usize;
        for f in 0..matrix.feature_count() as u32 {
            let value = if cursor < row.len() && row[cursor].0 == f {
                let v = row[cursor].1;
                cursor += 1;
                v
            } else {
                0.0
            };
            if value == 0.0 {
                write!(out, ",0")?;
            } else if value.fract() == 0.0 && value.abs() < 1e15 {
                write!(out, ",{}", value as i64)?;
            } else {
                write!(out, ",{value}")?;
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes the vocabulary: one line per feature with its index, rendered
/// encoding, node count, edge count, and document frequency.
pub fn write_vocabulary<W: Write>(
    matrix: &FeatureMatrix,
    labels: &LabelSet,
    mut out: W,
) -> std::io::Result<()> {
    let df = matrix.document_frequency();
    writeln!(out, "# index\tencoding\tnodes\tedges\tdoc_freq")?;
    for (idx, encoding) in matrix.space().iter() {
        writeln!(
            out,
            "{idx}\t{}\t{}\t{}\t{}",
            encoding.render(labels),
            encoding.node_count(),
            encoding.edge_count(),
            df[idx as usize]
        )?;
    }
    Ok(())
}

/// CSV rendering to a `String` (convenience for tests and small exports).
pub fn to_csv_string(matrix: &FeatureMatrix, labels: &LabelSet) -> String {
    let mut buf = Vec::new();
    write_csv(matrix, labels, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV is UTF-8")
}

/// Renders the matrix as a JSON document: the vocabulary (rendered
/// encodings in feature order) plus one sparse row per root as
/// `{"node": id, "features": [[index, value], ...]}`.
pub fn matrix_to_json(matrix: &FeatureMatrix, labels: &LabelSet) -> String {
    let mut vocab = JsonArray::new();
    for (_, encoding) in matrix.space().iter() {
        vocab.push_str(&encoding.render(labels));
    }
    let mut rows = JsonArray::new();
    for (i, root) in matrix.roots().iter().enumerate() {
        let mut features = JsonArray::new();
        for &(f, v) in matrix.row(i) {
            let mut pair = JsonArray::new();
            pair.push_uint(f as u64);
            pair.push_num(v);
            features.push_raw(&pair.finish());
        }
        let row = JsonObject::new()
            .uint("node", root.raw() as u64)
            .raw("features", &features.finish())
            .finish();
        rows.push_raw(&row);
    }
    JsonObject::new()
        .uint("rows", matrix.row_count() as u64)
        .uint("features", matrix.feature_count() as u64)
        .raw("vocabulary", &vocab.finish())
        .raw("matrix", &rows.finish())
        .finish()
}

/// Writes [`matrix_to_json`] output to `out`.
pub fn write_json<W: Write>(
    matrix: &FeatureMatrix,
    labels: &LabelSet,
    mut out: W,
) -> std::io::Result<()> {
    out.write_all(matrix_to_json(matrix, labels).as_bytes())
}

/// Renders a graph's degree statistics as JSON (the summary the old serde
/// derive on [`DegreeStats`] was meant to provide).
pub fn degree_stats_to_json(stats: &DegreeStats) -> String {
    let mut histogram = JsonArray::new();
    for (degree, count) in stats.histogram() {
        let mut pair = JsonArray::new();
        pair.push_uint(degree as u64);
        pair.push_uint(count as u64);
        histogram.push_raw(&pair.finish());
    }
    let (p50, p90, p99, max) = stats.percentile_summary();
    JsonObject::new()
        .uint("nodes", stats.node_count() as u64)
        .uint("min_degree", stats.min() as u64)
        .uint("max_degree", max as u64)
        .num("mean_degree", stats.mean())
        .uint("median_degree", stats.median() as u64)
        .uint("degree_p50", p50 as u64)
        .uint("degree_p90", p90 as u64)
        .uint("degree_p99", p99 as u64)
        .num("hub_ratio", stats.hub_ratio())
        .raw("histogram", &histogram.finish())
        .finish()
}

/// Renders a graph-level summary (counts, degree statistics, and the label
/// connectivity structure that decides the collision-free `emax` bound) as
/// JSON — the one-stop dataset characterization the experiments log.
pub fn graph_summary_to_json(graph: &HetGraph) -> String {
    let stats = DegreeStats::of(graph);
    let lcg = LabelConnectivityGraph::of(graph);
    let mut label_names = JsonArray::new();
    for l in graph.labels().labels() {
        label_names.push_str(graph.labels().name(l).unwrap_or("?"));
    }
    let lcg_json = JsonObject::new()
        .uint("labels", lcg.label_count() as u64)
        .uint("meta_edges", lcg.meta_edge_count() as u64)
        .num("density", lcg.density())
        .bool("has_self_loop", lcg.has_any_self_loop())
        .uint("unique_encoding_emax", lcg.unique_encoding_emax() as u64)
        .finish();
    JsonObject::new()
        .uint("nodes", graph.node_count() as u64)
        .uint("edges", graph.edge_count() as u64)
        .raw("labels", &label_names.finish())
        .raw("degrees", &degree_stats_to_json(&stats))
        .raw("lcg", &lcg_json)
        .finish()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use hsgf_graph::{Label, NodeId};

    use crate::sequence::Encoding;

    use super::*;

    fn sample() -> (FeatureMatrix, LabelSet) {
        let labels = LabelSet::from_names(["x", "y"]).unwrap();
        let e1 = Encoding::of_subgraph(2, &[Label::new(0), Label::new(1)], &[(0, 1)]);
        let e2 = Encoding::of_subgraph(2, &[Label::new(0), Label::new(0)], &[(0, 1)]);
        let mut c1 = HashMap::new();
        c1.insert(e1.clone(), 2);
        let mut c2 = HashMap::new();
        c2.insert(e1, 1);
        c2.insert(e2, 7);
        let matrix =
            FeatureMatrix::from_censuses(vec![NodeId::new(3), NodeId::new(8)], vec![c1, c2]);
        (matrix, labels)
    }

    #[test]
    fn csv_has_header_and_dense_rows() {
        let (matrix, labels) = sample();
        let csv = to_csv_string(&matrix, &labels);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("node,"));
        assert_eq!(lines[0].matches(',').count(), matrix.feature_count());
        assert!(lines[1].starts_with("3,"));
        assert!(lines[2].starts_with("8,"));
        // Row 1 has a zero for the second feature.
        assert!(lines[1].ends_with(",0") || lines[1].contains(",0,"));
    }

    #[test]
    fn csv_values_match_matrix() {
        let (matrix, labels) = sample();
        let csv = to_csv_string(&matrix, &labels);
        let lines: Vec<&str> = csv.lines().collect();
        for (i, line) in lines[1..].iter().enumerate() {
            let cells: Vec<&str> = line.split(',').collect();
            for f in 0..matrix.feature_count() {
                let got: f64 = cells[f + 1].parse().unwrap();
                assert_eq!(got, matrix.value(i, f as u32));
            }
        }
    }

    #[test]
    fn vocabulary_lists_every_feature() {
        let (matrix, labels) = sample();
        let mut buf = Vec::new();
        write_vocabulary(&matrix, &labels, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + matrix.feature_count());
        assert!(text.contains("doc_freq"));
    }

    #[test]
    fn matrix_json_carries_vocabulary_and_sparse_rows() {
        let (matrix, labels) = sample();
        let json = matrix_to_json(&matrix, &labels);
        assert!(json.contains("\"rows\":2"));
        assert!(json.contains(&format!("\"features\":{}", matrix.feature_count())));
        assert!(json.contains("\"node\":3"));
        assert!(json.contains("\"node\":8"));
        // Balanced delimiters is a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let mut buf = Vec::new();
        write_json(&matrix, &labels, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), json);
    }

    #[test]
    fn graph_summary_json_reports_structure() {
        use hsgf_graph::GraphBuilder;
        let mut b = GraphBuilder::with_label_names(["a", "b"]).unwrap();
        let n0 = b.add_node("a").unwrap();
        let n1 = b.add_node("b").unwrap();
        let n2 = b.add_node("b").unwrap();
        b.add_edge(n0, n1).unwrap();
        b.add_edge(n1, n2).unwrap();
        let g = b.build();
        let json = graph_summary_to_json(&g);
        assert!(json.contains("\"nodes\":3"));
        assert!(json.contains("\"edges\":2"));
        assert!(json.contains("\"labels\":[\"a\",\"b\"]"));
        // b--b edge means a self loop on the LCG, so emax bound is 4.
        assert!(json.contains("\"has_self_loop\":true"));
        assert!(json.contains("\"unique_encoding_emax\":4"));
        assert!(json.contains("\"max_degree\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
