//! Feature-matrix export: CSV for downstream tooling and a compact text
//! vocabulary listing. The paper's original pipeline handed features to
//! Python/scikit-learn; these writers keep that workflow available.

use std::io::Write;

use hsgf_graph::LabelSet;

use crate::features::FeatureMatrix;

/// Writes the matrix as CSV: a header row of rendered encodings (using the
/// given label names) followed by one dense row per root. The first column
/// is the root node id.
pub fn write_csv<W: Write>(
    matrix: &FeatureMatrix,
    labels: &LabelSet,
    mut out: W,
) -> std::io::Result<()> {
    write!(out, "node")?;
    for (_, encoding) in matrix.space().iter() {
        write!(out, ",{}", encoding.render(labels))?;
    }
    writeln!(out)?;
    for (i, root) in matrix.roots().iter().enumerate() {
        write!(out, "{}", root.raw())?;
        let row = matrix.row(i);
        let mut cursor = 0usize;
        for f in 0..matrix.feature_count() as u32 {
            let value = if cursor < row.len() && row[cursor].0 == f {
                let v = row[cursor].1;
                cursor += 1;
                v
            } else {
                0.0
            };
            if value == 0.0 {
                write!(out, ",0")?;
            } else if value.fract() == 0.0 && value.abs() < 1e15 {
                write!(out, ",{}", value as i64)?;
            } else {
                write!(out, ",{value}")?;
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes the vocabulary: one line per feature with its index, rendered
/// encoding, node count, edge count, and document frequency.
pub fn write_vocabulary<W: Write>(
    matrix: &FeatureMatrix,
    labels: &LabelSet,
    mut out: W,
) -> std::io::Result<()> {
    let df = matrix.document_frequency();
    writeln!(out, "# index\tencoding\tnodes\tedges\tdoc_freq")?;
    for (idx, encoding) in matrix.space().iter() {
        writeln!(
            out,
            "{idx}\t{}\t{}\t{}\t{}",
            encoding.render(labels),
            encoding.node_count(),
            encoding.edge_count(),
            df[idx as usize]
        )?;
    }
    Ok(())
}

/// CSV rendering to a `String` (convenience for tests and small exports).
pub fn to_csv_string(matrix: &FeatureMatrix, labels: &LabelSet) -> String {
    let mut buf = Vec::new();
    write_csv(matrix, labels, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV is UTF-8")
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use hsgf_graph::{Label, NodeId};

    use crate::sequence::Encoding;

    use super::*;

    fn sample() -> (FeatureMatrix, LabelSet) {
        let labels = LabelSet::from_names(["x", "y"]).unwrap();
        let e1 = Encoding::of_subgraph(2, &[Label::new(0), Label::new(1)], &[(0, 1)]);
        let e2 = Encoding::of_subgraph(2, &[Label::new(0), Label::new(0)], &[(0, 1)]);
        let mut c1 = HashMap::new();
        c1.insert(e1.clone(), 2);
        let mut c2 = HashMap::new();
        c2.insert(e1, 1);
        c2.insert(e2, 7);
        let matrix =
            FeatureMatrix::from_censuses(vec![NodeId::new(3), NodeId::new(8)], vec![c1, c2]);
        (matrix, labels)
    }

    #[test]
    fn csv_has_header_and_dense_rows() {
        let (matrix, labels) = sample();
        let csv = to_csv_string(&matrix, &labels);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("node,"));
        assert_eq!(lines[0].matches(',').count(), matrix.feature_count());
        assert!(lines[1].starts_with("3,"));
        assert!(lines[2].starts_with("8,"));
        // Row 1 has a zero for the second feature.
        assert!(lines[1].ends_with(",0") || lines[1].contains(",0,"));
    }

    #[test]
    fn csv_values_match_matrix() {
        let (matrix, labels) = sample();
        let csv = to_csv_string(&matrix, &labels);
        let lines: Vec<&str> = csv.lines().collect();
        for (i, line) in lines[1..].iter().enumerate() {
            let cells: Vec<&str> = line.split(',').collect();
            for f in 0..matrix.feature_count() {
                let got: f64 = cells[f + 1].parse().unwrap();
                assert_eq!(got, matrix.value(i, f as u32));
            }
        }
    }

    #[test]
    fn vocabulary_lists_every_feature() {
        let (matrix, labels) = sample();
        let mut buf = Vec::new();
        write_vocabulary(&matrix, &labels, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + matrix.feature_count());
        assert!(text.contains("doc_freq"));
    }
}
