//! By-node parallel feature extraction (paper §3.2 "Parallel Space
//! Complexity").
//!
//! The census is embarrassingly parallel over root nodes: the graph is
//! shared read-only, each worker owns one scratch (`O(V)` memory), and roots
//! are distributed by one of two schedulers (see [`SchedulerKind`]):
//!
//! * **Cursor** — an atomic counter hands out whole roots; lowest overhead,
//!   but one hub root can dominate a run while other workers idle.
//! * **Stealing** — per-worker deques with work stealing
//!   ([`crate::steal`]); hub roots whose frontier is wide enough are
//!   additionally split into shards over their top-level DFS candidates
//!   (see [`CensusEngine::census_encodings_shard`]), so a single
//!   pathological root spreads across every idle worker. Shard censuses
//!   merge by commutative count summation, so the output is bit-for-bit
//!   identical to the cursor scheduler and to the sequential path.
//!
//! # Fault posture
//!
//! Every per-root census (and every shard) runs inside a panic-isolation
//! boundary: a panic in census code is caught, the worker's scratch is
//! discarded (its invariants can no longer be trusted), and the root is
//! reported as [`CensusError::WorkerPanicked`]. A worker failure therefore
//! surfaces as an ordinary `Err` from these functions — never as a
//! propagated panic or a poisoned `Mutex` in the caller. These helpers
//! remain all-or-nothing (the first error aborts the run's *result*, though
//! finished slots are simply dropped); for partial results, per-root
//! budgets, degradation, and outcome reporting use
//! [`crate::supervisor::Supervisor`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use hsgf_graph::fingerprint::{neighborhood_fingerprint_with, FingerprintScratch};
use hsgf_graph::NodeId;

use crate::budget::CensusBudget;
use crate::cache::{config_fingerprint, CacheEntry, CacheKey, CachedOutcome, CensusCache};
use crate::census::{CensusEngine, CensusError, CensusScratch};
use crate::features::FeatureMatrix;
use crate::obs::CensusCounters;
use crate::sequence::Encoding;
use crate::steal::{run_stealing, SchedulerKind, StealStats};

/// Hub roots with at least this many top-level DFS candidates are split
/// into stealable shards by the stealing scheduler (when `emax >= 2` and
/// more than one worker is available). Below this width the split overhead
/// (extra scratch passes over the root's frontier) outweighs the balance
/// gain.
pub(crate) const SPLIT_WIDTH: usize = 48;

/// Renders a panic payload for error reporting: the string payloads that
/// `panic!("...")` produces verbatim, the `Debug` form of common primitive
/// payloads, and the payload's `TypeId` as a last resort — structured
/// chaos-test payloads must stay diagnosable instead of collapsing to one
/// fixed string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    macro_rules! try_downcast {
        ($($ty:ty),+ $(,)?) => {
            $(
                if let Some(v) = payload.downcast_ref::<$ty>() {
                    return format!(
                        "non-string panic payload ({}: {v:?})",
                        stringify!($ty)
                    );
                }
            )+
        };
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    try_downcast!(i32, u32, i64, u64, usize, isize, bool, char, f64);
    format!("non-string panic payload (type id {:?})", payload.type_id())
}

/// Runs `work` for one root inside the panic-isolation boundary. On panic
/// the scratch is discarded (the next root gets a fresh one) and the panic
/// is converted into [`CensusError::WorkerPanicked`].
fn isolated<T>(
    engine: &CensusEngine<'_>,
    root: NodeId,
    holder: &mut Option<CensusScratch>,
    work: impl FnOnce(&mut CensusScratch) -> Result<T, CensusError>,
) -> Result<T, CensusError> {
    let scratch = holder.get_or_insert_with(|| engine.make_scratch());
    match catch_unwind(AssertUnwindSafe(|| work(scratch))) {
        Ok(result) => result,
        Err(payload) => {
            *holder = None;
            Err(CensusError::WorkerPanicked {
                root: root.raw(),
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Shared cursor scheduler: runs `work(engine, root, scratch)` for every
/// root with up to `threads` workers (clamped to the root count — tiny
/// extractions must not pay spawn/teardown for workers with nothing to do)
/// and collects results in root order, short-circuiting on the first error.
/// Worker panics and mutex poisoning are contained (see the module docs).
fn run_per_root<T, F>(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    work: F,
) -> Result<Vec<T>, CensusError>
where
    T: Send,
    F: Fn(&CensusEngine<'_>, NodeId, &mut CensusScratch) -> Result<T, CensusError> + Sync,
{
    let threads = threads.min(roots.len());
    let obs = engine.obs();
    if threads <= 1 {
        let mut holder = None;
        return roots
            .iter()
            .map(|&r| {
                let timer = obs.root_timer();
                let result = isolated(engine, r, &mut holder, |scratch| work(engine, r, scratch));
                obs.record_root(r.raw(), 0, timer);
                result
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, CensusError>>>> =
        roots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let cursor = &cursor;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || {
                let mut holder = None;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= roots.len() {
                        break;
                    }
                    let root = roots[i];
                    let timer = obs.root_timer();
                    let result = isolated(engine, root, &mut holder, |scratch| {
                        work(engine, root, scratch)
                    });
                    obs.record_root(root.raw(), worker as u64, timer);
                    // The census already ran (and any panic was caught), so
                    // the critical section is a plain store; recover from
                    // poisoning anyway rather than propagate it.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                }
            });
        }
    });
    collect_slots(slots, roots)
}

/// Drains per-root result slots into root order, short-circuiting on the
/// first error and degrading unfilled slots to errors instead of panics.
fn collect_slots<T>(
    slots: Vec<Mutex<Option<Result<T, CensusError>>>>,
    roots: &[NodeId],
) -> Result<Vec<T>, CensusError> {
    slots
        .into_iter()
        .zip(roots)
        .map(|(slot, &root)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    // Unreachable with in-loop isolation, but an unfilled
                    // slot must degrade to an error, not a caller panic.
                    Err(CensusError::WorkerPanicked {
                        root: root.raw(),
                        message: "worker terminated without reporting".to_owned(),
                    })
                })
        })
        .collect()
}

/// A census result type the stealing scheduler can split into top-level
/// shards and merge back. Merging is commutative count summation, so the
/// merged value is independent of shard execution order.
trait ShardableCensus: Sized + Send {
    /// The full census of one root (what the cursor scheduler runs).
    fn census_whole(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
    ) -> Result<Self, CensusError>;

    /// One shard of a split root's census, paired with the shard's
    /// deterministic counter delta (flushed into the engine's [`crate::obs::Obs`]
    /// only once *all* shards of the root complete, so aborted splits leak
    /// no partial counts).
    fn census_shard(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
        range: (usize, usize),
    ) -> Result<(Self, CensusCounters), CensusError>;

    /// Merges completed shard censuses (commutative sums).
    fn merge_shards(parts: Vec<Self>) -> Self;
}

impl ShardableCensus for HashMap<Encoding, u64> {
    fn census_whole(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
    ) -> Result<Self, CensusError> {
        engine.census_encodings(root, scratch).map(|c| c.counts)
    }

    fn census_shard(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
        range: (usize, usize),
    ) -> Result<(Self, CensusCounters), CensusError> {
        let counts = engine
            .census_encodings_shard(root, scratch, range, &CensusBudget::unlimited(), None, None)
            .map(|c| c.counts)?;
        Ok((counts, scratch.last_delta))
    }

    fn merge_shards(parts: Vec<Self>) -> Self {
        let mut merged = HashMap::new();
        for part in parts {
            for (key, n) in part {
                *merged.entry(key).or_insert(0) += n;
            }
        }
        merged
    }
}

impl ShardableCensus for HashMap<u64, u64> {
    fn census_whole(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
    ) -> Result<Self, CensusError> {
        engine.census_hashes(root, scratch)
    }

    fn census_shard(
        engine: &CensusEngine<'_>,
        root: NodeId,
        scratch: &mut CensusScratch,
        range: (usize, usize),
    ) -> Result<(Self, CensusCounters), CensusError> {
        let counts = engine.census_hashes_shard(
            root,
            scratch,
            range,
            &CensusBudget::unlimited(),
            None,
            None,
        )?;
        Ok((counts, scratch.last_delta))
    }

    fn merge_shards(parts: Vec<Self>) -> Self {
        let mut merged = HashMap::new();
        for part in parts {
            for (key, n) in part {
                *merged.entry(key).or_insert(0) += n;
            }
        }
        merged
    }
}

/// A unit of stealing-scheduler work: a whole root, or one shard of a
/// split hub root. Indices are into the caller's `roots` slice.
#[derive(Copy, Clone, Debug)]
enum StealTask {
    Root(usize),
    Shard {
        slot: usize,
        shard: usize,
        lo: usize,
        hi: usize,
    },
}

/// Merge bookkeeping for one split root: shard results by shard index plus
/// an outstanding count; the worker finishing the last shard assembles the
/// final per-root result.
struct ShardMerge<W> {
    parts: Vec<Option<Result<(W, CensusCounters), CensusError>>>,
    remaining: usize,
}

/// Partitions the pop-index range `[0, width)` into at most `parts`
/// contiguous shards of roughly equal *work*, not equal size: under the
/// exclusion discipline, the candidate popped first still has the whole
/// remaining frontier available to extend through, so subtree cost decays
/// with pop index — approximated here as `(width - i)^2`. The last shard
/// is open-ended (`hi = usize::MAX`) so the union always covers the
/// frontier even if the width estimate is off.
pub(crate) fn plan_shards(width: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(width).max(1);
    let weight = |i: usize| ((width - i) as u128).pow(2);
    let total: u128 = (0..width).map(weight).sum();
    let mut shards = Vec::with_capacity(parts);
    let mut lo = 0usize;
    let mut acc: u128 = 0;
    for i in 0..width {
        acc += weight(i);
        let filled = shards.len() + 1;
        if filled < parts && acc * (parts as u128) >= total * (filled as u128) {
            shards.push((lo, i + 1));
            lo = i + 1;
        }
    }
    shards.push((lo, usize::MAX));
    shards
}

/// The stealing scheduler: seeds the pool with whole roots (hubs first, so
/// the FIFO steal end surfaces the heaviest work). A worker that claims a
/// root wide enough to split spawns its shards back into the pool instead
/// of enumerating it alone; the shard tasks are then stolen by idle
/// workers. Per-root results are collected exactly as the cursor path
/// does; the pool's counters are returned alongside.
fn run_per_root_stealing<W: ShardableCensus>(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<(Vec<W>, StealStats), CensusError> {
    let obs = engine.obs();
    if threads <= 1 || roots.len() <= 1 {
        let mut holder = None;
        let results: Result<Vec<W>, CensusError> = roots
            .iter()
            .map(|&r| {
                let timer = obs.root_timer();
                let result = isolated(engine, r, &mut holder, |s| W::census_whole(engine, r, s));
                obs.record_root(r.raw(), 0, timer);
                result
            })
            .collect();
        return results.map(|v| (v, StealStats::default()));
    }
    // Splitting at emax == 1 would interact with top-level grouping (see
    // census_encodings_shard); such censuses are cheap anyway. The shard
    // plan per root is deterministic, so the merge tables can be sized
    // before the pool starts.
    let splittable = engine.config().emax >= 2;
    let plan_for = |i: usize| -> Option<Vec<(usize, usize)>> {
        let width = engine.root_width(roots[i]);
        (splittable && width >= SPLIT_WIDTH).then(|| plan_shards(width, (threads * 2).min(width)))
    };
    let plans: Vec<Option<Vec<(usize, usize)>>> = (0..roots.len()).map(plan_for).collect();
    let merges: Vec<Mutex<ShardMerge<W>>> = plans
        .iter()
        .map(|plan| {
            let n = plan.as_ref().map_or(0, Vec::len);
            Mutex::new(ShardMerge {
                parts: (0..n).map(|_| None).collect(),
                remaining: n,
            })
        })
        .collect();
    let slots: Vec<Mutex<Option<Result<W, CensusError>>>> =
        roots.iter().map(|_| Mutex::new(None)).collect();
    // Seed whole roots hubs-first so the FIFO steal end of each deque
    // surfaces (and splits) the heaviest work early.
    let mut order: Vec<usize> = (0..roots.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(engine.root_width(roots[i])));
    let tasks: Vec<StealTask> = order.into_iter().map(StealTask::Root).collect();
    // Clamp workers to the root count as the cursor path does — unless a
    // root will split, in which case the full thread complement stays (one
    // hub root may carry the whole run).
    let workers = if plans.iter().any(Option::is_some) {
        threads
    } else {
        threads.min(tasks.len())
    }
    .max(1);
    let stats = run_stealing(
        workers,
        tasks,
        obs,
        || None,
        |holder: &mut Option<CensusScratch>, task, worker, pool| match task {
            StealTask::Root(i) => {
                if let Some(ranges) = &plans[i] {
                    // Hub root: fan its shards back into the pool. The
                    // spawning worker's own deque gets them, so it starts
                    // on one immediately while thieves take the rest.
                    pool.note_split();
                    for (k, &(lo, hi)) in ranges.iter().enumerate() {
                        pool.spawn(
                            worker,
                            StealTask::Shard {
                                slot: i,
                                shard: k,
                                lo,
                                hi,
                            },
                        );
                    }
                    return;
                }
                let root = roots[i];
                let timer = obs.root_timer();
                let result = isolated(engine, root, holder, |s| W::census_whole(engine, root, s));
                obs.record_root(root.raw(), worker as u64, timer);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            }
            StealTask::Shard {
                slot,
                shard,
                lo,
                hi,
            } => {
                let root = roots[slot];
                let timer = obs.root_timer();
                let result = isolated(engine, root, holder, |s| {
                    W::census_shard(engine, root, s, (lo, hi))
                });
                obs.record_root(root.raw(), worker as u64, timer);
                let mut merge = merges[slot].lock().unwrap_or_else(PoisonError::into_inner);
                merge.parts[shard] = Some(result);
                merge.remaining -= 1;
                if merge.remaining == 0 {
                    let parts = std::mem::take(&mut merge.parts);
                    drop(merge);
                    // Deterministic error selection: the error of the
                    // smallest shard index wins, mirroring the sequential
                    // run's first-error ordering over top-level candidates.
                    let mut datas = Vec::with_capacity(parts.len());
                    let mut delta = CensusCounters::default();
                    let mut first_err = None;
                    for part in parts {
                        match part.expect("every shard reported before merge") {
                            Ok((d, c)) => {
                                delta.absorb(&c);
                                datas.push(d);
                            }
                            Err(e) => {
                                first_err = Some(e);
                                break;
                            }
                        }
                    }
                    let outcome = match first_err {
                        Some(e) => Err(e),
                        None => {
                            // All shards finished cleanly: the summed delta
                            // equals the sequential whole-root delta, so it
                            // is safe to flush into the metrics registry.
                            obs.record_census(&delta);
                            obs.observe_root_subgraphs(delta.subgraphs);
                            Ok(W::merge_shards(datas))
                        }
                    };
                    *slots[slot].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                }
            }
        },
    );
    collect_slots(slots, roots).map(|v| (v, stats))
}

/// Extracts encoding-keyed censuses for every root, using `threads` workers
/// (0 or 1 runs inline on the caller's thread). Results are returned in
/// root order.
pub fn extract_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<Encoding, u64>>, CensusError> {
    extract_censuses_with(engine, roots, threads, SchedulerKind::Cursor)
}

/// [`extract_censuses`] with an explicit scheduler choice. Both schedulers
/// produce identical results; [`SchedulerKind::Stealing`] balances skewed
/// per-root costs by stealing and by splitting hub roots.
pub fn extract_censuses_with(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    scheduler: SchedulerKind,
) -> Result<Vec<HashMap<Encoding, u64>>, CensusError> {
    match scheduler {
        SchedulerKind::Cursor => run_per_root(engine, roots, threads, |engine, root, scratch| {
            engine.census_encodings(root, scratch).map(|c| c.counts)
        }),
        SchedulerKind::Stealing => run_per_root_stealing(engine, roots, threads).map(|(v, _)| v),
    }
}

/// Extracts hash-keyed censuses for every root (the paper's fast mode).
pub fn extract_hash_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<u64, u64>>, CensusError> {
    extract_hash_censuses_with(engine, roots, threads, SchedulerKind::Cursor)
}

/// [`extract_hash_censuses`] with an explicit scheduler choice.
pub fn extract_hash_censuses_with(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    scheduler: SchedulerKind,
) -> Result<Vec<HashMap<u64, u64>>, CensusError> {
    match scheduler {
        SchedulerKind::Cursor => run_per_root(engine, roots, threads, |engine, root, scratch| {
            engine.census_hashes(root, scratch)
        }),
        SchedulerKind::Stealing => run_per_root_stealing(engine, roots, threads).map(|(v, _)| v),
    }
}

/// Stealing-scheduler hash extraction that also reports the scheduler's
/// steal/park/split counters — the benches use this to show where the
/// balancing work went.
pub fn extract_hash_censuses_stats(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<(Vec<HashMap<u64, u64>>, StealStats), CensusError> {
    run_per_root_stealing(engine, roots, threads)
}

/// One-call convenience: parallel census for `roots` assembled into a
/// [`FeatureMatrix`] over a shared vocabulary.
pub fn extract_feature_matrix(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<FeatureMatrix, CensusError> {
    extract_feature_matrix_with(engine, roots, threads, SchedulerKind::Cursor)
}

/// [`extract_feature_matrix`] with an explicit scheduler choice.
pub fn extract_feature_matrix_with(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    scheduler: SchedulerKind,
) -> Result<FeatureMatrix, CensusError> {
    let censuses = extract_censuses_with(engine, roots, threads, scheduler)?;
    Ok(FeatureMatrix::from_censuses(roots.to_vec(), censuses))
}

/// Builds the level-0 cache keys for `roots` under the engine's current
/// graph and configuration, charging the fingerprint time to `cache`. The
/// fingerprint radius is the configured `emax`: every subgraph the census
/// can reach, plus the degrees the `dmax` heuristic consults, lies inside
/// that ball (see [`hsgf_graph::fingerprint`]).
pub fn cache_keys(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    cache: &CensusCache,
    config: u64,
) -> Vec<CacheKey> {
    let start = std::time::Instant::now();
    let mut scratch = FingerprintScratch::new();
    let keys = roots
        .iter()
        .map(|&root| CacheKey {
            root,
            neighborhood: neighborhood_fingerprint_with(
                engine.graph(),
                root,
                engine.config().emax as u32,
                &mut scratch,
            ),
            config,
            level: 0,
        })
        .collect();
    cache.note_fingerprint_micros(start.elapsed().as_micros() as u64);
    keys
}

/// [`extract_censuses_with`] through a [`CensusCache`]: roots whose key
/// (neighbourhood + configuration fingerprint) is cached are served
/// without recomputation; the misses run through the requested scheduler
/// and are stored as exact entries. Results are bit-identical to the
/// uncached path — cache entries hold the census's own encoding counts —
/// and returned in root order.
pub fn extract_censuses_cached(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    scheduler: SchedulerKind,
    cache: &CensusCache,
) -> Result<Vec<HashMap<Encoding, u64>>, CensusError> {
    let keys = cache_keys(engine, roots, cache, config_fingerprint(engine.config()));
    let mut out: Vec<Option<HashMap<Encoding, u64>>> = Vec::with_capacity(roots.len());
    let mut miss_roots = Vec::new();
    let mut miss_idx = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match cache.lookup(key) {
            Some(entry) => out.push(Some(entry.counts)),
            None => {
                out.push(None);
                miss_roots.push(roots[i]);
                miss_idx.push(i);
            }
        }
    }
    if !miss_roots.is_empty() {
        let fresh = extract_censuses_with(engine, &miss_roots, threads, scheduler)?;
        for (&i, counts) in miss_idx.iter().zip(fresh) {
            cache.store(
                keys[i],
                &CacheEntry {
                    counts: counts.clone(),
                    outcome: CachedOutcome::Exact,
                },
            );
            out[i] = Some(counts);
        }
    }
    Ok(out
        .into_iter()
        .map(|c| c.expect("every slot is either a hit or refilled from the miss run"))
        .collect())
}

/// [`extract_feature_matrix_with`] through a [`CensusCache`]. The matrix
/// assembly is a pure function of the per-root censuses, so a warm cache
/// reproduces the cold matrix bit for bit.
pub fn extract_feature_matrix_cached(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    scheduler: SchedulerKind,
    cache: &CensusCache,
) -> Result<FeatureMatrix, CensusError> {
    let censuses = extract_censuses_cached(engine, roots, threads, scheduler, cache)?;
    Ok(FeatureMatrix::from_censuses(roots.to_vec(), censuses))
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, GraphBuilder, Label, LabelSet};

    use crate::census::CensusConfig;

    use super::*;

    fn test_graph() -> hsgf_graph::HetGraph {
        let labels = LabelSet::from_names(["a", "b", "c"]).unwrap();
        generators::barabasi_albert(labels, &[1.0, 1.0, 1.0], 120, 2, 17).unwrap()
    }

    /// A star hub wide enough to trip the split threshold, with
    /// mixed-label spokes joined by a ring so the grouping heuristic does
    /// not trivialise the hub's census.
    fn hub_graph(spokes: usize) -> hsgf_graph::HetGraph {
        let labels = LabelSet::from_names(["hub", "x", "y", "z"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let hub = b.add_node_with(Label::new(0)).unwrap();
        let mut spoke_ids = Vec::new();
        for i in 0..spokes {
            let s = b.add_node_with(Label::new(1 + (i % 3) as u8)).unwrap();
            b.add_edge(hub, s).unwrap();
            spoke_ids.push(s);
        }
        for i in 0..spokes {
            b.add_edge(spoke_ids[i], spoke_ids[(i + 1) % spokes])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(7).collect();
        let seq = extract_censuses(&engine, &roots, 1).unwrap();
        let par = extract_censuses(&engine, &roots, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn hash_mode_parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(11).collect();
        let seq = extract_hash_censuses(&engine, &roots, 1).unwrap();
        let par = extract_hash_censuses(&engine, &roots, 3).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn stealing_matches_cursor_on_balanced_graph() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(5).collect();
        let cursor = extract_censuses_with(&engine, &roots, 4, SchedulerKind::Cursor).unwrap();
        for threads in [1, 2, 8] {
            let stealing =
                extract_censuses_with(&engine, &roots, threads, SchedulerKind::Stealing).unwrap();
            assert_eq!(cursor, stealing, "threads={threads}");
        }
    }

    #[test]
    fn stealing_splits_hub_root_and_matches_sequential() {
        let graph = hub_graph(SPLIT_WIDTH + 16);
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().collect();
        let seq = extract_hash_censuses(&engine, &roots, 1).unwrap();
        let (stolen, stats) = extract_hash_censuses_stats(&engine, &roots, 4).unwrap();
        assert_eq!(seq, stolen);
        assert!(stats.splits >= 1, "hub root was not split: {stats:?}");
        assert!(
            stats.tasks > roots.len() as u64,
            "shards did not add tasks: {stats:?}"
        );
    }

    #[test]
    fn stealing_feature_matrix_is_bit_identical_to_cursor() {
        let graph = hub_graph(SPLIT_WIDTH + 5);
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().collect();
        let cursor =
            extract_feature_matrix_with(&engine, &roots, 4, SchedulerKind::Cursor).unwrap();
        let stealing =
            extract_feature_matrix_with(&engine, &roots, 4, SchedulerKind::Stealing).unwrap();
        assert_eq!(cursor.roots(), stealing.roots());
        assert_eq!(cursor.feature_count(), stealing.feature_count());
        for i in 0..cursor.row_count() {
            assert_eq!(cursor.row(i), stealing.row(i), "row {i}");
        }
    }

    #[test]
    fn plan_shards_partitions_the_frontier() {
        for width in [1usize, 2, 5, 48, 100, 257] {
            for parts in [1usize, 2, 4, 8, 100] {
                let shards = plan_shards(width, parts);
                assert!(!shards.is_empty());
                assert_eq!(shards[0].0, 0);
                for w in shards.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous: {shards:?}");
                    assert!(w[0].0 < w[0].1, "non-empty: {shards:?}");
                }
                let last = shards.last().unwrap();
                assert!(last.0 <= width && last.1 == usize::MAX, "{shards:?}");
                assert!(shards.len() <= parts.min(width).max(1));
            }
        }
        // Quadratic weighting front-loads narrow shards: the first shard
        // of a wide split must be smaller than the last one's span.
        let shards = plan_shards(100, 4);
        let first_span = shards[0].1 - shards[0].0;
        let last_span = 100 - shards.last().unwrap().0;
        assert!(
            first_span < last_span,
            "expected decreasing weight per index: {shards:?}"
        );
    }

    #[test]
    fn feature_matrix_rows_align_with_roots() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(10).collect();
        let m = extract_feature_matrix(&engine, &roots, 2).unwrap();
        assert_eq!(m.row_count(), roots.len());
        assert_eq!(m.roots(), roots.as_slice());
        // Every row of a connected-ish BA graph has at least one feature.
        for i in 0..m.row_count() {
            assert!(!m.row(i).is_empty());
        }
    }

    #[test]
    fn invalid_root_surfaces_error() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default()).unwrap();
        let bad = NodeId::new(10_000);
        assert!(extract_censuses(&engine, &[bad], 2).is_err());
        assert!(extract_censuses_with(&engine, &[bad], 2, SchedulerKind::Stealing).is_err());
    }

    #[test]
    fn more_threads_than_roots_is_clamped_not_wasted() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(3).collect();
        let seq = extract_censuses(&engine, &roots, 1).unwrap();
        for scheduler in [SchedulerKind::Cursor, SchedulerKind::Stealing] {
            let wide = extract_censuses_with(&engine, &roots, 64, scheduler).unwrap();
            assert_eq!(seq, wide, "{scheduler}");
        }
        // Empty root sets are a no-op under any thread count.
        assert!(extract_censuses(&engine, &[], 8).unwrap().is_empty());
    }

    #[test]
    fn worker_panic_becomes_error_not_caller_panic() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(6).collect();
        let boom = roots[3];
        // Simulate a faulting census through the shared scheduler, in both
        // the sequential and the parallel path.
        for threads in [1, 3] {
            let result = run_per_root(&engine, &roots, threads, |engine, root, scratch| {
                if root == boom {
                    panic!("injected fault");
                }
                engine.census_encodings(root, scratch).map(|c| c.counts)
            });
            match result {
                Err(CensusError::WorkerPanicked { root, message }) => {
                    assert_eq!(root, boom.raw());
                    assert!(message.contains("injected fault"));
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn panic_payload_keeps_type_information() {
        assert_eq!(panic_message(&"plain"), "plain");
        assert_eq!(panic_message(&"owned".to_owned()), "owned");
        let as_int = panic_message(&42i32);
        assert!(as_int.contains("i32") && as_int.contains("42"), "{as_int}");
        let as_bool = panic_message(&true);
        assert!(as_bool.contains("bool"), "{as_bool}");
        // Exotic payloads at least carry their TypeId.
        let exotic = panic_message(&vec![1u8, 2]);
        assert!(exotic.contains("type id"), "{exotic}");
    }

    #[test]
    fn structured_panic_payload_is_diagnosable_end_to_end() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(2).collect();
        let result = run_per_root(&engine, &roots, 1, |_, root, _| {
            if root == roots[0] {
                std::panic::panic_any(1234u64);
            }
            Ok(HashMap::<Encoding, u64>::new())
        });
        match result {
            Err(CensusError::WorkerPanicked { message, .. }) => {
                assert!(
                    message.contains("u64") && message.contains("1234"),
                    "payload lost: {message}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn scratch_survives_panic_isolation() {
        // After a caught panic the worker gets a fresh scratch; subsequent
        // roots must produce correct censuses.
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(8).collect();
        let clean = extract_censuses(&engine, &roots, 1).unwrap();
        let boom = roots[0];
        let mut holder = None;
        let faulted: Vec<_> = roots
            .iter()
            .map(|&r| {
                isolated(&engine, r, &mut holder, |scratch| {
                    if r == boom {
                        panic!("first root crashes");
                    }
                    engine.census_encodings(r, scratch).map(|c| c.counts)
                })
            })
            .collect();
        assert!(matches!(
            faulted[0],
            Err(CensusError::WorkerPanicked { .. })
        ));
        for i in 1..roots.len() {
            assert_eq!(faulted[i].as_ref().unwrap(), &clean[i]);
        }
    }

    #[test]
    fn cached_extraction_matches_uncached_cold_and_warm() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(7).collect();
        let plain = extract_censuses(&engine, &roots, 2).unwrap();
        let cache = CensusCache::in_memory();
        for scheduler in [SchedulerKind::Cursor, SchedulerKind::Stealing] {
            let cold = extract_censuses_cached(&engine, &roots, 2, scheduler, &cache).unwrap();
            assert_eq!(plain, cold, "{scheduler:?} cold");
        }
        // Cursor run filled the cache; the stealing run was all hits.
        let stats = cache.stats();
        assert_eq!(stats.misses, roots.len() as u64);
        assert_eq!(stats.hits, roots.len() as u64);
        assert_eq!(stats.stores, roots.len() as u64);
        assert!(cache.entry_count() == roots.len());
        let warm = extract_censuses_cached(&engine, &roots, 1, SchedulerKind::Cursor, &cache);
        assert_eq!(plain, warm.unwrap());
    }

    #[test]
    fn cached_feature_matrix_is_bit_identical_to_uncached() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(11).collect();
        let plain = extract_feature_matrix(&engine, &roots, 2).unwrap();
        let cache = CensusCache::in_memory();
        for _ in 0..2 {
            let cached =
                extract_feature_matrix_cached(&engine, &roots, 2, SchedulerKind::Cursor, &cache)
                    .unwrap();
            assert_eq!(plain.row_count(), cached.row_count());
            assert_eq!(plain.feature_count(), cached.feature_count());
            for i in 0..plain.row_count() {
                assert_eq!(plain.row(i), cached.row(i), "row {i}");
            }
        }
    }

    #[test]
    fn config_change_misses_the_cache() {
        let graph = test_graph();
        let roots: Vec<NodeId> = graph.nodes().take(6).collect();
        let cache = CensusCache::in_memory();
        let e3 = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        extract_censuses_cached(&e3, &roots, 1, SchedulerKind::Cursor, &cache).unwrap();
        let e2 = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let under_e2 = extract_censuses_cached(&e2, &roots, 1, SchedulerKind::Cursor, &cache);
        assert_eq!(under_e2.unwrap(), extract_censuses(&e2, &roots, 1).unwrap());
        // No cross-config pollution: the emax=2 run saw only misses.
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn edits_outside_the_radius_keep_entries_warm() {
        let graph = test_graph();
        let config = CensusConfig::default().with_emax(2);
        let engine = CensusEngine::new(&graph, config.clone()).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(9).collect();
        let cache = CensusCache::in_memory();
        extract_censuses_cached(&engine, &roots, 1, SchedulerKind::Cursor, &cache).unwrap();
        // Rebuild the identical graph through the edit path: every
        // fingerprint is unchanged, so the rerun is all hits.
        let same = hsgf_graph::apply_edits(&graph, &[]).unwrap();
        let engine2 = CensusEngine::new(&same, config).unwrap();
        let before = cache.stats().misses;
        let rerun = extract_censuses_cached(&engine2, &roots, 1, SchedulerKind::Cursor, &cache);
        assert_eq!(
            rerun.unwrap(),
            extract_censuses(&engine2, &roots, 1).unwrap()
        );
        assert_eq!(cache.stats().misses, before);
    }
}
