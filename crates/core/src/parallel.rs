//! By-node parallel feature extraction (paper §3.2 "Parallel Space
//! Complexity").
//!
//! The census is embarrassingly parallel over root nodes: the graph is
//! shared read-only, each worker owns one scratch (`O(V)` memory), and roots
//! are handed out through an atomic cursor so skewed per-root costs balance
//! dynamically — important because extraction time correlates with the
//! (skewed) degree distribution (paper Table 3).
//!
//! # Fault posture
//!
//! Every per-root census runs inside a panic-isolation boundary: a panic in
//! census code is caught, the worker's scratch is discarded (its invariants
//! can no longer be trusted), and the root is reported as
//! [`CensusError::WorkerPanicked`]. A worker failure therefore surfaces as
//! an ordinary `Err` from these functions — never as a propagated panic or
//! a poisoned `Mutex` in the caller. These helpers remain all-or-nothing
//! (the first error aborts the run's *result*, though finished slots are
//! simply dropped); for partial results, per-root budgets, degradation, and
//! outcome reporting use [`crate::supervisor::Supervisor`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hsgf_graph::NodeId;

use crate::census::{CensusEngine, CensusError, CensusScratch};
use crate::features::FeatureMatrix;
use crate::sequence::Encoding;

/// Runs `work` for one root inside the panic-isolation boundary. On panic
/// the scratch is discarded (the next root gets a fresh one) and the panic
/// is converted into [`CensusError::WorkerPanicked`].
fn isolated<T>(
    engine: &CensusEngine<'_>,
    root: NodeId,
    holder: &mut Option<CensusScratch>,
    work: impl FnOnce(&mut CensusScratch) -> Result<T, CensusError>,
) -> Result<T, CensusError> {
    let scratch = holder.get_or_insert_with(|| engine.make_scratch());
    match catch_unwind(AssertUnwindSafe(|| work(scratch))) {
        Ok(result) => result,
        Err(payload) => {
            *holder = None;
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            Err(CensusError::WorkerPanicked {
                root: root.raw(),
                message,
            })
        }
    }
}

/// Shared scheduler: runs `work(engine, root, scratch)` for every root with
/// `threads` workers and collects results in root order, short-circuiting on
/// the first error. Worker panics and mutex poisoning are contained (see the
/// module docs).
fn run_per_root<T, F>(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
    work: F,
) -> Result<Vec<T>, CensusError>
where
    T: Send,
    F: Fn(&CensusEngine<'_>, NodeId, &mut CensusScratch) -> Result<T, CensusError> + Sync,
{
    if threads <= 1 {
        let mut holder = None;
        return roots
            .iter()
            .map(|&r| isolated(engine, r, &mut holder, |scratch| work(engine, r, scratch)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, CensusError>>>> =
        roots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut holder = None;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= roots.len() {
                        break;
                    }
                    let root = roots[i];
                    let result = isolated(engine, root, &mut holder, |scratch| {
                        work(engine, root, scratch)
                    });
                    // The census already ran (and any panic was caught), so
                    // the critical section is a plain store; recover from
                    // poisoning anyway rather than propagate it.
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .zip(roots)
        .map(|(slot, &root)| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| {
                    // Unreachable with in-loop isolation, but an unfilled
                    // slot must degrade to an error, not a caller panic.
                    Err(CensusError::WorkerPanicked {
                        root: root.raw(),
                        message: "worker terminated without reporting".to_owned(),
                    })
                })
        })
        .collect()
}

/// Extracts encoding-keyed censuses for every root, using `threads` workers
/// (0 or 1 runs inline on the caller's thread). Results are returned in
/// root order.
pub fn extract_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<Encoding, u64>>, CensusError> {
    run_per_root(engine, roots, threads, |engine, root, scratch| {
        engine.census_encodings(root, scratch).map(|c| c.counts)
    })
}

/// Extracts hash-keyed censuses for every root (the paper's fast mode).
pub fn extract_hash_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<u64, u64>>, CensusError> {
    run_per_root(engine, roots, threads, |engine, root, scratch| {
        engine.census_hashes(root, scratch)
    })
}

/// One-call convenience: parallel census for `roots` assembled into a
/// [`FeatureMatrix`] over a shared vocabulary.
pub fn extract_feature_matrix(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<FeatureMatrix, CensusError> {
    let censuses = extract_censuses(engine, roots, threads)?;
    Ok(FeatureMatrix::from_censuses(roots.to_vec(), censuses))
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, LabelSet};

    use crate::census::CensusConfig;

    use super::*;

    fn test_graph() -> hsgf_graph::HetGraph {
        let labels = LabelSet::from_names(["a", "b", "c"]).unwrap();
        generators::barabasi_albert(labels, &[1.0, 1.0, 1.0], 120, 2, 17).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(7).collect();
        let seq = extract_censuses(&engine, &roots, 1).unwrap();
        let par = extract_censuses(&engine, &roots, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn hash_mode_parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(11).collect();
        let seq = extract_hash_censuses(&engine, &roots, 1).unwrap();
        let par = extract_hash_censuses(&engine, &roots, 3).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn feature_matrix_rows_align_with_roots() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(10).collect();
        let m = extract_feature_matrix(&engine, &roots, 2).unwrap();
        assert_eq!(m.row_count(), roots.len());
        assert_eq!(m.roots(), roots.as_slice());
        // Every row of a connected-ish BA graph has at least one feature.
        for i in 0..m.row_count() {
            assert!(!m.row(i).is_empty());
        }
    }

    #[test]
    fn invalid_root_surfaces_error() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default()).unwrap();
        let bad = NodeId::new(10_000);
        assert!(extract_censuses(&engine, &[bad], 2).is_err());
    }

    #[test]
    fn worker_panic_becomes_error_not_caller_panic() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(6).collect();
        let boom = roots[3];
        // Simulate a faulting census through the shared scheduler, in both
        // the sequential and the parallel path.
        for threads in [1, 3] {
            let result = run_per_root(&engine, &roots, threads, |engine, root, scratch| {
                if root == boom {
                    panic!("injected fault");
                }
                engine.census_encodings(root, scratch).map(|c| c.counts)
            });
            match result {
                Err(CensusError::WorkerPanicked { root, message }) => {
                    assert_eq!(root, boom.raw());
                    assert!(message.contains("injected fault"));
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn scratch_survives_panic_isolation() {
        // After a caught panic the worker gets a fresh scratch; subsequent
        // roots must produce correct censuses.
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(8).collect();
        let clean = extract_censuses(&engine, &roots, 1).unwrap();
        let boom = roots[0];
        let mut holder = None;
        let faulted: Vec<_> = roots
            .iter()
            .map(|&r| {
                isolated(&engine, r, &mut holder, |scratch| {
                    if r == boom {
                        panic!("first root crashes");
                    }
                    engine.census_encodings(r, scratch).map(|c| c.counts)
                })
            })
            .collect();
        assert!(matches!(
            faulted[0],
            Err(CensusError::WorkerPanicked { .. })
        ));
        for i in 1..roots.len() {
            assert_eq!(faulted[i].as_ref().unwrap(), &clean[i]);
        }
    }
}
