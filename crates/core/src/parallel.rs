//! By-node parallel feature extraction (paper §3.2 "Parallel Space
//! Complexity").
//!
//! The census is embarrassingly parallel over root nodes: the graph is
//! shared read-only, each worker owns one scratch (`O(V)` memory), and roots
//! are handed out through an atomic cursor so skewed per-root costs balance
//! dynamically — important because extraction time correlates with the
//! (skewed) degree distribution (paper Table 3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hsgf_graph::NodeId;

use crate::census::{CensusEngine, CensusError};
use crate::features::FeatureMatrix;
use crate::sequence::Encoding;

/// Extracts encoding-keyed censuses for every root, using `threads` workers
/// (0 or 1 runs inline on the caller's thread). Results are returned in
/// root order.
pub fn extract_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<Encoding, u64>>, CensusError> {
    if threads <= 1 {
        let mut scratch = engine.make_scratch();
        return roots
            .iter()
            .map(|&r| engine.census_encodings(r, &mut scratch).map(|c| c.counts))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<HashMap<Encoding, u64>, CensusError>>>> =
        roots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = engine.make_scratch();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= roots.len() {
                        break;
                    }
                    let result = engine
                        .census_encodings(roots[i], &mut scratch)
                        .map(|c| c.counts);
                    *slots[i]
                        .lock()
                        .expect("census worker never panics holding the lock") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked")
                .expect("every slot is filled before scope ends")
        })
        .collect()
}

/// Extracts hash-keyed censuses for every root (the paper's fast mode).
pub fn extract_hash_censuses(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<Vec<HashMap<u64, u64>>, CensusError> {
    if threads <= 1 {
        let mut scratch = engine.make_scratch();
        return roots
            .iter()
            .map(|&r| engine.census_hashes(r, &mut scratch))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<HashMap<u64, u64>, CensusError>>>> =
        roots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = engine.make_scratch();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= roots.len() {
                        break;
                    }
                    *slots[i]
                        .lock()
                        .expect("census worker never panics holding the lock") =
                        Some(engine.census_hashes(roots[i], &mut scratch));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked")
                .expect("every slot is filled before scope ends")
        })
        .collect()
}

/// One-call convenience: parallel census for `roots` assembled into a
/// [`FeatureMatrix`] over a shared vocabulary.
pub fn extract_feature_matrix(
    engine: &CensusEngine<'_>,
    roots: &[NodeId],
    threads: usize,
) -> Result<FeatureMatrix, CensusError> {
    let censuses = extract_censuses(engine, roots, threads)?;
    Ok(FeatureMatrix::from_censuses(roots.to_vec(), censuses))
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{generators, LabelSet};

    use crate::census::CensusConfig;

    use super::*;

    fn test_graph() -> hsgf_graph::HetGraph {
        let labels = LabelSet::from_names(["a", "b", "c"]).unwrap();
        generators::barabasi_albert(labels, &[1.0, 1.0, 1.0], 120, 2, 17).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(7).collect();
        let seq = extract_censuses(&engine, &roots, 1).unwrap();
        let par = extract_censuses(&engine, &roots, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn hash_mode_parallel_matches_sequential() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().step_by(11).collect();
        let seq = extract_hash_censuses(&engine, &roots, 1).unwrap();
        let par = extract_hash_censuses(&engine, &roots, 3).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn feature_matrix_rows_align_with_roots() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(2)).unwrap();
        let roots: Vec<NodeId> = graph.nodes().take(10).collect();
        let m = extract_feature_matrix(&engine, &roots, 2).unwrap();
        assert_eq!(m.row_count(), roots.len());
        assert_eq!(m.roots(), roots.as_slice());
        // Every row of a connected-ish BA graph has at least one feature.
        for i in 0..m.row_count() {
            assert!(!m.row(i).is_empty());
        }
    }

    #[test]
    fn invalid_root_surfaces_error() {
        let graph = test_graph();
        let engine = CensusEngine::new(&graph, CensusConfig::default()).unwrap();
        let bad = NodeId::new(10_000);
        assert!(extract_censuses(&engine, &[bad], 2).is_err());
    }
}
