//! Crash-safe write-ahead journal for long extractions.
//!
//! A census over a large information network runs for hours; a process
//! crash (OOM-kill, SIGKILL, power loss) must not discard every in-flight
//! result. The journal write-ahead-logs each *completed* root outcome as
//! an append-only stream of length-prefixed, checksummed records across
//! rotating segment files, so a resumed run (`hsgf extract --journal DIR
//! --resume`) replays every durably journaled root bit-identically and
//! re-extracts only the remainder.
//!
//! # Record framing
//!
//! Each segment file starts with the 8-byte magic `HSGFWAL1` followed by a
//! run-header record; every record is framed as
//!
//! ```text
//! [u32 LE payload length][u64 LE checksum][payload]
//! ```
//!
//! where the checksum is a SplitMix64 fold over the payload (seeded by its
//! length). Recovery scans segments in order and stops at the first frame
//! whose length or checksum does not verify: the file is truncated back to
//! the last good record (a *torn tail*, the expected artifact of a crash
//! mid-write) and any later segments are deleted. A committed record is
//! therefore never silently altered — corruption costs at worst the tail
//! of the stream, which the resumed run simply re-extracts.
//!
//! # Durability contract
//!
//! Appends are direct unbuffered `write(2)` calls with no `fsync`: a
//! `kill -9` cannot lose an acknowledged append (the bytes live in the OS
//! page cache), only full power loss can. That is the right trade for the
//! target failure mode — restartable batch jobs — and keeps the journal's
//! overhead on the extraction hot path in the low single digits.
//!
//! # What is journaled
//!
//! Only successful outcomes ([`JournaledOutcome::Exact`] and
//! [`JournaledOutcome::Degraded`]) carry rows and are journaled. Failed or
//! cancelled roots are *not* recorded: deterministic failures re-fail
//! identically on resume, and transient ones deserve the retry. Appends
//! are **commit-ordered** (root-list order, enforced by the supervisor's
//! commit sink), not worker-completion-ordered, so the journal prefix is
//! always a prefix of the root list regardless of scheduling.
//!
//! The run header pins the policy fingerprint, a whole-graph content
//! fingerprint, and a hash of the root list; [`Journal::resume`] refuses a
//! journal written for a different run instead of replaying wrong rows.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use hsgf_graph::rng::splitmix64;
use hsgf_graph::NodeId;

use crate::sequence::Encoding;
use crate::supervisor::ChaosHook;

/// Segment-file magic: "HSGFWAL" plus the format generation.
const MAGIC: &[u8; 8] = b"HSGFWAL1";

/// Journal format version, embedded in every run header.
pub const JOURNAL_VERSION: u32 = 1;

/// Domain-separation seed for record checksums ("HSGF" ++ "WL").
const CHECKSUM_SEED: u64 = 0x4853_4746_574C;

/// Domain-separation seed for [`roots_hash`] ("HSGF" ++ "RH").
const ROOTS_SEED: u64 = 0x4853_4746_5248;

/// Sanity cap on a single record; anything larger is treated as a torn
/// length prefix during recovery.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// Default segment size before rotation (8 MiB).
const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

/// Record kind tags (first payload byte).
const KIND_HEADER: u8 = 0;
const KIND_ROOT: u8 = 1;

/// A disk fault injected through [`ChaosHook::inject_io`]. The journal and
/// the disk cache tier must survive every variant without panicking or
/// corrupting a committed record — at worst a fault costs a retried write,
/// a truncated tail, or a quarantined cache entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Only a prefix of the frame reaches the file before the write is
    /// interrupted (the classic crash-mid-write artifact).
    TornWrite,
    /// A read returns fewer bytes than the file holds.
    ShortRead,
    /// The device reports no space for the write.
    Enospc,
    /// The payload is silently altered after checksumming (disk rot).
    CorruptRecord,
}

/// Which IO operation a [`ChaosHook`] is being consulted for.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Appending a record to the extraction journal.
    JournalWrite,
    /// Reading a journal segment during recovery.
    JournalRead,
    /// Writing a disk-cache entry file.
    CacheWrite,
    /// Reading a disk-cache entry file.
    CacheRead,
}

/// Run identity pinned in every segment's header record. [`Journal::resume`]
/// refuses to replay a journal whose header does not match the current run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// The extraction's config + policy fingerprint
    /// (see `cache::policy_fingerprint`).
    pub config: u64,
    /// Whole-graph content fingerprint
    /// (see `hsgf_graph::fingerprint::graph_fingerprint`).
    pub graph: u64,
    /// Hash of the ordered root list (see [`roots_hash`]).
    pub roots: u64,
}

/// The successful outcome of one journaled root. Mirrors the supervisor's
/// `RootOutcome` success variants without dragging in its error type;
/// failed/cancelled roots are never journaled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournaledOutcome {
    /// Full-fidelity census (possibly after retries).
    Exact {
        /// Total census attempts spent on the root (1 = clean first try).
        attempts: u32,
    },
    /// Census under a degraded configuration.
    Degraded {
        /// The hub cutoff in force, if any.
        dmax: Option<u32>,
        /// The edge bound in force.
        emax: usize,
        /// Degrade-ladder rung (1-based distance from the full-fidelity
        /// configuration).
        rung: u8,
        /// Total census attempts spent on the root.
        attempts: u32,
    },
}

/// One durably journaled root: its outcome and full encoding census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootRecord {
    /// Raw id of the journaled root.
    pub root: u32,
    /// How the census concluded.
    pub outcome: JournaledOutcome,
    /// The root's complete census, replayed verbatim on resume.
    pub counts: HashMap<Encoding, u64>,
}

/// What [`Journal::resume`] recovered from disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Every durably journaled root, in journal order.
    pub records: Vec<RootRecord>,
    /// Torn tails truncated (and trailing segments discarded) during the
    /// scan. 0 or 1 per resume; >1 never occurs because scanning stops at
    /// the first bad frame.
    pub truncated_tails: u64,
    /// Segment files that survived recovery.
    pub segments: u32,
}

/// What [`tail_records`] observed in a journal directory.
#[derive(Debug, Default)]
pub struct TailReport {
    /// The run header of the first committed segment, when one exists.
    pub header: Option<JournalHeader>,
    /// Every record in the committed prefix, in journal order.
    pub records: Vec<RootRecord>,
    /// Whether the scan stopped at a torn/corrupt frame or a segment gap
    /// (an in-flight append, or stale leftovers). A later tail may see
    /// further once the writer completes the frame.
    pub torn: bool,
    /// Committed segments contributing records.
    pub segments: u32,
}

/// Reads the committed prefix of a journal directory **without touching
/// it** — the change-feed read path of the serving layer, as opposed to
/// [`Journal::resume`], which truncates torn tails and deletes stale
/// segments as a writer taking ownership.
///
/// The scan walks segments from index 0 in contiguous order, verifies
/// every frame checksum, and stops at the first torn frame, malformed
/// payload, or gap; everything before the stop is durably committed and is
/// returned. Unlike `resume`, no header is required up front: the first
/// segment's header is *reported* (so a tailer can decide whether the feed
/// matches its graph/config), and subsequent segments must carry the same
/// one. A missing directory is an empty feed, not an error.
pub fn tail_records(dir: &Path) -> io::Result<TailReport> {
    let mut report = TailReport::default();
    let segments = match list_segments(dir) {
        Ok(segments) => segments,
        // A feed that has not started yet is empty, not broken.
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(err) => return Err(err),
    };
    if segments.is_empty() {
        return Ok(report);
    }
    if segments[0] != 0 {
        // No contiguous prefix from segment 0: stale leftovers only.
        report.torn = true;
        return Ok(report);
    }
    for (slot, &index) in segments.iter().enumerate() {
        if slot as u32 != index {
            report.torn = true;
            break;
        }
        let bytes = fs::read(segment_path(dir, index))?;
        if !scan_segment_read_only(&bytes, &mut report) {
            break;
        }
    }
    Ok(report)
}

/// Walks one segment's bytes for [`tail_records`], appending committed
/// records to `report`. Returns `false` when the scan must stop (torn
/// frame, bad payload, or a header mismatching the first segment's).
fn scan_segment_read_only(bytes: &[u8], report: &mut TailReport) -> bool {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report.torn = true;
        return false;
    }
    let mut offset = MAGIC.len();
    let mut saw_header = false;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        let Some(payload) = verify_frame(rest) else {
            report.torn = true;
            return false;
        };
        if !saw_header {
            match decode_header(payload) {
                Some((version, header)) if version == JOURNAL_VERSION => {
                    match report.header {
                        None => report.header = Some(header),
                        // A different run's segment in the same dir: stop
                        // at the boundary rather than mixing feeds.
                        Some(expected) if header != expected => {
                            report.torn = true;
                            return false;
                        }
                        Some(_) => {}
                    }
                    saw_header = true;
                }
                _ => {
                    report.torn = true;
                    return false;
                }
            }
        } else {
            match decode_root_record(payload) {
                Some(record) => report.records.push(record),
                None => {
                    report.torn = true;
                    return false;
                }
            }
        }
        offset += 12 + payload.len();
    }
    report.segments += 1;
    true
}

/// Hash of an ordered root list, for the journal run header. Order matters:
/// replay maps journal records back onto list positions.
pub fn roots_hash(roots: &[NodeId]) -> u64 {
    let mut hash = fold(ROOTS_SEED, roots.len() as u64);
    for &root in roots {
        hash = fold(hash, root.raw() as u64);
    }
    hash
}

#[inline]
fn fold(hash: u64, word: u64) -> u64 {
    let mut state = hash ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// Frame checksum: a SplitMix64 fold over the payload length and its
/// zero-padded 8-byte chunks. Not cryptographic — it detects torn writes
/// and rot, not adversaries.
fn checksum(payload: &[u8]) -> u64 {
    let mut hash = fold(CHECKSUM_SEED, payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        hash = fold(hash, u64::from_le_bytes(word));
    }
    hash
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor-style reader over a payload; all failures collapse to `None`,
/// which recovery treats as a torn/corrupt record.
struct Take<'a> {
    bytes: &'a [u8],
}

impl<'a> Take<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.bytes.split_at_checked(4)?;
        self.bytes = rest;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_at_checked(8)?;
        self.bytes = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, rest) = self.bytes.split_at_checked(n)?;
        self.bytes = rest;
        Some(head)
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

fn encode_header(header: &JournalHeader) -> Vec<u8> {
    let mut buf = vec![KIND_HEADER];
    put_u32(&mut buf, JOURNAL_VERSION);
    put_u64(&mut buf, header.config);
    put_u64(&mut buf, header.graph);
    put_u64(&mut buf, header.roots);
    buf
}

fn decode_header(payload: &[u8]) -> Option<(u32, JournalHeader)> {
    let mut take = Take { bytes: payload };
    if take.u8()? != KIND_HEADER {
        return None;
    }
    let version = take.u32()?;
    let header = JournalHeader {
        config: take.u64()?,
        graph: take.u64()?,
        roots: take.u64()?,
    };
    take.done().then_some((version, header))
}

/// Serializes one root record. Rows are emitted in `Encoding` order so the
/// byte stream is a pure function of the census, independent of hash-map
/// iteration order.
pub(crate) fn encode_root_record(record: &RootRecord) -> Vec<u8> {
    encode_root_payload(record.root, &record.outcome, &record.counts)
}

/// [`encode_root_record`] over borrowed parts, so the supervisor's commit
/// sink serializes without cloning the census map into a [`RootRecord`].
pub(crate) fn encode_root_payload(
    root: u32,
    outcome: &JournaledOutcome,
    counts: &HashMap<Encoding, u64>,
) -> Vec<u8> {
    let mut buf = vec![KIND_ROOT];
    put_u32(&mut buf, root);
    match outcome {
        JournaledOutcome::Exact { attempts } => {
            buf.push(0);
            put_u32(&mut buf, *attempts);
        }
        JournaledOutcome::Degraded {
            dmax,
            emax,
            rung,
            attempts,
        } => {
            buf.push(1);
            put_u32(&mut buf, *attempts);
            buf.push(dmax.is_some() as u8);
            put_u32(&mut buf, dmax.unwrap_or(0));
            put_u32(&mut buf, *emax as u32);
            buf.push(*rung);
        }
    }
    let mut rows: Vec<(&Encoding, &u64)> = counts.iter().collect();
    rows.sort_unstable_by_key(|(encoding, _)| *encoding);
    put_u32(&mut buf, rows.len() as u32);
    for (encoding, &count) in rows {
        let bytes = encoding.as_bytes();
        buf.push(1 + encoding.label_count() as u8);
        put_u32(&mut buf, bytes.len() as u32);
        buf.extend_from_slice(bytes);
        put_u64(&mut buf, count);
    }
    buf
}

fn decode_root_record(payload: &[u8]) -> Option<RootRecord> {
    let mut take = Take { bytes: payload };
    if take.u8()? != KIND_ROOT {
        return None;
    }
    let root = take.u32()?;
    let outcome = match take.u8()? {
        0 => JournaledOutcome::Exact {
            attempts: take.u32()?,
        },
        1 => {
            let attempts = take.u32()?;
            let has_dmax = take.u8()? != 0;
            let dmax = take.u32()?;
            let emax = take.u32()? as usize;
            let rung = take.u8()?;
            JournaledOutcome::Degraded {
                dmax: has_dmax.then_some(dmax),
                emax,
                rung,
                attempts,
            }
        }
        _ => return None,
    };
    let nrows = take.u32()?;
    let mut counts = HashMap::with_capacity(nrows as usize);
    for _ in 0..nrows {
        let row_len = take.u8()?;
        let nbytes = take.u32()? as usize;
        if row_len == 0 || nbytes % row_len as usize != 0 {
            return None;
        }
        let bytes = take.bytes(nbytes)?.to_vec();
        let count = take.u64()?;
        counts.insert(Encoding::from_unsorted_rows(bytes, row_len), count);
    }
    take.done().then_some(RootRecord {
        root,
        outcome,
        counts,
    })
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    put_u32(&mut buf, payload.len() as u32);
    put_u64(&mut buf, checksum(payload));
    buf.extend_from_slice(payload);
    buf
}

fn segment_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("segment-{index:06}.wal"))
}

/// Sorted indices of every `segment-*.wal` in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<u32>> {
    let mut indices = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(indices),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

#[derive(Debug)]
struct Writer {
    file: File,
    index: u32,
    offset: u64,
}

/// The write-ahead journal of one extraction run. Safe to share across
/// worker threads; appends serialize on an internal mutex (the supervisor's
/// commit sink already orders them).
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    segment_bytes: u64,
    /// `MAGIC` plus the framed run-header record — the prologue of every
    /// segment, rewritten on rotation.
    prologue: Vec<u8>,
    writer: Mutex<Writer>,
}

impl Journal {
    /// Starts a fresh journal in `dir`, discarding any existing segments.
    pub fn create(dir: &Path, header: &JournalHeader) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        for index in list_segments(dir)? {
            fs::remove_file(segment_path(dir, index))?;
        }
        let prologue = prologue(header);
        let (file, offset) = new_segment(dir, 0, &prologue)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            prologue,
            writer: Mutex::new(Writer {
                file,
                index: 0,
                offset,
            }),
        })
    }

    /// Lowers the rotation threshold (tests exercise rotation without
    /// writing megabytes). Applies to subsequent appends.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Journal {
        self.segment_bytes = bytes.max(self.prologue.len() as u64 + 1);
        self
    }

    /// Recovers a journal from `dir`: scans segments in order, truncates a
    /// torn tail back to the last committed record, and returns every
    /// durable [`RootRecord`] for replay. An empty or missing directory
    /// behaves like [`Journal::create`] (the original run may have been
    /// killed before its first append).
    ///
    /// # Errors
    ///
    /// Besides IO failures, returns [`io::ErrorKind::InvalidData`] when the
    /// journal's run header does not match `header` — the journal belongs
    /// to a different graph, policy, or root list, and replaying it would
    /// silently produce wrong rows.
    pub fn resume(
        dir: &Path,
        header: &JournalHeader,
        chaos: Option<&dyn ChaosHook>,
    ) -> io::Result<(Journal, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut report = RecoveryReport::default();
        let mut tail: Option<(u32, u64)> = None; // surviving tail segment
        let mut stop = false;
        for (slot, &index) in segments.iter().enumerate() {
            // A gap in segment numbering means the later files are stale
            // leftovers from some earlier run; drop them.
            let contiguous = slot as u32 == index - segments[0];
            if stop || !contiguous || segments[0] != 0 {
                fs::remove_file(segment_path(dir, index))?;
                continue;
            }
            let path = segment_path(dir, index);
            let mut bytes = fs::read(&path)?;
            match chaos.and_then(|c| c.inject_io(IoOp::JournalRead)) {
                Some(IoFault::ShortRead) => bytes.truncate(bytes.len() / 2),
                Some(IoFault::CorruptRecord) => {
                    if let Some(byte) = bytes.last_mut() {
                        *byte ^= 0xFF;
                    }
                }
                _ => {}
            }
            match scan_segment(&bytes, header)? {
                Scan::Clean { records, end } => {
                    report.records.extend(records);
                    report.segments += 1;
                    tail = Some((index, end));
                }
                Scan::Torn { records, end } => {
                    report.records.extend(records);
                    report.truncated_tails += 1;
                    if end > MAGIC.len() as u64 {
                        // Keep the good prefix: truncate the torn tail.
                        let file = OpenOptions::new().write(true).open(&path)?;
                        file.set_len(end)?;
                        report.segments += 1;
                        tail = Some((index, end));
                    } else {
                        // Not even a verifiable header survived: the
                        // whole segment is garbage.
                        fs::remove_file(&path)?;
                    }
                    stop = true;
                }
            }
        }
        let prologue = prologue(header);
        let writer = match tail {
            Some((index, offset)) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(segment_path(dir, index))?;
                file.seek(SeekFrom::End(0))?;
                Writer {
                    file,
                    index,
                    offset,
                }
            }
            None => {
                let (file, offset) = new_segment(dir, 0, &prologue)?;
                Writer {
                    file,
                    index: 0,
                    offset,
                }
            }
        };
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                segment_bytes: DEFAULT_SEGMENT_BYTES,
                prologue,
                writer: Mutex::new(writer),
            },
            report,
        ))
    }

    /// Appends one root record. Injected faults are absorbed here:
    /// `TornWrite` truncates back and rewrites, `Enospc` rotates to a fresh
    /// segment and retries, `CorruptRecord` lands rot that recovery later
    /// truncates. No fault corrupts a previously committed record.
    pub fn append(&self, record: &RootRecord, chaos: Option<&dyn ChaosHook>) -> io::Result<()> {
        self.append_payload(&encode_root_record(record), chaos)
    }

    pub(crate) fn append_payload(
        &self,
        payload: &[u8],
        chaos: Option<&dyn ChaosHook>,
    ) -> io::Result<()> {
        let mut frame = frame(payload);
        let fault = chaos.and_then(|c| c.inject_io(IoOp::JournalWrite));
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if writer.offset >= self.segment_bytes || fault == Some(IoFault::Enospc) {
            // The current segment is (or pretends to be) full; rotation
            // gives the write a fresh device extent.
            self.rotate(&mut writer)?;
        }
        match fault {
            Some(IoFault::TornWrite) => {
                // Simulate the interrupted write, then repair it the way a
                // real writer would: truncate back to the committed prefix
                // and rewrite the whole frame.
                writer.file.write_all(&frame[..frame.len() / 2])?;
                writer.file.set_len(writer.offset)?;
                let offset = writer.offset;
                writer.file.seek(SeekFrom::Start(offset))?;
                writer.file.write_all(&frame)?;
            }
            Some(IoFault::CorruptRecord) => {
                // Rot after checksumming: committed bytes differ from the
                // checksum, so recovery truncates this record away.
                let last = frame.len() - 1;
                frame[last] ^= 0xFF;
                writer.file.write_all(&frame)?;
            }
            _ => writer.file.write_all(&frame)?,
        }
        writer.offset += frame.len() as u64;
        Ok(())
    }

    fn rotate(&self, writer: &mut Writer) -> io::Result<()> {
        let index = writer.index + 1;
        let (file, offset) = new_segment(&self.dir, index, &self.prologue)?;
        writer.file = file;
        writer.index = index;
        writer.offset = offset;
        Ok(())
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn prologue(header: &JournalHeader) -> Vec<u8> {
    let mut buf = MAGIC.to_vec();
    buf.extend_from_slice(&frame(&encode_header(header)));
    buf
}

/// Creates `segment-INDEX.wal` atomically (tmp + rename) so a crash during
/// rotation never leaves a half-written prologue under the real name.
fn new_segment(dir: &Path, index: u32, prologue: &[u8]) -> io::Result<(File, u64)> {
    let tmp = dir.join(format!(".segment-{index:06}.tmp-{}", std::process::id()));
    fs::write(&tmp, prologue)?;
    let path = segment_path(dir, index);
    fs::rename(&tmp, &path)?;
    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
    file.seek(SeekFrom::End(0))?;
    Ok((file, prologue.len() as u64))
}

enum Scan {
    /// Every frame verified; `end` is the file length.
    Clean { records: Vec<RootRecord>, end: u64 },
    /// A frame failed to verify; `end` is the offset of the last good byte.
    Torn { records: Vec<RootRecord>, end: u64 },
}

/// Walks one segment's bytes. Returns `Err` only for a header that
/// *verifies* but belongs to a different run; torn/corrupt frames are data,
/// not errors.
fn scan_segment(bytes: &[u8], expected: &JournalHeader) -> io::Result<Scan> {
    let mut records = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(Scan::Torn { records, end: 0 });
    }
    let mut offset = MAGIC.len();
    let mut saw_header = false;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        let Some(payload) = verify_frame(rest) else {
            return Ok(Scan::Torn {
                records,
                end: if saw_header { offset as u64 } else { 0 },
            });
        };
        if !saw_header {
            match decode_header(payload) {
                Some((version, header)) if version == JOURNAL_VERSION && header == *expected => {
                    saw_header = true;
                }
                Some(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "journal was written by a different run \
                         (graph, policy, or root list changed); \
                         remove the journal directory to start over",
                    ));
                }
                None => {
                    return Ok(Scan::Torn { records, end: 0 });
                }
            }
        } else {
            match decode_root_record(payload) {
                Some(record) => records.push(record),
                // Checksum passed but the payload is malformed: treat as
                // torn rather than replaying garbage.
                None => {
                    return Ok(Scan::Torn {
                        records,
                        end: offset as u64,
                    });
                }
            }
        }
        offset += 12 + payload.len();
    }
    Ok(Scan::Clean {
        records,
        end: offset as u64,
    })
}

/// Verifies one frame at the head of `bytes`; `None` on any torn or
/// corrupt framing.
fn verify_frame(bytes: &[u8]) -> Option<&[u8]> {
    let mut take = Take { bytes };
    let len = take.u32()?;
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let expected = take.u64()?;
    let payload = take.bytes(len as usize)?;
    (checksum(payload) == expected).then_some(payload)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsgf-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn header() -> JournalHeader {
        JournalHeader {
            config: 11,
            graph: 22,
            roots: 33,
        }
    }

    fn record(root: u32) -> RootRecord {
        let mut counts = HashMap::new();
        for i in 0..3u8 {
            let enc = Encoding::from_unsorted_rows(vec![root as u8, i, 1, 0, 2, i], 3);
            counts.insert(enc, root as u64 * 10 + i as u64);
        }
        RootRecord {
            root,
            outcome: if root % 2 == 0 {
                JournaledOutcome::Exact { attempts: 1 }
            } else {
                JournaledOutcome::Degraded {
                    dmax: Some(16),
                    emax: 3,
                    rung: 1,
                    attempts: 2,
                }
            },
            counts,
        }
    }

    /// Injects one fault on the nth consultation of one op.
    struct FaultOnce {
        op: IoOp,
        at: u64,
        fault: IoFault,
        calls: AtomicU64,
    }

    impl FaultOnce {
        fn new(op: IoOp, at: u64, fault: IoFault) -> Self {
            FaultOnce {
                op,
                at,
                fault,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl ChaosHook for FaultOnce {
        fn inject(&self, _root: NodeId, _attempt: usize) -> Option<crate::census::CensusError> {
            None
        }

        fn inject_io(&self, op: IoOp) -> Option<IoFault> {
            if op != self.op {
                return None;
            }
            (self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.at).then_some(self.fault)
        }
    }

    #[test]
    fn root_record_round_trips() {
        for root in 0..6 {
            let original = record(root);
            let decoded = decode_root_record(&encode_root_record(&original)).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn create_append_resume_round_trips() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..10 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 0);
        assert_eq!(report.records.len(), 10);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(*rec, record(i as u32));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_appending_after_recovery() {
        let dir = temp_dir("continue");
        let journal = Journal::create(&dir, &header()).unwrap();
        journal.append(&record(0), None).unwrap();
        drop(journal);
        let (journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.records.len(), 1);
        journal.append(&record(1), None).unwrap();
        drop(journal);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.records.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..5 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        // Chop bytes off the tail: the last record is torn.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 7)
            .unwrap();
        let (journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(report.records.len(), 4, "only the torn record is lost");
        // The truncated journal accepts appends and recovers cleanly.
        journal.append(&record(4), None).unwrap();
        drop(journal);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 0);
        assert_eq!(report.records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_mismatch_refuses_resume() {
        let dir = temp_dir("mismatch");
        let journal = Journal::create(&dir, &header()).unwrap();
        journal.append(&record(0), None).unwrap();
        drop(journal);
        let other = JournalHeader {
            graph: 99,
            ..header()
        };
        let err = Journal::resume(&dir, &other, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_resumes_as_fresh() {
        let dir = temp_dir("fresh");
        let (journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.truncated_tails, 0);
        journal.append(&record(0), None).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replays_across_them() {
        let dir = temp_dir("rotate");
        let journal = Journal::create(&dir, &header())
            .unwrap()
            .with_segment_bytes(256);
        for root in 0..20 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "expected rotation, got {segments:?}");
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.records.len(), 20);
        assert_eq!(report.segments, segments.len() as u32);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_mid_stream_drops_later_segments() {
        let dir = temp_dir("midtorn");
        let journal = Journal::create(&dir, &header())
            .unwrap()
            .with_segment_bytes(256);
        for root in 0..20 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        // Corrupt a byte in the middle of the *first* segment's last record.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 1);
        assert!(report.records.len() < 20);
        assert_eq!(list_segments(&dir).unwrap(), vec![0]);
        // Replayed prefix is intact and in order.
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(*rec, record(i as u32));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_is_repaired_in_place() {
        let dir = temp_dir("tornwrite");
        let chaos = FaultOnce::new(IoOp::JournalWrite, 2, IoFault::TornWrite);
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..4 {
            journal.append(&record(root), Some(&chaos)).unwrap();
        }
        drop(journal);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 0, "repair must leave no tear");
        assert_eq!(report.records.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_fault_rotates_and_retries() {
        let dir = temp_dir("enospc");
        let chaos = FaultOnce::new(IoOp::JournalWrite, 2, IoFault::Enospc);
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..4 {
            journal.append(&record(root), Some(&chaos)).unwrap();
        }
        drop(journal);
        assert_eq!(list_segments(&dir).unwrap(), vec![0, 1]);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.records.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_fault_costs_only_the_tail() {
        let dir = temp_dir("rot");
        let chaos = FaultOnce::new(IoOp::JournalWrite, 4, IoFault::CorruptRecord);
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..4 {
            journal.append(&record(root), Some(&chaos)).unwrap();
        }
        drop(journal);
        let (_journal, report) = Journal::resume(&dir, &header(), None).unwrap();
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(report.records.len(), 3, "rotted record truncated away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_fault_truncates_but_replays_a_prefix() {
        let dir = temp_dir("shortread");
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..8 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        let chaos = FaultOnce::new(IoOp::JournalRead, 1, IoFault::ShortRead);
        let (_journal, report) = Journal::resume(&dir, &header(), Some(&chaos)).unwrap();
        assert_eq!(report.truncated_tails, 1);
        assert!(report.records.len() < 8);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.root, i as u32, "prefix must stay ordered");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roots_hash_is_order_sensitive() {
        let a = [NodeId::new(1), NodeId::new(2)];
        let b = [NodeId::new(2), NodeId::new(1)];
        assert_ne!(roots_hash(&a), roots_hash(&b));
        assert_eq!(
            roots_hash(&a),
            roots_hash(&[NodeId::new(1), NodeId::new(2)])
        );
    }

    #[test]
    fn tail_reads_committed_prefix_without_mutating() {
        let dir = temp_dir("tail");
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..6 {
            journal.append(&record(root), None).unwrap();
        }
        let report = tail_records(&dir).unwrap();
        assert_eq!(report.header, Some(header()));
        assert_eq!(report.records.len(), 6);
        assert!(!report.torn);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(*rec, record(i as u32));
        }
        // The journal is still live: the tail must not have truncated or
        // deleted anything, and further appends keep feeding it.
        journal.append(&record(6), None).unwrap();
        assert_eq!(tail_records(&dir).unwrap().records.len(), 7);
        drop(journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_of_missing_or_empty_dir_is_empty() {
        let dir = temp_dir("tailempty");
        let gone = dir.join("never-created");
        let report = tail_records(&gone).unwrap();
        assert!(report.header.is_none());
        assert!(report.records.is_empty());
        assert!(!report.torn);
        // An existing directory with no segments is just as empty.
        fs::create_dir_all(&dir).unwrap();
        let report = tail_records(&dir).unwrap();
        assert!(report.records.is_empty());
        assert!(!report.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_stops_at_torn_frame_and_leaves_the_file_alone() {
        let dir = temp_dir("tailtorn");
        let journal = Journal::create(&dir, &header()).unwrap();
        for root in 0..5 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        // Chop mid-frame: a committed prefix plus a torn tail.
        let path = segment_path(&dir, 0);
        let bytes = fs::read(&path).unwrap();
        let torn_len = bytes.len() - 7;
        fs::write(&path, &bytes[..torn_len]).unwrap();
        let report = tail_records(&dir).unwrap();
        assert!(report.torn);
        assert_eq!(report.records.len(), 4, "good prefix survives");
        // Read-only: the torn file is byte-for-byte untouched, so a later
        // writer (or Journal::resume) still owns the truncation decision.
        assert_eq!(fs::read(&path).unwrap().len(), torn_len);
        // Once the "in-flight" frame completes, a re-tail sees it: restore
        // the full segment and the feed catches up.
        fs::write(&path, &bytes).unwrap();
        let report = tail_records(&dir).unwrap();
        assert!(!report.torn);
        assert_eq!(report.records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_spans_segments_and_stops_at_gaps() {
        let dir = temp_dir("tailseg");
        let journal = Journal::create(&dir, &header())
            .unwrap()
            .with_segment_bytes(256);
        for root in 0..10 {
            journal.append(&record(root), None).unwrap();
        }
        drop(journal);
        let full = tail_records(&dir).unwrap();
        assert!(full.segments > 1, "fixture must actually rotate segments");
        assert_eq!(full.records.len(), 10);
        // Remove a middle segment: the contiguous prefix before the gap is
        // still served, flagged torn.
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        let gapped = tail_records(&dir).unwrap();
        assert!(gapped.torn);
        assert!(gapped.records.len() < 10);
        assert_eq!(gapped.segments, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
