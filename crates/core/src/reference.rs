//! A brutally simple reference census — the executable specification the
//! optimized engine is validated against.
//!
//! [`naive_census`] enumerates *every* edge subset of the graph up to
//! `emax` edges, filters the ones forming a connected subgraph containing
//! the root (and, with `dmax` set, the ones the degree heuristic admits),
//! and tallies their encodings. Exponential in the edge count — only usable
//! on tiny graphs — but each rule maps one-to-one onto the paper's prose,
//! which is exactly what a test oracle should do.

use std::collections::HashMap;

use hsgf_graph::{HetGraph, NodeId, Orientation};

use crate::census::CensusConfig;
use crate::sequence::Encoding;

/// Enumerates all census subgraphs of `root` by brute force and returns the
/// counts per encoding. Semantics match
/// [`crate::census::CensusEngine::census_encodings`]; see module docs.
///
/// # Panics
/// If the graph has more than 25 edges (the subset enumeration is `2^E`).
pub fn naive_census(
    graph: &HetGraph,
    root: NodeId,
    config: &CensusConfig,
) -> HashMap<Encoding, u64> {
    let e = graph.edge_count();
    assert!(e <= 25, "naive census is exponential; got {e} edges");
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let alphabet = graph.label_count() + usize::from(config.mask_root_label);
    let mask_byte = config.mask_root_label.then(|| graph.label_count() as u8);

    let mut counts: HashMap<Encoding, u64> = HashMap::new();
    for bits in 1u32..(1u32 << e) {
        let size = bits.count_ones() as usize;
        if size > config.emax {
            continue;
        }
        let subset: Vec<(NodeId, NodeId)> = (0..e)
            .filter(|&i| bits & (1 << i) != 0)
            .map(|i| edges[i])
            .collect();
        if !admissible(graph, root, &subset, config.dmax) {
            continue;
        }
        *counts
            .entry(encode_subset(
                graph,
                root,
                &subset,
                alphabet,
                mask_byte,
                config.directed,
                config.edge_typed,
            ))
            .or_insert(0) += 1;
    }
    counts
}

/// Whether the edge subset is a census subgraph of `root`:
/// connected, contains the root, and — under the degree heuristic — growable
/// from the root without ever expanding through a non-root node of degree
/// greater than `dmax`.
fn admissible(
    graph: &HetGraph,
    root: NodeId,
    subset: &[(NodeId, NodeId)],
    dmax: Option<u32>,
) -> bool {
    // Root must be an endpoint of some edge (a connected subgraph with ≥1
    // edge containing the root touches it).
    if !subset.iter().any(|&(u, v)| u == root || v == root) {
        return false;
    }
    let expandable = |n: NodeId| {
        n == root
            || match dmax {
                None => true,
                Some(d) => graph.degree(n) as u32 <= d,
            }
    };
    // Grow from the root: an edge activates once one of its endpoints is
    // reached AND that endpoint is expandable. Fixpoint iteration (the
    // subset is tiny).
    let mut in_set: Vec<NodeId> = vec![root];
    let mut covered = vec![false; subset.len()];
    loop {
        let mut progress = false;
        for (i, &(u, v)) in subset.iter().enumerate() {
            if covered[i] {
                continue;
            }
            let u_ok = in_set.contains(&u) && expandable(u);
            let v_ok = in_set.contains(&v) && expandable(v);
            // A cycle-closing edge between two reached nodes also needs an
            // expandable endpoint: the engine only pushes candidates from
            // expandable nodes.
            if u_ok || v_ok {
                covered[i] = true;
                progress = true;
                if !in_set.contains(&u) {
                    in_set.push(u);
                }
                if !in_set.contains(&v) {
                    in_set.push(v);
                }
            }
        }
        if !progress {
            break;
        }
    }
    covered.iter().all(|&c| c)
}

/// Looks up the undirected edge id of a node pair.
fn edge_id_of(graph: &HetGraph, u: NodeId, v: NodeId) -> u32 {
    let idx = graph
        .neighbors(u)
        .iter()
        .position(|&x| x == v)
        .expect("subset edges come from the graph");
    graph.incident_edge_ids(u)[idx]
}

/// Builds the (optionally directed) encoding of an explicit edge subset.
#[allow(clippy::too_many_arguments)]
fn encode_subset(
    graph: &HetGraph,
    root: NodeId,
    subset: &[(NodeId, NodeId)],
    alphabet: usize,
    mask_byte: Option<u8>,
    directed: bool,
    edge_typed: bool,
) -> Encoding {
    let mut nodes: Vec<NodeId> = Vec::new();
    for &(u, v) in subset {
        if !nodes.contains(&u) {
            nodes.push(u);
        }
        if !nodes.contains(&v) {
            nodes.push(v);
        }
    }
    let label_byte = |n: NodeId| match mask_byte {
        Some(m) if n == root => m,
        _ => graph.label(n).raw(),
    };
    let type_count = if edge_typed {
        graph.edge_type_count()
    } else {
        1
    };
    let cols = alphabet * if directed { 3 } else { 1 } * type_count;
    let col = |label: u8, o: Orientation, ty: usize| -> usize {
        let block = if directed { o.block() } else { 0 };
        let ty = if edge_typed { ty } else { 0 };
        (block * type_count + ty) * alphabet + label as usize
    };
    let row_len = 1 + cols;
    let mut rows = vec![0u8; nodes.len() * row_len];
    for (i, &n) in nodes.iter().enumerate() {
        rows[i * row_len] = label_byte(n);
    }
    for &(u, v) in subset {
        let iu = nodes.iter().position(|&n| n == u).expect("collected above");
        let iv = nodes.iter().position(|&n| n == v).expect("collected above");
        let id = edge_id_of(graph, u, v);
        let ty = graph.edge_type(id) as usize;
        let (ou, ov) = if directed {
            let ou = graph.orientation(u, v, id);
            let ov = match ou {
                Orientation::Symmetric => Orientation::Symmetric,
                Orientation::Incoming => Orientation::Outgoing,
                Orientation::Outgoing => Orientation::Incoming,
            };
            (ou, ov)
        } else {
            (Orientation::Symmetric, Orientation::Symmetric)
        };
        rows[iu * row_len + 1 + col(label_byte(v), ou, ty)] += 1;
        rows[iv * row_len + 1 + col(label_byte(u), ov, ty)] += 1;
    }
    Encoding::from_unsorted_rows(rows, row_len as u8)
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{GraphBuilder, Label, LabelSet};

    use super::*;

    /// Triangle a(0) - b(1) - c(0), all edges present.
    fn triangle() -> HetGraph {
        let labels = LabelSet::from_names(["a", "b"]).unwrap();
        GraphBuilder::from_edges(
            labels,
            &[Label::new(0), Label::new(1), Label::new(0)],
            &[(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn triangle_census_from_a_corner() {
        let g = triangle();
        let config = CensusConfig::default().with_emax(3);
        let counts = naive_census(&g, NodeId::new(0), &config);
        // Subgraphs containing node 0 with ≤3 edges:
        //  1-edge: {01}, {02}                                      → 2
        //  2-edge: {01,02}, {01,12}, {02,12}                       → 3
        //  3-edge: {01,02,12}                                      → 1
        let total: u64 = counts.values().sum();
        assert_eq!(total, 6);
        // Encodings: the two 1-edge subgraphs differ (a–b vs a–a);
        // {01,12} and {02,12} are both a–b–a paths... wait, {02,12} is
        // a–a plus a–b: a path a–a–b. {01,12}: a–b plus b–a: path a–b–a.
        // {01,02}: star at a with neighbours b and a: path b–a–a. So
        // {01,02} and {02,12} are... different rooted? Encodings ignore
        // the root: b–a–a ≃ a–a–b as graphs → same encoding.
        // Distinct encodings: a–b, a–a, (a–b–a), (a–a–b), triangle → 5.
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn dmax_blocks_expansion_through_hubs() {
        // Path r - h - x where h is a hub (degree 2 > dmax 1).
        let labels = LabelSet::from_names(["t"]).unwrap();
        let g = GraphBuilder::from_edges(
            labels,
            &[Label::new(0), Label::new(0), Label::new(0)],
            &[(0, 1), (1, 2)],
        )
        .unwrap();
        let config = CensusConfig::default().with_emax(2).with_dmax(Some(1));
        let counts = naive_census(&g, NodeId::new(0), &config);
        // Only {r-h} survives: the 2-path needs expansion through h.
        let total: u64 = counts.values().sum();
        assert_eq!(total, 1);
        // Without the constraint both subgraphs count.
        let config = CensusConfig::default().with_emax(2);
        let counts = naive_census(&g, NodeId::new(0), &config);
        let total: u64 = counts.values().sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn masking_changes_encodings_but_not_totals() {
        let g = triangle();
        let plain = naive_census(&g, NodeId::new(0), &CensusConfig::default().with_emax(2));
        let masked = naive_census(
            &g,
            NodeId::new(0),
            &CensusConfig::default()
                .with_emax(2)
                .with_mask_root_label(true),
        );
        let t1: u64 = plain.values().sum();
        let t2: u64 = masked.values().sum();
        assert_eq!(t1, t2, "masking must not change which subgraphs count");
        // With the root masked, the two 1-edge subgraphs *-b and *-a are
        // distinct, and distinct from any unmasked encoding.
        assert!(plain.keys().all(|e| e.label_count() == 2));
        assert!(masked.keys().all(|e| e.label_count() == 3));
    }

    #[test]
    fn root_with_no_edges_has_empty_census() {
        let labels = LabelSet::from_names(["t"]).unwrap();
        let g = GraphBuilder::from_edges(
            labels,
            &[Label::new(0), Label::new(0), Label::new(0)],
            &[(1, 2)],
        )
        .unwrap();
        let counts = naive_census(&g, NodeId::new(0), &CensusConfig::default());
        assert!(counts.is_empty());
    }
}
