//! Rolling subgraph hashes (paper §3.2, "Hashing Optimization").
//!
//! Characteristic sequences are vectors of small integers; converting them
//! to strings before hashing is wasteful. The paper assigns every label `l`
//! a base `b_l` and scores a node's row `s_v = (λ(v), t_1, …, t_k)` as the
//! *row value*
//!
//! ```text
//! rv(s_v) = λ(v) + Σ_{i=1..k}  t_i · b_{λ(v)}^i        (mod 2^64 here)
//! ```
//!
//! and the subgraph hash as a sum over nodes, which is invariant under node
//! order and updates incrementally when the subgraph grows.
//!
//! Two combination schemes are provided:
//!
//! * [`HashScheme::Linear`] — the paper's formula (5) verbatim: the hash is
//!   `Σ_v rv(s_v)`. Because every term is linear in the counts, this value
//!   only depends on the *multiset of edge label pairs*: a single-label star
//!   `K_{1,3}` and path `P_4` hash identically. We keep it for fidelity and
//!   for the A1 ablation, but it is a weak key.
//! * [`HashScheme::Mixed`] (default) — each row value is passed through a
//!   64-bit finalizer before summing: `Σ_v mix(rv(s_v))`. Still order
//!   invariant, still O(1) to update per affected node (subtract the old
//!   mixed value, add the new one), and collision-resistant in practice.

use crate::sequence::Encoding;

/// How row values are combined into the subgraph hash.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HashScheme {
    /// `Σ_v mix(rv(s_v))` — collision-resistant rolling hash (default).
    Mixed,
    /// `Σ_v rv(s_v)` — the paper's linear formula (5); collides for
    /// subgraphs sharing an edge-label multiset.
    Linear,
}

impl Default for HashScheme {
    fn default() -> Self {
        HashScheme::Mixed
    }
}

/// Per-label hash bases with precomputed powers.
#[derive(Clone, Debug)]
pub struct LabelBases {
    /// `powers[l][i] = b_l^i (mod 2^64)` for `i ∈ 0..=label_count`.
    powers: Vec<Vec<u64>>,
}

/// splitmix64 step — cheap, well-distributed seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix(*state)
}

/// The splitmix64 finalizer: a fast 64-bit bijective mixer.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LabelBases {
    /// Derives one odd 64-bit base per label from `seed` and precomputes
    /// powers up to `label_count` (the highest exponent an undirected row
    /// can use).
    pub fn new(label_count: usize, seed: u64) -> Self {
        Self::with_max_exponent(label_count, label_count, seed)
    }

    /// As [`LabelBases::new`], but with an explicit maximum exponent —
    /// the directed characteristic sequence has `3 × label_count` count
    /// columns per row, so its exponents exceed the label count.
    pub fn with_max_exponent(label_count: usize, max_exponent: usize, seed: u64) -> Self {
        let mut state = seed;
        let powers = (0..label_count)
            .map(|_| {
                let base = splitmix64(&mut state) | 1; // odd ⇒ invertible mod 2^64
                let mut row = Vec::with_capacity(max_exponent + 1);
                let mut acc = 1u64;
                row.push(acc);
                for _ in 0..max_exponent {
                    acc = acc.wrapping_mul(base);
                    row.push(acc);
                }
                row
            })
            .collect();
        LabelBases { powers }
    }

    /// Number of labels covered.
    pub fn label_count(&self) -> usize {
        self.powers.len()
    }

    /// `b_{label}^{exp}` — `exp` must be ≤ `label_count`.
    #[inline]
    pub fn power(&self, label: usize, exp: usize) -> u64 {
        self.powers[label][exp]
    }

    /// Linear row value `rv(s_v) = λ(v) + Σ t_i · b_{λ(v)}^i`.
    #[inline]
    pub fn row_value(&self, label: usize, counts: &[u8]) -> u64 {
        let pows = &self.powers[label];
        let mut acc = label as u64;
        for (i, &t) in counts.iter().enumerate() {
            if t != 0 {
                acc = acc.wrapping_add(pows[i + 1].wrapping_mul(t as u64));
            }
        }
        acc
    }

    /// The row-value delta of an existing node of label `u_label` gaining
    /// one in-subgraph neighbour of label `new_label`.
    #[inline]
    pub fn neighbor_delta(&self, u_label: usize, new_label: usize) -> u64 {
        self.powers[u_label][new_label + 1]
    }

    /// Hashes a complete encoding from scratch under the given scheme
    /// (reference path used by tests and validation).
    pub fn hash_encoding(&self, enc: &Encoding, scheme: HashScheme) -> u64 {
        let mut acc = 0u64;
        for row in enc.rows() {
            let rv = self.row_value(row[0] as usize, &row[1..]);
            acc = acc.wrapping_add(match scheme {
                HashScheme::Mixed => mix(rv),
                HashScheme::Linear => rv,
            });
        }
        acc
    }
}

/// FNV-1a over the canonical encoding bytes — the "convert to a string and
/// hash it" strategy the paper compares against (ablation A1). Requires the
/// sorted encoding to be materialized, which is exactly the cost the rolling
/// scheme avoids.
pub fn fnv1a_encoding_hash(enc: &Encoding) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in enc.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use hsgf_graph::Label;

    use super::*;

    fn enc(label_count: usize, labels: &[u8], edges: &[(u8, u8)]) -> Encoding {
        let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
        Encoding::of_subgraph(label_count, &labels, edges)
    }

    #[test]
    fn linear_hash_matches_row_sum_definition() {
        let bases = LabelBases::new(3, 42);
        let e = enc(3, &[2, 1, 2], &[(0, 1), (1, 2)]);
        // Two z rows (label 2) with one y neighbour each, one y row (label
        // 1) with two z neighbours; each row value includes the label term.
        let expected = 2u64
            .wrapping_add(bases.power(2, 2))
            .wrapping_add(2u64.wrapping_add(bases.power(2, 2)))
            .wrapping_add(1u64.wrapping_add(bases.power(1, 3).wrapping_mul(2)));
        assert_eq!(bases.hash_encoding(&e, HashScheme::Linear), expected);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let e = enc(2, &[0, 1], &[(0, 1)]);
        let a = LabelBases::new(2, 7).hash_encoding(&e, HashScheme::Mixed);
        let b = LabelBases::new(2, 7).hash_encoding(&e, HashScheme::Mixed);
        let c = LabelBases::new(2, 8).hash_encoding(&e, HashScheme::Mixed);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn incremental_row_deltas_match_full_rehash() {
        let bases = LabelBases::new(3, 99);
        // Subgraph: 0(l0) -- 1(l1); insert node 2 (l2) adjacent to both.
        let before = enc(3, &[0, 1], &[(0, 1)]);
        let after = enc(3, &[0, 1, 2], &[(0, 1), (0, 2), (1, 2)]);
        // Row values before/after for nodes 0 and 1, plus the new node 2.
        let rv0_before = bases.row_value(0, &[0, 1, 0]);
        let rv0_after = rv0_before.wrapping_add(bases.neighbor_delta(0, 2));
        let rv1_before = bases.row_value(1, &[1, 0, 0]);
        let rv1_after = rv1_before.wrapping_add(bases.neighbor_delta(1, 2));
        let rv2 = bases.row_value(2, &[1, 1, 0]);
        let h_before = bases.hash_encoding(&before, HashScheme::Mixed);
        let h_incremental = h_before
            .wrapping_sub(mix(rv0_before))
            .wrapping_add(mix(rv0_after))
            .wrapping_sub(mix(rv1_before))
            .wrapping_add(mix(rv1_after))
            .wrapping_add(mix(rv2));
        assert_eq!(
            h_incremental,
            bases.hash_encoding(&after, HashScheme::Mixed)
        );
    }

    #[test]
    fn linear_scheme_collides_on_edge_label_multisets() {
        // The documented weakness: a single-label star K_{1,3} and path P_4
        // share the edge-label multiset AND the node-label multiset, so the
        // linear scheme cannot separate them...
        let bases = LabelBases::new(2, 1);
        let path = enc(2, &[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = enc(2, &[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(path, star);
        assert_eq!(
            bases.hash_encoding(&path, HashScheme::Linear),
            bases.hash_encoding(&star, HashScheme::Linear)
        );
        // ... and the mixed scheme separates them.
        assert_ne!(
            bases.hash_encoding(&path, HashScheme::Mixed),
            bases.hash_encoding(&star, HashScheme::Mixed)
        );
    }

    #[test]
    fn distinct_small_encodings_hash_distinctly_under_mixed() {
        let bases = LabelBases::new(2, 1);
        let encodings = [
            enc(2, &[0, 1], &[(0, 1)]),
            enc(2, &[0, 0], &[(0, 1)]),
            enc(2, &[1, 1], &[(0, 1)]),
            enc(2, &[0, 1, 0], &[(0, 1), (1, 2)]),
            enc(2, &[0, 1, 0], &[(0, 1), (0, 2)]),
            enc(2, &[0, 1, 1], &[(0, 1), (0, 2)]),
            enc(2, &[0; 4], &[(0, 1), (1, 2), (2, 3)]),
            enc(2, &[0; 4], &[(0, 1), (0, 2), (0, 3)]),
        ];
        let mut hashes: Vec<u64> = encodings
            .iter()
            .map(|e| bases.hash_encoding(e, HashScheme::Mixed))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), encodings.len());
    }

    #[test]
    fn fnv_hash_distinguishes_same_cases() {
        let encodings = [
            enc(2, &[0, 1], &[(0, 1)]),
            enc(2, &[0, 0], &[(0, 1)]),
            enc(2, &[0, 1, 0], &[(0, 1), (1, 2)]),
        ];
        let mut hashes: Vec<u64> = encodings.iter().map(fnv1a_encoding_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), encodings.len());
    }

    #[test]
    fn hash_is_order_invariant_like_the_encoding() {
        let bases = LabelBases::new(3, 5);
        let a = enc(3, &[2, 1, 2], &[(0, 1), (1, 2)]);
        let b = enc(3, &[1, 2, 2], &[(1, 0), (0, 2)]);
        assert_eq!(a, b);
        for scheme in [HashScheme::Mixed, HashScheme::Linear] {
            assert_eq!(
                bases.hash_encoding(&a, scheme),
                bases.hash_encoding(&b, scheme)
            );
        }
    }

    #[test]
    fn mix_is_bijective_on_samples() {
        // mix is a bijection on u64; spot-check injectivity on a range.
        let mut outs: Vec<u64> = (0..10_000u64).map(mix).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
