//! Sharded per-root census cache with content-fingerprint invalidation.
//!
//! A cache entry is keyed by [`CacheKey`]: the root id, the fingerprint of
//! the root's `emax`-hop dependency neighbourhood
//! ([`hsgf_graph::fingerprint`]), a fingerprint of the extraction
//! configuration ([`config_fingerprint`] / [`policy_fingerprint`]), and the
//! degradation-ladder level the result was produced at. Because the
//! neighbourhood fingerprint covers everything the census can observe —
//! ball nodes with labels and global degrees, plus the content of every
//! edge the DFS could walk — entries *self-invalidate*: any edit inside
//! the dependency radius changes the fingerprint and the stale entry is
//! simply never looked up again. There is no explicit invalidation
//! protocol.
//!
//! # Cacheability rules
//!
//! * [`CachedOutcome::Exact`] results are stored at ladder level 0.
//! * [`CachedOutcome::Degraded`] results are stored at their ladder rung,
//!   so a budget-clipped row can never masquerade as an exact one — the
//!   supervised lookup probes levels in ascending order and the level is
//!   part of the key. The cache stores *fidelity* (the rung), not attempt
//!   history: a root that needed transient-fault retries replays from the
//!   cache with the retry-free attempt count.
//! * Failed and cancelled roots are **never** stored: a panic or
//!   cancellation says nothing reusable about the root's census, and a
//!   poisoned root must not pollute the cache.
//! * Extractions with a wall-clock `root_timeout` bypass the cache
//!   entirely — timeouts are nondeterministic, so the ladder level an
//!   entry was produced at would not be a pure function of the key.
//!
//! # Structure
//!
//! The map is split over [`SHARD_COUNT`] mutex-protected shards, mirroring
//! the sharded layout of [`crate::obs`]; shard choice hashes the *key*
//! (not the thread), since a cache — unlike a counter set — must find an
//! entry regardless of which thread stored it. An optional entry cap
//! bounds the memory tier with per-shard FIFO eviction. The optional disk
//! tier is write-through (one file per entry, atomically renamed into
//! place) and is never evicted by the cap; disk hits are promoted back
//! into memory. Process-local [`CacheStats`] drain into a persistent
//! `stats.txt` on [`CensusCache::flush`], which is what `hsgf cache-stats`
//! reads across processes.
//!
//! # Disk-rot posture
//!
//! Every entry file ends in a checksum line covering the whole body. An
//! entry that fails the header, checksum, or row validation is **moved to
//! a `quarantine/` subdirectory** (and counted in
//! [`CacheStats::quarantined`]) instead of silently reading as a miss, so
//! operators see rot instead of paying invisible recomputations. Injected
//! IO faults ([`crate::journal::IoFault`] via
//! [`ChaosHook::inject_io`]) exercise exactly these paths: a torn or
//! failed write never renames a partial file into place, and a corrupted
//! write is quarantined by the next read.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hsgf_graph::rng::splitmix64;
use hsgf_graph::NodeId;

use crate::census::CensusConfig;
use crate::hash::HashScheme;
use crate::journal::{IoFault, IoOp};
use crate::obs::{Metric, Obs};
use crate::sequence::Encoding;
use crate::supervisor::{ChaosHook, ExtractionPolicy};

/// Number of mutex-protected shards (same fan-out as [`crate::obs`]).
pub const SHARD_COUNT: usize = 16;

/// On-disk entry format version; folded into [`config_fingerprint`] so a
/// format bump orphans (rather than misreads) old entries.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Domain-separation seed for configuration fingerprints ("HSGF" ++ "CF").
const CONFIG_SEED: u64 = 0x4853_4746_4346;

/// Domain-separation seed for entry-body checksums ("HSGF" ++ "CE").
const ENTRY_CHECKSUM_SEED: u64 = 0x4853_4746_4345;

/// Header line of every on-disk entry.
const ENTRY_HEADER: &str = "hsgf-census-cache 2";

/// Subdirectory corrupt entry files are moved into.
const QUARANTINE_DIR: &str = "quarantine";

#[inline]
fn fold(hash: u64, word: u64) -> u64 {
    let mut state = hash ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[inline]
fn fold_opt(hash: u64, word: Option<u64>) -> u64 {
    match word {
        Some(w) => fold(fold(hash, 1), w),
        None => fold(hash, 0),
    }
}

/// Fingerprint of the census-relevant configuration fields.
///
/// Every [`CensusConfig`] field enters the hash: all of them are
/// scheduler-invariant (thread count and scheduler kind are deliberately
/// *not* part of the config), and all of them can influence the emitted
/// encodings or their counts. The format version is folded in first so
/// incompatible on-disk layouts never collide.
pub fn config_fingerprint(config: &CensusConfig) -> u64 {
    let mut h = fold(CONFIG_SEED, CACHE_FORMAT_VERSION as u64);
    h = fold(h, config.emax as u64);
    h = fold_opt(h, config.dmax.map(u64::from));
    h = fold(h, config.mask_root_label as u64);
    h = fold(h, config.group_by_label as u64);
    h = fold(h, config.hash_seed);
    h = fold(
        h,
        match config.hash_scheme {
            HashScheme::Mixed => 0,
            HashScheme::Linear => 1,
        },
    );
    h = fold(h, config.directed as u64);
    h = fold(h, config.edge_typed as u64);
    h
}

/// Extends a [`config_fingerprint`] with the supervised-extraction policy
/// knobs that shape the degradation ladder (`max_subgraphs`,
/// `max_frontier`, `degrade`). The wall-clock `root_timeout` is *not*
/// folded: timeouts make outcomes nondeterministic, so supervised callers
/// bypass the cache whenever one is set instead of keying on it.
pub fn policy_fingerprint(base: u64, policy: &ExtractionPolicy) -> u64 {
    let mut h = fold(base, 0x504F_4C59); // "POLY"
    h = fold_opt(h, policy.max_subgraphs);
    h = fold_opt(h, policy.max_frontier.map(|f| f as u64));
    h = fold(h, policy.degrade as u64);
    h
}

/// Full cache key of one per-root census result.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Root node the census was extracted for.
    pub root: NodeId,
    /// Neighbourhood fingerprint of the root's dependency set
    /// ([`hsgf_graph::fingerprint::neighborhood_fingerprint`] at radius
    /// `emax`).
    pub neighborhood: u64,
    /// Configuration fingerprint ([`config_fingerprint`], optionally
    /// extended by [`policy_fingerprint`]).
    pub config: u64,
    /// Degradation-ladder level the result was produced at (0 = exact).
    pub level: u8,
}

impl CacheKey {
    fn shard(&self) -> usize {
        let mut h = fold(self.root.raw() as u64, self.neighborhood);
        h = fold(h, self.config);
        h = fold(h, self.level as u64);
        (h % SHARD_COUNT as u64) as usize
    }

    fn file_name(&self) -> String {
        format!(
            "{:08x}-{:016x}-{:016x}-{:02x}.entry",
            self.root.raw(),
            self.neighborhood,
            self.config,
            self.level
        )
    }
}

/// How a cached census was obtained — mirrors the cacheable subset of
/// [`crate::supervisor::RootOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedOutcome {
    /// Extracted with the full requested configuration.
    Exact,
    /// Extracted after budget-driven degradation.
    Degraded {
        /// Effective `dmax` of the rung that succeeded.
        dmax: Option<u32>,
        /// Effective `emax` of the rung that succeeded.
        emax: usize,
        /// 1-based degradation-ladder rung the result was produced at.
        rung: u8,
    },
}

impl CachedOutcome {
    /// The ladder level this outcome must be stored at: 0 for exact, the
    /// ladder rung for degraded.
    pub fn level(&self) -> u8 {
        match *self {
            CachedOutcome::Exact => 0,
            CachedOutcome::Degraded { rung, .. } => rung,
        }
    }
}

/// One cached per-root census: the encoding counts plus how they were
/// obtained.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Subgraph-encoding counts, exactly as the census produced them.
    pub counts: HashMap<Encoding, u64>,
    /// Provenance of the counts.
    pub outcome: CachedOutcome,
}

/// Process-local cache counters (monotonic since construction or the last
/// [`CensusCache::flush`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memory or disk tier.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Memory-tier entries dropped by the cap.
    pub evictions: u64,
    /// Entries written.
    pub stores: u64,
    /// Corrupt disk entries moved into the `quarantine/` subdirectory.
    pub quarantined: u64,
    /// Microseconds spent computing neighbourhood fingerprints.
    pub fingerprint_micros: u64,
}

impl CacheStats {
    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.stores += other.stores;
        self.quarantined += other.quarantined;
        self.fingerprint_micros += other.fingerprint_micros;
    }
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Arc<CacheEntry>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    fingerprint_micros: AtomicU64,
}

/// The sharded census cache. See the module docs for the design.
pub struct CensusCache {
    shards: Vec<Mutex<Shard>>,
    dir: Option<PathBuf>,
    /// Memory-tier entry cap, spread over the shards; `None` = unbounded.
    cap: Option<usize>,
    stats: StatCells,
    obs: Obs,
    io_chaos: Option<Arc<dyn ChaosHook + Send + Sync>>,
}

impl CensusCache {
    fn empty(dir: Option<PathBuf>) -> Self {
        CensusCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            dir,
            cap: None,
            stats: StatCells::default(),
            obs: Obs::default(),
            io_chaos: None,
        }
    }

    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        Self::empty(None)
    }

    /// A cache backed by `dir` (created if missing): every store is
    /// written through to one file per entry, and misses in the memory
    /// tier fall back to reading the entry file.
    pub fn on_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self::empty(Some(dir)))
    }

    /// Caps the memory tier at `cap` entries (FIFO eviction per shard;
    /// the disk tier is never evicted). A cap of 0 disables the memory
    /// tier entirely.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Attaches an observability handle; hits/misses/evictions and
    /// fingerprint time are mirrored into its runtime counters.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches an IO chaos hook; [`ChaosHook::inject_io`] is consulted
    /// before every disk-tier read and write, letting tests exercise the
    /// torn-write / corruption / quarantine paths deterministically.
    pub fn with_io_chaos(mut self, chaos: Arc<dyn ChaosHook + Send + Sync>) -> Self {
        self.io_chaos = Some(chaos);
        self
    }

    /// The backing directory, when this cache has a disk tier.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn inject_io(&self, op: IoOp) -> Option<IoFault> {
        self.io_chaos.as_ref().and_then(|c| c.inject_io(op))
    }

    fn shard_cap(&self) -> Option<usize> {
        self.cap.map(|c| c.div_ceil(SHARD_COUNT))
    }

    /// Looks `key` up, consulting memory first and the disk tier second.
    /// Disk hits are promoted into the memory tier.
    pub fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        match self.lookup_uncounted(key) {
            Some(entry) => {
                self.note_hit();
                Some(entry)
            }
            None => {
                self.note_miss();
                None
            }
        }
    }

    /// [`CensusCache::lookup`] without touching the hit/miss counters.
    /// Multi-level ladder probes use this so one *logical* lookup (a root)
    /// accounts exactly one hit or one miss, however many levels it scans.
    pub(crate) fn lookup_uncounted(&self, key: &CacheKey) -> Option<CacheEntry> {
        {
            let shard = self.shards[key.shard()]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = shard.map.get(key) {
                return Some(CacheEntry::clone(entry));
            }
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(key.file_name());
            match read_entry(&path, self.inject_io(IoOp::CacheRead)) {
                DiskRead::Hit(entry) => {
                    self.insert_memory(*key, Arc::new(entry.clone()));
                    return Some(entry);
                }
                DiskRead::Corrupt => self.quarantine(dir, &path),
                DiskRead::Absent => {}
            }
        }
        None
    }

    /// Moves a corrupt entry file into the `quarantine/` subdirectory so
    /// it is inspectable and never re-read. Failures are swallowed — a
    /// file that cannot even be moved will keep reading as corrupt, which
    /// is noisy but safe.
    fn quarantine(&self, dir: &Path, path: &Path) {
        let Some(name) = path.file_name() else { return };
        let pen = dir.join(QUARANTINE_DIR);
        if fs::create_dir_all(&pen).is_err() {
            return;
        }
        if fs::rename(path, pen.join(name)).is_ok() {
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_hit(&self) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        self.obs.incr(Metric::CacheHits);
    }

    pub(crate) fn note_miss(&self) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.incr(Metric::CacheMisses);
    }

    /// Stores one census result. Disk-tier write failures are swallowed:
    /// the cache is an optimization, and a failed write only costs a
    /// future recomputation.
    pub fn store(&self, key: CacheKey, entry: &CacheEntry) {
        self.insert_memory(key, Arc::new(entry.clone()));
        if let Some(dir) = &self.dir {
            let _ = write_entry(dir, &key, entry, self.inject_io(IoOp::CacheWrite));
        }
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn insert_memory(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        let cap = self.shard_cap();
        let mut evicted = 0u64;
        {
            let mut shard = self.shards[key.shard()]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if shard.map.insert(key, entry).is_none() {
                shard.order.push_back(key);
            }
            if let Some(cap) = cap {
                while shard.map.len() > cap {
                    match shard.order.pop_front() {
                        Some(old) => {
                            if shard.map.remove(&old).is_some() {
                                evicted += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
        }
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs.add(Metric::CacheEvictions, evicted);
        }
    }

    /// Records time spent computing neighbourhood fingerprints.
    pub fn note_fingerprint_micros(&self, micros: u64) {
        self.stats
            .fingerprint_micros
            .fetch_add(micros, Ordering::Relaxed);
        self.obs.add(Metric::CacheFingerprintMicros, micros);
    }

    /// Entries currently held in the memory tier.
    pub fn entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Process-local counters accumulated since construction or the last
    /// [`CensusCache::flush`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
            fingerprint_micros: self.stats.fingerprint_micros.load(Ordering::Relaxed),
        }
    }

    /// Drains the process-local counters into the persistent `stats.txt`
    /// of the disk tier (no-op for memory-only caches, but the local
    /// counters are reset either way).
    pub fn flush(&self) -> io::Result<()> {
        let delta = CacheStats {
            hits: self.stats.hits.swap(0, Ordering::Relaxed),
            misses: self.stats.misses.swap(0, Ordering::Relaxed),
            evictions: self.stats.evictions.swap(0, Ordering::Relaxed),
            stores: self.stats.stores.swap(0, Ordering::Relaxed),
            quarantined: self.stats.quarantined.swap(0, Ordering::Relaxed),
            fingerprint_micros: self.stats.fingerprint_micros.swap(0, Ordering::Relaxed),
        };
        if let Some(dir) = &self.dir {
            let path = dir.join("stats.txt");
            let mut total = read_stats_file(&path).unwrap_or_default();
            total.add(&delta);
            let body = format!(
                "hits {}\nmisses {}\nevictions {}\nstores {}\nquarantined {}\nfingerprint_micros {}\n",
                total.hits,
                total.misses,
                total.evictions,
                total.stores,
                total.quarantined,
                total.fingerprint_micros
            );
            atomic_write(dir, &path, body.as_bytes())?;
        }
        Ok(())
    }
}

/// Reads the persistent statistics and entry count of an on-disk cache
/// directory: the accumulated [`CacheStats`] from `stats.txt` (zeroes when
/// absent) plus the number of live `.entry` files. The number of files
/// sitting in `quarantine/` is folded into [`CacheStats::quarantined`]
/// when it exceeds the flushed counter, so un-flushed quarantines still
/// show up in `hsgf cache-stats`.
pub fn read_dir_stats(dir: &Path) -> io::Result<(CacheStats, usize)> {
    let mut stats = read_stats_file(&dir.join("stats.txt")).unwrap_or_default();
    let mut entries = 0;
    match fs::read_dir(dir) {
        Ok(items) => {
            for item in items {
                let item = item?;
                if item.path().extension().is_some_and(|e| e == "entry") {
                    entries += 1;
                }
            }
        }
        // A partially-initialized cache (flushed stats or a quarantine
        // subdir created before the first entry landed, or nothing at all)
        // reports zeros rather than erroring.
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => return Err(err),
    }
    let mut penned = 0u64;
    if let Ok(items) = fs::read_dir(dir.join(QUARANTINE_DIR)) {
        penned = items.flatten().count() as u64;
    }
    stats.quarantined = stats.quarantined.max(penned);
    Ok((stats, entries))
}

/// Parses `stats.txt`. Torn-tail tolerant, mirroring journal recovery: the
/// file is written atomically, but a crashed writer from an older layout or
/// a rotted tail must not zero the counters that *did* parse — scanning
/// stops at the first malformed or unknown line and the good prefix is
/// kept.
fn read_stats_file(path: &Path) -> Option<CacheStats> {
    let text = fs::read_to_string(path).ok()?;
    let mut stats = CacheStats::default();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let parsed = parts
            .next()
            .and_then(|key| Some((key, parts.next()?.parse::<u64>().ok()?)));
        let Some((key, value)) = parsed else { break };
        match key {
            "hits" => stats.hits = value,
            "misses" => stats.misses = value,
            "evictions" => stats.evictions = value,
            "stores" => stats.stores = value,
            "quarantined" => stats.quarantined = value,
            "fingerprint_micros" => stats.fingerprint_micros = value,
            _ => break,
        }
    }
    Some(stats)
}

fn atomic_write(dir: &Path, path: &Path, body: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!(".tmp-{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(body)?;
    }
    fs::rename(&tmp, path)
}

/// Checksum of an entry body (everything before the trailing `checksum`
/// line): length-seeded splitmix fold over 8-byte chunks, zero-padded.
fn entry_checksum(body: &[u8]) -> u64 {
    let mut h = fold(ENTRY_CHECKSUM_SEED, body.len() as u64);
    for chunk in body.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    h
}

fn write_entry(
    dir: &Path,
    key: &CacheKey,
    entry: &CacheEntry,
    fault: Option<IoFault>,
) -> io::Result<()> {
    let mut body = String::from(ENTRY_HEADER);
    body.push('\n');
    match &entry.outcome {
        CachedOutcome::Exact => body.push_str("outcome exact\n"),
        CachedOutcome::Degraded { dmax, emax, rung } => {
            let dmax = dmax.map_or_else(|| "-".to_string(), |d| d.to_string());
            body.push_str(&format!("outcome degraded {dmax} {emax} {rung}\n"));
        }
    }
    // Sort rows so the file bytes are deterministic for a given census.
    let mut rows: Vec<(&Encoding, u64)> = entry.counts.iter().map(|(e, &c)| (e, c)).collect();
    rows.sort();
    for (encoding, count) in rows {
        body.push_str(&format!(
            "row {} {} {count}\n",
            encoding.label_count() + 1,
            hex_encode(encoding.as_bytes())
        ));
    }
    let sum = entry_checksum(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    let mut bytes = body.into_bytes();
    match fault {
        // A torn or out-of-space write dies before the atomic rename, so
        // no partial file ever becomes visible — the store is just lost.
        Some(IoFault::TornWrite) => {
            bytes.truncate(bytes.len() / 2);
            let tmp = dir.join(format!(".torn-{}", std::process::id()));
            let _ = fs::write(&tmp, &bytes);
            let _ = fs::remove_file(&tmp);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write",
            ));
        }
        Some(IoFault::Enospc) => {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            ));
        }
        // Bit rot *after* the checksum was computed: the file lands whole
        // but the next read quarantines it.
        Some(IoFault::CorruptRecord) => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
        }
        Some(IoFault::ShortRead) | None => {}
    }
    atomic_write(dir, &dir.join(key.file_name()), &bytes)
}

/// Outcome of probing the disk tier for one entry file.
enum DiskRead {
    /// Valid entry.
    Hit(CacheEntry),
    /// No file (or a transient short read) — a plain miss.
    Absent,
    /// A file exists but fails validation; the caller must quarantine it.
    Corrupt,
}

/// Reads and validates one entry file. Header, checksum, outcome, and row
/// validation failures all report [`DiskRead::Corrupt`]; an injected
/// [`IoFault::ShortRead`] truncates the in-memory view and reads as a
/// transient miss (the on-disk file is intact, so it is *not* quarantined).
fn read_entry(path: &Path, fault: Option<IoFault>) -> DiskRead {
    let Ok(mut text) = fs::read_to_string(path) else {
        return DiskRead::Absent;
    };
    let mut transient = false;
    match fault {
        Some(IoFault::ShortRead) => {
            let mut cut = text.len() / 2;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            transient = true;
        }
        Some(IoFault::CorruptRecord) => {
            // Rot surfacing at read time: corrupt the view we validate, so
            // the quarantine path runs even though the stored bytes were
            // fine when written.
            text.pop();
            text.push('#');
        }
        _ => {}
    }
    match parse_entry(&text) {
        Some(entry) => DiskRead::Hit(entry),
        None if transient => DiskRead::Absent,
        None => DiskRead::Corrupt,
    }
}

/// Parses one checksummed entry body; `None` means malformed.
fn parse_entry(text: &str) -> Option<CacheEntry> {
    // Split off and verify the trailing checksum line first.
    let trimmed = text.strip_suffix('\n')?;
    let (body_end, checksum_line) = trimmed.rsplit_once('\n')?;
    let sum_hex = checksum_line.strip_prefix("checksum ")?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    let body = &text[..body_end.len() + 1];
    if entry_checksum(body.as_bytes()) != sum {
        return None;
    }
    let mut lines = body.lines();
    if lines.next()? != ENTRY_HEADER {
        return None;
    }
    let outcome_line = lines.next()?;
    let mut parts = outcome_line.split_whitespace();
    if parts.next()? != "outcome" {
        return None;
    }
    let outcome = match parts.next()? {
        "exact" => CachedOutcome::Exact,
        "degraded" => {
            let dmax = match parts.next()? {
                "-" => None,
                d => Some(d.parse().ok()?),
            };
            CachedOutcome::Degraded {
                dmax,
                emax: parts.next()?.parse().ok()?,
                rung: parts.next()?.parse().ok()?,
            }
        }
        _ => return None,
    };
    let mut counts = HashMap::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        if parts.next()? != "row" {
            return None;
        }
        let row_len: u8 = parts.next()?.parse().ok()?;
        let bytes = hex_decode(parts.next()?)?;
        let count: u64 = parts.next()?.parse().ok()?;
        if row_len == 0 || bytes.len() % row_len as usize != 0 {
            return None;
        }
        // Rows were written in canonical (sorted) order, on which
        // `from_unsorted_rows` is the identity.
        counts.insert(Encoding::from_unsorted_rows(bytes, row_len), count);
    }
    Some(CacheEntry { counts, outcome })
}

fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if text.len() % 2 != 0 {
        return None;
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(text.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use hsgf_graph::Label;

    use super::*;

    fn key(root: u32, level: u8) -> CacheKey {
        CacheKey {
            root: NodeId::new(root),
            neighborhood: 0xDEAD_BEEF ^ root as u64,
            config: 0x1234_5678,
            level,
        }
    }

    fn entry(count: u64) -> CacheEntry {
        let enc = Encoding::of_subgraph(2, &[Label::new(0), Label::new(1)], &[(0, 1)]);
        let enc2 = Encoding::of_subgraph(2, &[Label::new(1), Label::new(1)], &[(0, 1)]);
        let mut counts = HashMap::new();
        counts.insert(enc, count);
        counts.insert(enc2, count + 1);
        CacheEntry {
            counts,
            outcome: CachedOutcome::Exact,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsgf-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_roundtrip_counts_hits_and_misses() {
        let cache = CensusCache::in_memory();
        assert!(cache.lookup(&key(1, 0)).is_none());
        cache.store(key(1, 0), &entry(7));
        let hit = cache.lookup(&key(1, 0)).unwrap();
        assert_eq!(hit.counts, entry(7).counts);
        assert_eq!(hit.outcome, CachedOutcome::Exact);
        // Same root at a different ladder level is a distinct key.
        assert!(cache.lookup(&key(1, 1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 2, 1));
    }

    #[test]
    fn disk_tier_persists_across_instances() {
        let dir = temp_dir("persist");
        let degraded = CacheEntry {
            counts: entry(3).counts,
            outcome: CachedOutcome::Degraded {
                dmax: Some(8),
                emax: 4,
                rung: 1,
            },
        };
        {
            let cache = CensusCache::on_disk(&dir).unwrap();
            cache.store(key(9, 1), &degraded);
            cache.flush().unwrap();
        }
        let fresh = CensusCache::on_disk(&dir).unwrap();
        let hit = fresh.lookup(&key(9, 1)).unwrap();
        assert_eq!(hit.counts, degraded.counts);
        assert_eq!(hit.outcome, degraded.outcome);
        let (stats, entries) = read_dir_stats(&dir).unwrap();
        assert_eq!(stats.stores, 1);
        assert_eq!(entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cap_evicts_fifo_and_counts_evictions() {
        let cache = CensusCache::in_memory().with_cap(SHARD_COUNT);
        // Per-shard cap is 1, so two entries landing in one shard evict.
        for i in 0..200 {
            cache.store(key(i, 0), &entry(i as u64));
        }
        assert!(cache.entry_count() <= SHARD_COUNT);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 200 - cache.entry_count() as u64);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn flush_merges_into_persistent_stats() {
        let dir = temp_dir("stats");
        let cache = CensusCache::on_disk(&dir).unwrap();
        cache.store(key(1, 0), &entry(1));
        cache.lookup(&key(1, 0)).unwrap();
        cache.note_fingerprint_micros(41);
        cache.flush().unwrap();
        assert_eq!(cache.stats(), CacheStats::default()); // drained
        cache.lookup(&key(2, 0)); // miss
        cache.flush().unwrap();
        let (stats, _) = read_dir_stats(&dir).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.fingerprint_micros, 41);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_files_are_quarantined() {
        let dir = temp_dir("corrupt");
        let cache = CensusCache::on_disk(&dir).unwrap();
        let k = key(5, 0);
        fs::write(dir.join(k.file_name()), "not a cache entry\n").unwrap();
        assert!(cache.lookup(&k).is_none());
        // The corrupt file moved into quarantine/ and was counted.
        assert!(!dir.join(k.file_name()).exists());
        assert!(dir.join(QUARANTINE_DIR).join(k.file_name()).exists());
        assert_eq!(cache.stats().quarantined, 1);
        // Bit rot inside a structurally valid file fails the checksum.
        let k2 = key(7, 0);
        cache.store(k2, &entry(4));
        let path = dir.join(k2.file_name());
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replacen("outcome exact", "outcome exalt", 1);
        fs::write(&path, text).unwrap();
        // Reconstruct so the memory tier does not mask the disk read.
        let fresh = CensusCache::on_disk(&dir).unwrap();
        assert!(fresh.lookup(&k2).is_none());
        assert_eq!(fresh.stats().quarantined, 1);
        // Quarantined files surface in read_dir_stats even without flush.
        let (stats, entries) = read_dir_stats(&dir).unwrap();
        assert_eq!(stats.quarantined, 2);
        assert_eq!(entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_stats_tolerate_partial_initialization() {
        // A quarantine/ subdir with no stats.txt and no entries: zeros plus
        // the quarantine count, not an error.
        let dir = temp_dir("partial");
        fs::create_dir_all(dir.join(QUARANTINE_DIR)).unwrap();
        fs::write(dir.join(QUARANTINE_DIR).join("rotten.entry"), "x").unwrap();
        let (stats, entries) = read_dir_stats(&dir).unwrap();
        assert_eq!(entries, 0);
        assert_eq!(stats.quarantined, 1);
        assert_eq!((stats.hits, stats.misses, stats.stores), (0, 0, 0));
        // A directory that does not exist at all reads as empty, matching
        // how journal recovery treats a missing journal dir.
        let gone = dir.join("never-created");
        let (stats, entries) = read_dir_stats(&gone).unwrap();
        assert_eq!((entries, stats.hits, stats.quarantined), (0, 0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_stats_file_keeps_the_good_prefix() {
        let dir = temp_dir("tornstats");
        // Truncated mid-value on the final line: the parsed prefix must
        // survive, the way journal recovery keeps frames before a torn tail.
        fs::write(
            dir.join("stats.txt"),
            "hits 5\nmisses 2\nstores 3\nfingerprint_mic",
        )
        .unwrap();
        let (stats, _) = read_dir_stats(&dir).unwrap();
        assert_eq!((stats.hits, stats.misses, stats.stores), (5, 2, 3));
        assert_eq!(stats.fingerprint_micros, 0);
        // A torn *value* on the final line is equally recoverable.
        fs::write(dir.join("stats.txt"), "hits 7\nmisses").unwrap();
        let (stats, _) = read_dir_stats(&dir).unwrap();
        assert_eq!((stats.hits, stats.misses), (7, 0));
        // An unknown key (a future layout) stops the scan without zeroing
        // what already parsed.
        fs::write(
            dir.join("stats.txt"),
            "hits 9\nshiny_new_counter 4\nmisses 1\n",
        )
        .unwrap();
        let (stats, _) = read_dir_stats(&dir).unwrap();
        assert_eq!((stats.hits, stats.misses), (9, 0));
        // And flush() merges *into* the surviving prefix rather than
        // resetting it.
        fs::write(dir.join("stats.txt"), "hits 5\nmisses 2\ntorn").unwrap();
        let cache = CensusCache::on_disk(&dir).unwrap();
        cache.store(key(1, 0), &entry(1));
        cache.lookup(&key(1, 0)).unwrap();
        cache.flush().unwrap();
        let (stats, _) = read_dir_stats(&dir).unwrap();
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.stores, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Injects one fault on the Nth call to a single op, like the
    /// journal's tests.
    struct FaultOnce {
        op: IoOp,
        at: u64,
        fault: IoFault,
        calls: AtomicU64,
    }

    impl FaultOnce {
        fn new(op: IoOp, at: u64, fault: IoFault) -> Self {
            FaultOnce {
                op,
                at,
                fault,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl crate::supervisor::ChaosHook for FaultOnce {
        fn inject(&self, _root: NodeId, _attempt: usize) -> Option<crate::census::CensusError> {
            None
        }

        fn inject_io(&self, op: IoOp) -> Option<IoFault> {
            if op != self.op {
                return None;
            }
            let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            (call == self.at).then_some(self.fault)
        }
    }

    #[test]
    fn injected_write_faults_never_publish_partial_entries() {
        for fault in [IoFault::TornWrite, IoFault::Enospc] {
            let dir = temp_dir(&format!("wfault-{fault:?}"));
            let chaos = Arc::new(FaultOnce::new(IoOp::CacheWrite, 1, fault));
            let cache = CensusCache::on_disk(&dir).unwrap().with_io_chaos(chaos);
            let k = key(3, 0);
            cache.store(k, &entry(9));
            // The write died before the rename: no file, no quarantine.
            assert!(!dir.join(k.file_name()).exists());
            assert_eq!(cache.stats().quarantined, 0);
            // A fresh instance (no memory tier) sees a plain miss.
            let fresh = CensusCache::on_disk(&dir).unwrap();
            assert!(fresh.lookup(&k).is_none());
            // The next store (fault spent) lands normally.
            cache.store(k, &entry(9));
            let fresh = CensusCache::on_disk(&dir).unwrap();
            assert_eq!(fresh.lookup(&k).unwrap().counts, entry(9).counts);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupting_write_fault_is_quarantined_by_the_next_read() {
        let dir = temp_dir("wcorrupt");
        let chaos = Arc::new(FaultOnce::new(IoOp::CacheWrite, 1, IoFault::CorruptRecord));
        let cache = CensusCache::on_disk(&dir).unwrap().with_io_chaos(chaos);
        let k = key(4, 0);
        cache.store(k, &entry(2));
        assert!(dir.join(k.file_name()).exists());
        let fresh = CensusCache::on_disk(&dir).unwrap();
        assert!(fresh.lookup(&k).is_none());
        assert_eq!(fresh.stats().quarantined, 1);
        assert!(dir.join(QUARANTINE_DIR).join(k.file_name()).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_fault_is_a_transient_miss_not_a_quarantine() {
        let dir = temp_dir("shortread");
        let k = key(6, 0);
        {
            let writer = CensusCache::on_disk(&dir).unwrap();
            writer.store(k, &entry(5));
        }
        let chaos = Arc::new(FaultOnce::new(IoOp::CacheRead, 1, IoFault::ShortRead));
        let cache = CensusCache::on_disk(&dir).unwrap().with_io_chaos(chaos);
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.stats().quarantined, 0);
        assert!(dir.join(k.file_name()).exists());
        // The file is intact, so the retry (fault spent) hits.
        assert!(cache.lookup(&k).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_sees_every_knob() {
        let base = CensusConfig::default();
        let fp = config_fingerprint(&base);
        let variants = [
            base.clone().with_emax(3),
            base.clone().with_dmax(Some(16)),
            base.clone().with_mask_root_label(true),
            base.clone().with_directed(true),
            base.clone().with_edge_typed(true),
            {
                let mut c = base.clone();
                c.hash_seed ^= 1;
                c
            },
            {
                let mut c = base.clone();
                c.hash_scheme = HashScheme::Linear;
                c
            },
            {
                let mut c = base.clone();
                c.group_by_label = false;
                c
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(fp, config_fingerprint(v), "variant {i}");
        }
        assert_eq!(fp, config_fingerprint(&base.clone()));
    }

    #[test]
    fn policy_fingerprint_sees_budget_knobs_but_not_timeout() {
        let base = config_fingerprint(&CensusConfig::default());
        let policy = ExtractionPolicy::default();
        let fp = policy_fingerprint(base, &policy);
        assert_ne!(fp, base);
        let mut budgeted = policy.clone();
        budgeted.max_subgraphs = Some(100);
        assert_ne!(fp, policy_fingerprint(base, &budgeted));
        let mut degrading = policy.clone();
        degrading.degrade = true;
        assert_ne!(fp, policy_fingerprint(base, &degrading));
        let mut timed = policy.clone();
        timed.root_timeout = Some(std::time::Duration::from_millis(1));
        assert_eq!(fp, policy_fingerprint(base, &timed));
    }

    #[test]
    fn outcome_levels_match_the_ladder() {
        assert_eq!(CachedOutcome::Exact.level(), 0);
        let degraded = CachedOutcome::Degraded {
            dmax: Some(4),
            emax: 5,
            rung: 2,
        };
        assert_eq!(degraded.level(), 2);
    }
}
