//! Root-sampling strategies for feature extraction (paper §3.2 "the
//! node-based enumeration scheme supports … sampling strategies" and
//! §4.3.5: "prediction performance does not decrease when we extract
//! features only up to the 95% mark", i.e. skipping the highest-degree
//! roots whose censuses dominate the cost).

use hsgf_graph::{DegreeStats, HetGraph, NodeId};

/// Filters `roots` down to those whose degree lies within the given
/// percentile of the graph's degree distribution — the paper's "extract
/// features only up to the 95% mark" strategy. `percentile >= 100` keeps
/// everything.
pub fn cap_root_degrees(graph: &HetGraph, roots: &[NodeId], percentile: f64) -> Vec<NodeId> {
    if percentile >= 100.0 {
        return roots.to_vec();
    }
    let cap = DegreeStats::of(graph).degree_at_percentile(percentile);
    roots
        .iter()
        .copied()
        .filter(|&v| degree_within_cap(graph.degree(v), cap))
        .collect()
}

/// Whether a root of the given degree survives a percentile cap. Compared
/// in `usize` by widening the cap: narrowing the degree (`degree as u32`)
/// would wrap for degrees above `u32::MAX` and let extreme hubs slip
/// through the very filter meant to exclude them.
#[inline]
fn degree_within_cap(degree: usize, cap: u32) -> bool {
    degree <= cap as usize
}

/// Deterministically subsamples every `stride`-th root after sorting by
/// node id — a cheap representative sample of the graph when the full
/// by-node census is unnecessary (the paper argues features only need "a
/// representative sample of the entire graph", §2).
pub fn stride_sample(roots: &[NodeId], stride: usize) -> Vec<NodeId> {
    let stride = stride.max(1);
    let mut sorted = roots.to_vec();
    sorted.sort_unstable();
    sorted.into_iter().step_by(stride).collect()
}

/// Splits roots into degree-balanced batches for static scheduling: roots
/// are sorted by descending degree and dealt round-robin, so each batch
/// receives a similar mix of expensive hubs and cheap leaves. Useful when
/// dynamic work stealing (the default in `parallel`) is unavailable, e.g.
/// distributing across processes.
pub fn degree_balanced_batches(
    graph: &HetGraph,
    roots: &[NodeId],
    batches: usize,
) -> Vec<Vec<NodeId>> {
    let batches = batches.max(1);
    let mut by_degree = roots.to_vec();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let mut out = vec![Vec::with_capacity(roots.len() / batches + 1); batches];
    for (i, v) in by_degree.into_iter().enumerate() {
        out[i % batches].push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use hsgf_graph::{GraphBuilder, Label, LabelSet};

    use super::*;

    /// A star (hub + 9 leaves) plus one isolated pair.
    fn star_graph() -> HetGraph {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let hub = b.add_node_with(Label::new(0)).unwrap();
        for _ in 0..9 {
            let leaf = b.add_node_with(Label::new(0)).unwrap();
            b.add_edge(hub, leaf).unwrap();
        }
        let a = b.add_node_with(Label::new(0)).unwrap();
        let c = b.add_node_with(Label::new(0)).unwrap();
        b.add_edge(a, c).unwrap();
        b.build()
    }

    #[test]
    fn cap_removes_hubs_only() {
        let g = star_graph();
        let roots: Vec<NodeId> = g.nodes().collect();
        let capped = cap_root_degrees(&g, &roots, 90.0);
        assert_eq!(capped.len(), roots.len() - 1, "only the hub is dropped");
        assert!(!capped.contains(&NodeId::new(0)));
        let all = cap_root_degrees(&g, &roots, 100.0);
        assert_eq!(all.len(), roots.len());
    }

    #[test]
    fn cap_comparison_widens_instead_of_truncating() {
        // Degrees beyond u32::MAX cannot be built in a test graph, so the
        // comparison itself is the regression surface: a truncating
        // `degree as u32` would wrap `u32::MAX as usize + 1` to 0 and
        // wrongly admit the hub.
        let giant = u32::MAX as usize + 1;
        assert!(!degree_within_cap(giant, 1000));
        assert!(!degree_within_cap(giant, u32::MAX));
        assert!(degree_within_cap(u32::MAX as usize, u32::MAX));
        assert!(degree_within_cap(0, 0));
        assert!(!degree_within_cap(1, 0));
    }

    #[test]
    fn stride_sample_is_sorted_and_deterministic() {
        let roots: Vec<NodeId> = [5u32, 1, 9, 3, 7].iter().map(|&i| NodeId::new(i)).collect();
        let s = stride_sample(&roots, 2);
        assert_eq!(s, vec![NodeId::new(1), NodeId::new(5), NodeId::new(9)]);
        assert_eq!(stride_sample(&roots, 1).len(), 5);
        assert_eq!(stride_sample(&roots, 0).len(), 5, "stride 0 clamps to 1");
    }

    #[test]
    fn batches_balance_hubs() {
        let g = star_graph();
        let roots: Vec<NodeId> = g.nodes().collect();
        let batches = degree_balanced_batches(&g, &roots, 3);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, roots.len());
        // The hub (max degree) goes to batch 0; batch sizes differ by ≤ 1.
        assert_eq!(batches[0][0], NodeId::new(0));
        let sizes: Vec<usize> = batches.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
