//! The rooted heterogeneous subgraph census (paper §3.2).
//!
//! For a root node `v`, the census counts every *connected* subgraph of `G`
//! that contains `v` and has between 1 and `emax` edges, keyed by the
//! pseudo-canonical encoding (or its rolling hash). Subgraphs are edge
//! subsets: two subgraphs over the same node set but different edge sets are
//! distinct, matching the paper's `S(v) = {G' ⊆ G | v ∈ V'}` definition.
//! The trivial zero-edge subgraph `({v}, ∅)` is excluded — its count is 1
//! for every node and carries no signal.
//!
//! # Enumeration scheme
//!
//! Depth-first growth with the classic *exclusion discipline* for connected
//! subgraph enumeration: the engine maintains a stack of candidate edges
//! (edges adjacent to the current subgraph, not yet considered). Each call
//! pops candidates in turn; choosing candidate `e` explores every extension
//! containing `e`, after which `e` stays excluded for the call's remaining
//! candidates. This generates every connected edge subset exactly once.
//!
//! # Heuristics (paper §3.2)
//!
//! * **Incremental rolling hash** — adding edge `(a, b)` updates the
//!   subgraph hash by `b_{λ(a)}^{λ(b)+1} + b_{λ(b)}^{λ(a)+1}` in O(1).
//! * **Heterogeneous grouping** — at the last expansion level, consecutive
//!   candidates attaching a new node of the same label to the same subgraph
//!   node yield identical encodings; they are counted in bulk without
//!   touching the subgraph state.
//! * **Maximum-degree constraint** `dmax` — a discovered node whose degree
//!   exceeds `dmax` is added to subgraphs but never expanded through
//!   (the constraint never applies to the root itself).
//! * **Root-label masking** — for label-prediction experiments the root's
//!   label is replaced by an artificial mask label during extraction so the
//!   feature does not leak the value it is asked to predict (paper §4.3.2).

use std::collections::HashMap;
use std::fmt;

use crate::budget::{BudgetKind, BudgetState, CancelToken, CensusBudget, SharedBudget, Stop};
use crate::hash::{mix, HashScheme, LabelBases};
use crate::obs::{CensusCounters, Metric, Obs};
use crate::sequence::Encoding;
use hsgf_graph::{HetGraph, NodeId, Orientation};

/// Hard upper bound on `emax`: per-node neighbour counts must fit `u8` and
/// the exclusion recursion depth equals `emax`. The paper uses 5 and 6.
pub const MAX_EMAX: usize = 8;

/// Errors produced by census configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CensusError {
    /// `emax` outside `1..=MAX_EMAX`.
    InvalidEmax {
        /// The rejected value.
        emax: usize,
    },
    /// The root node id is out of range for the graph.
    UnknownRoot {
        /// The rejected root.
        root: u32,
    },
    /// A per-root resource budget ran out before the census finished
    /// (see [`CensusBudget`]). The census unwinds cleanly; the scratch is
    /// immediately reusable, e.g. for a degraded retry.
    BudgetExhausted {
        /// The root whose census was aborted.
        root: u32,
        /// The budget dimension that ran out.
        kind: BudgetKind,
    },
    /// Cooperative cancellation was observed mid-census
    /// (see [`CancelToken`]).
    Cancelled {
        /// The root whose census was aborted.
        root: u32,
    },
    /// A census worker panicked while processing a root. The panic was
    /// isolated: other roots' results are unaffected.
    WorkerPanicked {
        /// The root being processed when the worker panicked.
        root: u32,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CensusError::InvalidEmax { emax } => {
                write!(f, "emax must be in 1..={MAX_EMAX}, got {emax}")
            }
            CensusError::UnknownRoot { root } => write!(f, "root node {root} not in graph"),
            CensusError::BudgetExhausted { root, kind } => {
                write!(f, "census of root {root} exceeded its {kind} budget")
            }
            CensusError::Cancelled { root } => {
                write!(f, "census of root {root} was cancelled")
            }
            CensusError::WorkerPanicked { root, message } => {
                write!(f, "census worker panicked on root {root}: {message}")
            }
        }
    }
}

impl std::error::Error for CensusError {}

/// Census parameters. Mirrors the paper's knobs.
#[derive(Clone, Debug)]
pub struct CensusConfig {
    /// Maximum number of edges per subgraph (paper: 5 for label prediction,
    /// 6 for rank prediction).
    pub emax: usize,
    /// Maximum-degree constraint; `None` disables the heuristic (`dmax=∞`).
    pub dmax: Option<u32>,
    /// Replace the root's label with an artificial mask label during
    /// extraction (paper §4.3.2, label-prediction setup).
    pub mask_root_label: bool,
    /// Enable the heterogeneous grouping heuristic at the final expansion
    /// level. Off only for the A2 ablation benchmark; results are identical.
    pub group_by_label: bool,
    /// Seed for the per-label rolling-hash bases.
    pub hash_seed: u64,
    /// Rolling-hash combination scheme (see [`HashScheme`]). `Mixed` is the
    /// collision-resistant default; `Linear` is the paper-literal formula.
    pub hash_scheme: HashScheme,
    /// Use the *directed* characteristic sequence (the paper's §5 future
    /// work): per subgraph node, three count blocks — symmetric, incoming,
    /// outgoing — per label instead of one. Only meaningful on graphs with
    /// edge directions; on undirected graphs it degenerates to the plain
    /// encoding with two always-zero blocks.
    pub directed: bool,
    /// Use the *edge-heterogeneous* characteristic sequence (the other §5
    /// future-work item): one count block per edge type per label.
    /// Composes with `directed` (blocks multiply).
    pub edge_typed: bool,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            emax: 5,
            dmax: None,
            mask_root_label: false,
            group_by_label: true,
            hash_seed: 0x48_53_47_46, // "HSGF"
            hash_scheme: HashScheme::Mixed,
            directed: false,
            edge_typed: false,
        }
    }
}

impl CensusConfig {
    /// Convenience: set `emax`.
    pub fn with_emax(mut self, emax: usize) -> Self {
        self.emax = emax;
        self
    }

    /// Convenience: set `dmax`.
    pub fn with_dmax(mut self, dmax: Option<u32>) -> Self {
        self.dmax = dmax;
        self
    }

    /// Convenience: set root-label masking.
    pub fn with_mask_root_label(mut self, mask: bool) -> Self {
        self.mask_root_label = mask;
        self
    }

    /// Convenience: enable the directed characteristic sequence.
    pub fn with_directed(mut self, directed: bool) -> Self {
        self.directed = directed;
        self
    }

    /// Convenience: enable the edge-heterogeneous characteristic sequence.
    pub fn with_edge_typed(mut self, edge_typed: bool) -> Self {
        self.edge_typed = edge_typed;
        self
    }
}

/// A candidate edge on the extension stack.
#[derive(Copy, Clone, Debug)]
struct Candidate {
    edge: u32,
    /// Endpoint that was in the subgraph when the candidate was pushed
    /// (guaranteed still in the subgraph whenever the candidate is popped).
    from: NodeId,
    /// The other endpoint; may or may not be in the subgraph at pop time.
    to: NodeId,
}

/// Reusable per-worker state for the census of one root at a time.
///
/// All bookkeeping is restored incrementally by the DFS itself, so a scratch
/// is reset-free across roots; memory is `O(V + E)` per worker, matching the
/// paper's parallel space analysis (`O(tV + E)` total, with the graph
/// shared).
pub struct CensusScratch {
    /// Per node: membership flag in the current subgraph.
    in_sub: Vec<bool>,
    /// Per node × alphabet label: in-subgraph neighbour counts (flat,
    /// stride = alphabet size).
    counts: Vec<u8>,
    /// Per node: linear row value of its characteristic-sequence row
    /// (maintained only while the node is in the subgraph).
    row_value: Vec<u64>,
    /// Nodes currently in the subgraph, in insertion order.
    sub_nodes: Vec<NodeId>,
    /// Per edge: pushed-as-candidate / excluded marker.
    edge_seen: Vec<bool>,
    /// Extension stack.
    ext: Vec<Candidate>,
    /// Candidates processed by active calls (restored on unwind).
    processed: Vec<Candidate>,
    /// Current number of subgraph edges.
    sub_edge_count: usize,
    /// Rolling hash of the current subgraph.
    hash: u64,
    /// Root of the census currently in progress.
    root: NodeId,
    /// Cumulative plain observability counters (no atomics on the hot
    /// path); see [`crate::obs`]. Flushed as per-run deltas.
    counters: CensusCounters,
    /// Delta of the most recent governed run (set on every exit, complete
    /// or aborted). Shard callers read this to merge split-root counters.
    pub(crate) last_delta: CensusCounters,
}

/// Read-only view of the current subgraph handed to census sinks.
pub struct SubgraphView<'s> {
    scratch: &'s CensusScratch,
    graph: &'s HetGraph,
    /// Count columns per row (`alphabet` undirected, `3 × alphabet`
    /// directed).
    cols: usize,
    /// `Some(mask_byte)` when the root's label is masked.
    mask: Option<u8>,
}

impl SubgraphView<'_> {
    /// Number of nodes in the current subgraph.
    pub fn node_count(&self) -> usize {
        self.scratch.sub_nodes.len()
    }

    /// Number of edges in the current subgraph.
    pub fn edge_count(&self) -> usize {
        self.scratch.sub_edge_count
    }

    #[inline]
    fn label_byte(&self, n: NodeId) -> u8 {
        match self.mask {
            Some(mask_byte) if n == self.scratch.root => mask_byte,
            _ => self.graph.label(n).raw(),
        }
    }

    /// Builds the canonical encoding of the current subgraph.
    pub fn encoding(&self) -> Encoding {
        let cols = self.cols;
        let row_len = 1 + cols;
        let mut rows = Vec::with_capacity(self.scratch.sub_nodes.len() * row_len);
        for &n in &self.scratch.sub_nodes {
            rows.push(self.label_byte(n));
            let base = n.index() * cols;
            rows.extend_from_slice(&self.scratch.counts[base..base + cols]);
        }
        Encoding::from_unsorted_rows(rows, row_len as u8)
    }
}

/// The census engine: borrows a graph, owns the configuration and hash
/// bases, and runs censuses against caller-provided scratches.
pub struct CensusEngine<'g> {
    graph: &'g HetGraph,
    config: CensusConfig,
    bases: LabelBases,
    /// Alphabet size: `label_count` plus one mask slot when masking.
    alphabet: usize,
    /// Count columns per row: `alphabet × direction blocks × edge types`.
    cols: usize,
    /// Number of edge types consulted (1 when `edge_typed` is off).
    type_count: usize,
    /// Telemetry sink; defaults to the disabled (no-op) handle.
    obs: Obs,
}

impl<'g> CensusEngine<'g> {
    /// Creates an engine, validating the configuration.
    pub fn new(graph: &'g HetGraph, config: CensusConfig) -> Result<Self, CensusError> {
        if config.emax == 0 || config.emax > MAX_EMAX {
            return Err(CensusError::InvalidEmax { emax: config.emax });
        }
        let alphabet = graph.label_count() + usize::from(config.mask_root_label);
        let type_count = if config.edge_typed {
            graph.edge_type_count()
        } else {
            1
        };
        let cols = alphabet * if config.directed { 3 } else { 1 } * type_count;
        let bases = LabelBases::with_max_exponent(alphabet, cols, config.hash_seed);
        Ok(CensusEngine {
            graph,
            config,
            bases,
            alphabet,
            cols,
            type_count,
            obs: Obs::default(),
        })
    }

    /// Attaches an observability handle (builder style). Completed census
    /// runs flush their counters into it; the default handle is a no-op.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the engine's observability handle in place.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The engine's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CensusConfig {
        &self.config
    }

    /// The graph the engine operates on.
    pub fn graph(&self) -> &HetGraph {
        self.graph
    }

    /// The alphabet size used for encodings (includes the mask label when
    /// root masking is enabled).
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The mask label id, if masking is enabled.
    pub fn mask_label(&self) -> Option<u8> {
        self.config
            .mask_root_label
            .then_some(self.graph.label_count() as u8)
    }

    /// Allocates a scratch sized for this graph.
    pub fn make_scratch(&self) -> CensusScratch {
        let v = self.graph.node_count();
        CensusScratch {
            in_sub: vec![false; v],
            counts: vec![0u8; v * self.cols],
            row_value: vec![0u64; v],
            sub_nodes: Vec::with_capacity(MAX_EMAX + 1),
            edge_seen: vec![false; self.graph.edge_count()],
            ext: Vec::with_capacity(256),
            processed: Vec::with_capacity(256),
            sub_edge_count: 0,
            hash: 0,
            root: NodeId::new(0),
            counters: CensusCounters::default(),
            last_delta: CensusCounters::default(),
        }
    }

    /// Effective label byte of a node (root may be masked).
    #[inline]
    fn label_byte(&self, scratch: &CensusScratch, n: NodeId) -> u8 {
        if self.config.mask_root_label && n == scratch.root {
            self.graph.label_count() as u8
        } else {
            self.graph.label(n).raw()
        }
    }

    /// Runs the census for `root`, keyed by rolling hash (the paper's fast
    /// production mode; hash collisions are accepted as feature noise).
    pub fn census_hashes(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
    ) -> Result<HashMap<u64, u64>, CensusError> {
        self.census_hashes_budgeted(root, scratch, &CensusBudget::unlimited(), None)
    }

    /// Budget-governed variant of [`CensusEngine::census_hashes`].
    pub fn census_hashes_budgeted(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<HashMap<u64, u64>, CensusError> {
        let mut sink = HashSink {
            counts: HashMap::new(),
        };
        self.run_budgeted(root, scratch, &mut sink, budget, cancel)?;
        Ok(sink.counts)
    }

    /// Runs the census for `root`, keyed by the canonical encoding (exact
    /// mode; also reports 64-bit hash collisions observed along the way).
    pub fn census_encodings(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
    ) -> Result<EncodedCensus, CensusError> {
        self.census_encodings_budgeted(root, scratch, &CensusBudget::unlimited(), None)
    }

    /// Budget-governed variant of [`CensusEngine::census_encodings`].
    pub fn census_encodings_budgeted(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<EncodedCensus, CensusError> {
        let mut sink = EncodingSink {
            counts: HashMap::new(),
            by_hash: HashMap::new(),
            collisions: 0,
        };
        // Calls run_governed (not run_budgeted) so the sink's collision
        // count lands in the delta before the whole-run flush.
        self.run_governed(root, scratch, &mut sink, budget, cancel, None, None)?;
        scratch.last_delta.hash_collisions = sink.collisions;
        self.flush_whole(scratch);
        Ok(EncodedCensus {
            counts: sink.counts,
            hash_collisions: sink.collisions,
        })
    }

    /// One shard of `root`'s census, keyed by the canonical encoding: only
    /// the subtrees of top-level candidates with pop index in
    /// `range = [lo, hi)` are enumerated (an `hi` past the frontier is
    /// simply exhaustive). Summing the count maps of shards covering a
    /// partition of `[0, root_width(root))` reproduces
    /// [`CensusEngine::census_encodings`] exactly — this is how the
    /// stealing scheduler spreads one hub root over idle workers.
    ///
    /// `shared`, when set, pools the subgraph cap across sibling shards so
    /// total-budget exhaustion matches the sequential run's; `budget`'s own
    /// subgraph cap is ignored in that case. Callers must not shard when
    /// `emax == 1` (top-level grouping) — the engine additionally
    /// suppresses grouping in that configuration so results stay correct
    /// even then.
    pub fn census_encodings_shard(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        range: (usize, usize),
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
        shared: Option<&SharedBudget>,
    ) -> Result<EncodedCensus, CensusError> {
        let mut sink = EncodingSink {
            counts: HashMap::new(),
            by_hash: HashMap::new(),
            collisions: 0,
        };
        self.run_governed(
            root,
            scratch,
            &mut sink,
            budget,
            cancel,
            shared,
            Some(range),
        )?;
        // No registry flush here: shard deltas (readable via
        // `scratch.last_delta`) are only merged once every sibling shard of
        // the root completes, which keeps the deterministic counters
        // scheduler-independent under budgets.
        scratch.last_delta.hash_collisions = sink.collisions;
        Ok(EncodedCensus {
            counts: sink.counts,
            hash_collisions: sink.collisions,
        })
    }

    /// Hash-keyed variant of [`CensusEngine::census_encodings_shard`].
    pub fn census_hashes_shard(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        range: (usize, usize),
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
        shared: Option<&SharedBudget>,
    ) -> Result<HashMap<u64, u64>, CensusError> {
        let mut sink = HashSink {
            counts: HashMap::new(),
        };
        self.run_governed(
            root,
            scratch,
            &mut sink,
            budget,
            cancel,
            shared,
            Some(range),
        )?;
        Ok(sink.counts)
    }

    /// Runs the census with a caller-provided sink.
    pub fn run<S: CensusSink>(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        sink: &mut S,
    ) -> Result<(), CensusError> {
        self.run_budgeted(root, scratch, sink, &CensusBudget::unlimited(), None)
    }

    /// Runs the census with a caller-provided sink under a resource budget
    /// and optional cancellation token.
    ///
    /// On [`CensusError::BudgetExhausted`] / [`CensusError::Cancelled`] the
    /// enumeration aborts *cleanly*: every incremental bookkeeping change is
    /// unwound, so `scratch` is immediately reusable for another root or a
    /// degraded retry. Records already pushed into `sink` before the abort
    /// are the sink owner's to discard (the `census_*` wrappers do).
    pub fn run_budgeted<S: CensusSink>(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        sink: &mut S,
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<(), CensusError> {
        self.run_governed(root, scratch, sink, budget, cancel, None, None)?;
        self.flush_whole(scratch);
        Ok(())
    }

    /// Flushes a completed whole (unsharded) run's counters into the
    /// engine's [`Obs`] handle, including the per-root size histogram
    /// sample. Shard runs skip this; their deltas flush at the merge point.
    fn flush_whole(&self, scratch: &CensusScratch) {
        self.obs.record_census(&scratch.last_delta);
        self.obs
            .observe_root_subgraphs(scratch.last_delta.subgraphs);
    }

    /// Number of top-level DFS candidates for `root` (its degree): the unit
    /// the stealing scheduler shards hub roots over, and the estimate it
    /// compares against its split threshold.
    pub fn root_width(&self, root: NodeId) -> usize {
        self.graph.degree(root)
    }

    /// The full governed census: the sequential path plus the two
    /// scheduler-facing extensions — a [`SharedBudget`] that pools the
    /// subgraph cap across the shards of one root, and a shard range
    /// restricting this run to top-level candidates with pop index in
    /// `[lo, hi)` (see [`CensusEngine::census_encodings_shard`]).
    fn run_governed<S: CensusSink>(
        &self,
        root: NodeId,
        scratch: &mut CensusScratch,
        sink: &mut S,
        budget: &CensusBudget,
        cancel: Option<&CancelToken>,
        shared: Option<&SharedBudget>,
        shard: Option<(usize, usize)>,
    ) -> Result<(), CensusError> {
        if root.index() >= self.graph.node_count() {
            return Err(CensusError::UnknownRoot { root: root.raw() });
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(CensusError::Cancelled { root: root.raw() });
        }
        debug_assert!(scratch.in_sub.len() == self.graph.node_count());
        // Observability: counters are cumulative across runs, so capture
        // the entry values and flush deltas. The frontier peak is a max,
        // not a sum — reset it so the delta is this run's own peak.
        let counters_before = scratch.counters;
        scratch.counters.frontier_peak = 0;
        scratch.root = root;
        scratch.in_sub[root.index()] = true;
        scratch.sub_nodes.push(root);
        // Seed the root's row value and hash contribution; the hash is the
        // sum of mixed (or linear) row values over all subgraph nodes,
        // root included.
        let root_byte = self.label_byte(scratch, root) as u64;
        scratch.row_value[root.index()] = root_byte;
        let initial_hash = match self.config.hash_scheme {
            HashScheme::Mixed => mix(root_byte),
            HashScheme::Linear => root_byte,
        };
        scratch.hash = initial_hash;
        let mark = scratch.ext.len();
        debug_assert_eq!(mark, 0);
        // The degree constraint never applies to the root (paper §4.3.5).
        let pushes_at_root = scratch.counters.frontier_pushes;
        self.push_candidates(scratch, root);
        // Every shard of a split root re-pushes the root's candidates;
        // credit them to the first shard only so shard deltas sum to the
        // sequential run's frontier-push count exactly.
        if shard.is_some_and(|(lo, _)| lo != 0) {
            scratch.counters.frontier_pushes = pushes_at_root;
        }
        let mut state = BudgetState::new(budget, cancel).with_shared(shared);
        let outcome = state
            .check_frontier(scratch.ext.len())
            .and_then(|()| self.explore_top(scratch, sink, &mut state, shard));
        // Unwind root state (whether the DFS completed or aborted early —
        // `explore` restores all deeper bookkeeping on its way out).
        while scratch.ext.len() > mark {
            let c = scratch.ext.pop().expect("len checked");
            scratch.edge_seen[c.edge as usize] = false;
        }
        scratch.in_sub[root.index()] = false;
        scratch.sub_nodes.pop();
        debug_assert_eq!(scratch.sub_edge_count, 0);
        debug_assert_eq!(scratch.hash, initial_hash);
        scratch.hash = 0;
        debug_assert!(scratch.sub_nodes.is_empty());
        debug_assert!(scratch.processed.is_empty());
        scratch.last_delta = scratch.counters.delta_since(&counters_before);
        // Poll counts and stop outcomes land in the runtime (non-
        // deterministic) section directly; they are recorded for aborted
        // runs too, unlike the census delta.
        self.obs.add(Metric::BudgetPolls, state.polls());
        match outcome {
            Ok(()) => Ok(()),
            Err(Stop::Budget(kind)) => {
                self.obs.incr(match kind {
                    BudgetKind::Subgraphs => Metric::BudgetStopSubgraphs,
                    BudgetKind::Frontier => Metric::BudgetStopFrontier,
                    BudgetKind::Deadline => Metric::BudgetStopDeadline,
                });
                Err(CensusError::BudgetExhausted {
                    root: root.raw(),
                    kind,
                })
            }
            Err(Stop::Cancelled) => {
                self.obs.incr(Metric::BudgetStopCancelled);
                Err(CensusError::Cancelled { root: root.raw() })
            }
        }
    }

    /// Pushes every unseen edge incident to `w` as a candidate.
    fn push_candidates(&self, scratch: &mut CensusScratch, w: NodeId) {
        let nbrs = self.graph.neighbors(w);
        let ids = self.graph.incident_edge_ids(w);
        let before = scratch.ext.len();
        for (&x, &e) in nbrs.iter().zip(ids) {
            if !scratch.edge_seen[e as usize] {
                scratch.edge_seen[e as usize] = true;
                scratch.ext.push(Candidate {
                    edge: e,
                    from: w,
                    to: x,
                });
            }
        }
        scratch.counters.frontier_pushes += (scratch.ext.len() - before) as u64;
        scratch.counters.frontier_peak =
            scratch.counters.frontier_peak.max(scratch.ext.len() as u64);
    }

    /// Column index of a neighbour with label `l` seen through
    /// orientation `o` and edge type `ty` (from the counting node's point
    /// of view). Layout: `((block × type_count) + ty) × alphabet + l`.
    #[inline]
    fn col(&self, l: usize, o: Orientation, ty: usize) -> usize {
        let block = if self.config.directed { o.block() } else { 0 };
        let ty = if self.config.edge_typed { ty } else { 0 };
        (block * self.type_count + ty) * self.alphabet + l
    }

    /// The orientation of `cand`'s edge as seen from each endpoint:
    /// `(from's view, to's view)`.
    #[inline]
    fn orientations(&self, cand: Candidate) -> (Orientation, Orientation) {
        if !self.config.directed {
            return (Orientation::Symmetric, Orientation::Symmetric);
        }
        let from_view = self.graph.orientation(cand.from, cand.to, cand.edge);
        let to_view = match from_view {
            Orientation::Symmetric => Orientation::Symmetric,
            Orientation::Incoming => Orientation::Outgoing,
            Orientation::Outgoing => Orientation::Incoming,
        };
        (from_view, to_view)
    }

    /// Adds candidate edge `(from, to)` to the subgraph; returns whether
    /// `to` was newly inserted.
    #[inline]
    fn add_edge(&self, scratch: &mut CensusScratch, cand: Candidate) -> bool {
        let la = self.label_byte(scratch, cand.from) as usize;
        let lb = self.label_byte(scratch, cand.to) as usize;
        let (o_from, o_to) = self.orientations(cand);
        let ty = self.graph.edge_type(cand.edge) as usize;
        let col_from = self.col(lb, o_from, ty);
        let col_to = self.col(la, o_to, ty);
        let new_node = !scratch.in_sub[cand.to.index()];
        if new_node {
            scratch.in_sub[cand.to.index()] = true;
            scratch.sub_nodes.push(cand.to);
            // A freshly inserted node's row is just its label term.
            scratch.row_value[cand.to.index()] = lb as u64;
        }
        scratch.counts[cand.from.index() * self.cols + col_from] += 1;
        scratch.counts[cand.to.index() * self.cols + col_to] += 1;

        let d_from = self.bases.neighbor_delta(la, col_from);
        let d_to = self.bases.neighbor_delta(lb, col_to);
        let rv_from_old = scratch.row_value[cand.from.index()];
        let rv_from_new = rv_from_old.wrapping_add(d_from);
        scratch.row_value[cand.from.index()] = rv_from_new;
        let rv_to_old = scratch.row_value[cand.to.index()];
        let rv_to_new = rv_to_old.wrapping_add(d_to);
        scratch.row_value[cand.to.index()] = rv_to_new;
        match self.config.hash_scheme {
            HashScheme::Mixed => {
                scratch.hash = scratch
                    .hash
                    .wrapping_sub(mix(rv_from_old))
                    .wrapping_add(mix(rv_from_new))
                    .wrapping_add(mix(rv_to_new));
                if !new_node {
                    scratch.hash = scratch.hash.wrapping_sub(mix(rv_to_old));
                }
            }
            HashScheme::Linear => {
                scratch.hash = scratch.hash.wrapping_add(d_from).wrapping_add(d_to);
                if new_node {
                    scratch.hash = scratch.hash.wrapping_add(lb as u64);
                }
            }
        }
        scratch.sub_edge_count += 1;
        new_node
    }

    /// Reverses [`CensusEngine::add_edge`].
    #[inline]
    fn remove_edge(&self, scratch: &mut CensusScratch, cand: Candidate, node_was_new: bool) {
        let la = self.label_byte(scratch, cand.from) as usize;
        let lb = self.label_byte(scratch, cand.to) as usize;
        let (o_from, o_to) = self.orientations(cand);
        let ty = self.graph.edge_type(cand.edge) as usize;
        let col_from = self.col(lb, o_from, ty);
        let col_to = self.col(la, o_to, ty);
        scratch.counts[cand.from.index() * self.cols + col_from] -= 1;
        scratch.counts[cand.to.index() * self.cols + col_to] -= 1;

        let d_from = self.bases.neighbor_delta(la, col_from);
        let d_to = self.bases.neighbor_delta(lb, col_to);
        let rv_from_old = scratch.row_value[cand.from.index()];
        let rv_from_new = rv_from_old.wrapping_sub(d_from);
        scratch.row_value[cand.from.index()] = rv_from_new;
        let rv_to_old = scratch.row_value[cand.to.index()];
        let rv_to_new = rv_to_old.wrapping_sub(d_to);
        scratch.row_value[cand.to.index()] = rv_to_new;
        match self.config.hash_scheme {
            HashScheme::Mixed => {
                scratch.hash = scratch
                    .hash
                    .wrapping_add(mix(rv_from_new))
                    .wrapping_sub(mix(rv_from_old))
                    .wrapping_sub(mix(rv_to_old));
                if !node_was_new {
                    scratch.hash = scratch.hash.wrapping_add(mix(rv_to_new));
                }
            }
            HashScheme::Linear => {
                scratch.hash = scratch.hash.wrapping_sub(d_from).wrapping_sub(d_to);
                if node_was_new {
                    scratch.hash = scratch.hash.wrapping_sub(lb as u64);
                }
            }
        }
        scratch.sub_edge_count -= 1;
        if node_was_new {
            debug_assert_eq!(
                rv_to_new, lb as u64,
                "leaving node must revert to label term"
            );
            let popped = scratch.sub_nodes.pop();
            debug_assert_eq!(popped, Some(cand.to));
            scratch.in_sub[cand.to.index()] = false;
        }
    }

    /// The top-level candidate loop, shard-aware. With a shard range
    /// `[lo, hi)` only candidates whose *pop index* falls inside the range
    /// are explored; out-of-range candidates move straight to the
    /// processed stack. Their `edge_seen` marks stay set, so the exclusion
    /// state — and therefore every in-range subtree, extension-stack
    /// length included — is byte-identical to the sequential run's at the
    /// same point. The union of the shard censuses over a partition of
    /// `[0, root_width)` equals the whole census exactly.
    fn explore_top<S: CensusSink>(
        &self,
        scratch: &mut CensusScratch,
        sink: &mut S,
        state: &mut BudgetState<'_>,
        shard: Option<(usize, usize)>,
    ) -> Result<(), Stop> {
        let Some((lo, hi)) = shard else {
            return self.explore(scratch, sink, state);
        };
        // Grouping at the top level only happens when emax == 1 and would
        // pull candidates across the shard boundary. Callers gate
        // splitting to emax >= 2; suppressing it here is defence in depth
        // (counts are unchanged either way — grouping is a bulk-counting
        // shortcut, not a semantic change).
        let allow_group = self.config.emax >= 2;
        let processed_mark = scratch.processed.len();
        let mut outcome = Ok(());
        let mut pop_index = 0usize;
        while let Some(cand) = scratch.ext.pop() {
            let step = if pop_index >= lo && pop_index < hi {
                self.explore_candidate(scratch, sink, state, cand, allow_group)
            } else {
                // Skipped: exclude the edge without exploring, exactly as
                // if a sibling shard had finished this subtree.
                scratch.processed.push(cand);
                Ok(())
            };
            pop_index += 1;
            if let Err(stop) = step {
                outcome = Err(stop);
                break;
            }
        }
        while scratch.processed.len() > processed_mark {
            let c = scratch.processed.pop().expect("len checked");
            scratch.ext.push(c);
        }
        outcome
    }

    /// The recursive exclusion-discipline exploration. Returns early (with
    /// all bookkeeping restored) when the budget or cancel token trips.
    fn explore<S: CensusSink>(
        &self,
        scratch: &mut CensusScratch,
        sink: &mut S,
        state: &mut BudgetState<'_>,
    ) -> Result<(), Stop> {
        let processed_mark = scratch.processed.len();
        let mut outcome = Ok(());
        while let Some(cand) = scratch.ext.pop() {
            if let Err(stop) = self.explore_candidate(scratch, sink, state, cand, true) {
                outcome = Err(stop);
                break;
            }
        }
        // Restore this call's processed candidates for the parent.
        while scratch.processed.len() > processed_mark {
            let c = scratch.processed.pop().expect("len checked");
            scratch.ext.push(c);
        }
        outcome
    }

    /// Explores every extension containing the already-popped candidate
    /// `cand`, then excludes its edge (moves it to the processed stack).
    /// One iteration of the classic exclusion-discipline loop, factored
    /// out so [`CensusEngine::explore_top`] can drive it per shard.
    fn explore_candidate<S: CensusSink>(
        &self,
        scratch: &mut CensusScratch,
        sink: &mut S,
        state: &mut BudgetState<'_>,
        cand: Candidate,
        allow_group: bool,
    ) -> Result<(), Stop> {
        let was_outside = !scratch.in_sub[cand.to.index()];
        let node_was_new = self.add_edge(scratch, cand);
        debug_assert_eq!(was_outside, node_was_new);
        let hash = scratch.hash;
        let mut grouped = 0usize;
        let step = if scratch.sub_edge_count < self.config.emax {
            sink.record(&self.view(scratch), hash, 1);
            scratch.counters.subgraphs += 1;
            let mark = scratch.ext.len();
            let step = state.on_record(1).and_then(|()| {
                if node_was_new {
                    if self.may_expand(cand.to) {
                        self.push_candidates(scratch, cand.to);
                    } else {
                        scratch.counters.dmax_skips += 1;
                    }
                }
                state.check_frontier(scratch.ext.len())?;
                self.explore(scratch, sink, state)
            });
            while scratch.ext.len() > mark {
                let c = scratch.ext.pop().expect("len checked");
                scratch.edge_seen[c.edge as usize] = false;
            }
            step
        } else {
            // Final level: heterogeneous grouping. Consecutive
            // candidates attaching a new node of the same label to the
            // same subgraph node produce identical subgraph encodings
            // and are counted in bulk. Followers are only *peeked* here;
            // they move to the processed stack after the leader, below.
            if allow_group && self.config.group_by_label && node_was_new {
                let group_label = self.graph.label(cand.to);
                let group_orient = self.orientations(cand).0;
                let group_type = self.graph.edge_type(cand.edge);
                for &next in scratch.ext.iter().rev() {
                    if next.from == cand.from
                        && !scratch.in_sub[next.to.index()]
                        && self.graph.label(next.to) == group_label
                        && self.orientations(next).0 == group_orient
                        && (!self.config.edge_typed
                            || self.graph.edge_type(next.edge) == group_type)
                    {
                        grouped += 1;
                    } else {
                        break;
                    }
                }
            }
            let multiplicity = 1 + grouped as u64;
            sink.record(&self.view(scratch), hash, multiplicity);
            scratch.counters.subgraphs += multiplicity;
            if grouped > 0 {
                scratch.counters.grouping_fast_path += grouped as u64;
            } else {
                scratch.counters.grouping_fallback += 1;
            }
            state.on_record(multiplicity)
        };
        self.remove_edge(scratch, cand, node_was_new);
        // The processed stack must stay in exact pop order — leader first,
        // then its grouped followers — so that every restore (popping
        // processed back onto `ext`) rebuilds the original extension order.
        // Shard scheduling keys on top-level pop indices, so a reordered
        // restore would make shards disagree with the sequential run.
        scratch.processed.push(cand);
        for _ in 0..grouped {
            let f = scratch.ext.pop().expect("peeked followers still on ext");
            scratch.processed.push(f);
        }
        step
    }

    /// Whether the census may expand through `w` (degree heuristic).
    #[inline]
    fn may_expand(&self, w: NodeId) -> bool {
        match self.config.dmax {
            None => true,
            Some(dmax) => self.graph.degree(w) as u32 <= dmax,
        }
    }

    fn view<'s>(&'s self, scratch: &'s CensusScratch) -> SubgraphView<'s> {
        SubgraphView {
            scratch,
            graph: self.graph,
            cols: self.cols,
            mask: self.mask_label(),
        }
    }
}

/// Receiver of census records. `multiplicity` accounts for grouped
/// final-level extensions.
pub trait CensusSink {
    /// Called once per distinct discovered subgraph occurrence group.
    fn record(&mut self, view: &SubgraphView<'_>, hash: u64, multiplicity: u64);
}

struct HashSink {
    counts: HashMap<u64, u64>,
}

impl CensusSink for HashSink {
    #[inline]
    fn record(&mut self, _view: &SubgraphView<'_>, hash: u64, multiplicity: u64) {
        *self.counts.entry(hash).or_insert(0) += multiplicity;
    }
}

/// Result of an exact (encoding-keyed) census.
#[derive(Clone, Debug)]
pub struct EncodedCensus {
    /// Count per canonical encoding.
    pub counts: HashMap<Encoding, u64>,
    /// Distinct encodings observed sharing a 64-bit rolling hash (expected
    /// to be 0 in practice).
    pub hash_collisions: u64,
}

struct EncodingSink {
    counts: HashMap<Encoding, u64>,
    by_hash: HashMap<u64, Encoding>,
    collisions: u64,
}

impl CensusSink for EncodingSink {
    fn record(&mut self, view: &SubgraphView<'_>, hash: u64, multiplicity: u64) {
        let encoding = view.encoding();
        match self.by_hash.get(&hash) {
            Some(known) if known != &encoding => self.collisions += 1,
            Some(_) => {}
            None => {
                self.by_hash.insert(hash, encoding.clone());
            }
        }
        *self.counts.entry(encoding).or_insert(0) += multiplicity;
    }
}

/// A sink that only counts total discovered subgraphs — used by benchmarks
/// to measure raw enumeration throughput without hash-map noise.
#[derive(Default)]
pub struct CountingSink {
    /// Total subgraphs recorded (multiplicities included).
    pub total: u64,
}

impl CensusSink for CountingSink {
    #[inline]
    fn record(&mut self, _view: &SubgraphView<'_>, _hash: u64, multiplicity: u64) {
        self.total += multiplicity;
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use hsgf_graph::rng::Rng;
    use hsgf_graph::{generators, GraphBuilder, Label, LabelSet};

    use crate::reference::naive_census;

    use super::*;

    fn engine_census(
        graph: &HetGraph,
        root: NodeId,
        config: CensusConfig,
    ) -> HashMap<Encoding, u64> {
        let engine = CensusEngine::new(graph, config).unwrap();
        let mut scratch = engine.make_scratch();
        engine.census_encodings(root, &mut scratch).unwrap().counts
    }

    /// Random small labelled graph for oracle comparisons.
    fn random_graph(seed: u64, n: usize, p: f64, labels: usize) -> HetGraph {
        let mut rng = Rng::from_seed(seed);
        let names: Vec<String> = (0..labels).map(|i| format!("l{i}")).collect();
        let mut b = GraphBuilder::with_label_names(names).unwrap();
        for _ in 0..n {
            let l = Label::new(rng.gen_range(0..labels) as u8);
            b.add_node_with(l).unwrap();
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    b.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn engine_matches_oracle_on_random_graphs() {
        for seed in 0..30u64 {
            let g = random_graph(seed, 7, 0.35, 3);
            if g.edge_count() == 0 || g.edge_count() > 18 {
                continue;
            }
            for emax in [1usize, 2, 3, 4] {
                let config = CensusConfig::default().with_emax(emax);
                let expected = naive_census(&g, NodeId::new(0), &config);
                let actual = engine_census(&g, NodeId::new(0), config);
                assert_eq!(
                    expected,
                    actual,
                    "mismatch: seed={seed} emax={emax} edges={:?}",
                    g.edges().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn engine_matches_oracle_with_dmax() {
        for seed in 100..120u64 {
            let g = random_graph(seed, 8, 0.35, 2);
            if g.edge_count() == 0 || g.edge_count() > 18 {
                continue;
            }
            for dmax in [1u32, 2, 3] {
                let config = CensusConfig::default().with_emax(3).with_dmax(Some(dmax));
                let expected = naive_census(&g, NodeId::new(0), &config);
                let actual = engine_census(&g, NodeId::new(0), config);
                assert_eq!(expected, actual, "mismatch: seed={seed} dmax={dmax}");
            }
        }
    }

    #[test]
    fn engine_matches_oracle_with_masking() {
        for seed in 200..220u64 {
            let g = random_graph(seed, 7, 0.3, 3);
            if g.edge_count() == 0 || g.edge_count() > 18 {
                continue;
            }
            let config = CensusConfig::default()
                .with_emax(3)
                .with_mask_root_label(true);
            let expected = naive_census(&g, NodeId::new(2), &config);
            let actual = engine_census(&g, NodeId::new(2), config);
            assert_eq!(expected, actual, "mismatch: seed={seed}");
        }
    }

    #[test]
    fn grouping_heuristic_does_not_change_results() {
        for seed in 300..315u64 {
            let g = random_graph(seed, 9, 0.3, 2);
            let mut with = CensusConfig::default().with_emax(3);
            with.group_by_label = true;
            let mut without = with.clone();
            without.group_by_label = false;
            for root in 0..3u32 {
                let a = engine_census(&g, NodeId::new(root), with.clone());
                let b = engine_census(&g, NodeId::new(root), without.clone());
                assert_eq!(a, b, "grouping changed results: seed={seed} root={root}");
            }
        }
    }

    #[test]
    fn hash_mode_totals_match_encoding_mode() {
        let g = random_graph(7, 10, 0.3, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        for root in g.nodes() {
            let hashes = engine.census_hashes(root, &mut scratch).unwrap();
            let encoded = engine.census_encodings(root, &mut scratch).unwrap();
            let t1: u64 = hashes.values().sum();
            let t2: u64 = encoded.counts.values().sum();
            assert_eq!(t1, t2);
            assert_eq!(encoded.hash_collisions, 0, "unexpected 64-bit collision");
            // Distinct encodings == distinct hashes when collision-free.
            assert_eq!(hashes.len(), encoded.counts.len());
        }
    }

    #[test]
    fn scratch_is_reusable_across_roots_and_runs() {
        let g = random_graph(11, 12, 0.25, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(3)).unwrap();
        let mut scratch = engine.make_scratch();
        let first = engine
            .census_encodings(NodeId::new(0), &mut scratch)
            .unwrap();
        // Interleave other roots, then repeat the first: identical results.
        for root in g.nodes() {
            let _ = engine.census_encodings(root, &mut scratch).unwrap();
        }
        let again = engine
            .census_encodings(NodeId::new(0), &mut scratch)
            .unwrap();
        assert_eq!(first.counts, again.counts);
    }

    #[test]
    fn rejects_invalid_config_and_root() {
        let g = random_graph(1, 5, 0.5, 2);
        assert!(matches!(
            CensusEngine::new(&g, CensusConfig::default().with_emax(0)),
            Err(CensusError::InvalidEmax { .. })
        ));
        assert!(matches!(
            CensusEngine::new(&g, CensusConfig::default().with_emax(MAX_EMAX + 1)),
            Err(CensusError::InvalidEmax { .. })
        ));
        let engine = CensusEngine::new(&g, CensusConfig::default()).unwrap();
        let mut scratch = engine.make_scratch();
        assert!(matches!(
            engine.census_hashes(NodeId::new(99), &mut scratch),
            Err(CensusError::UnknownRoot { .. })
        ));
    }

    #[test]
    fn path_graph_census_counts() {
        // Path a - b - c - d (4 nodes, labels all distinct), root = a.
        // emax=3: subgraphs containing a: {ab}, {ab,bc}, {ab,bc,cd} -> 3.
        let labels = LabelSet::from_names(["a", "b", "c", "d"]).unwrap();
        let g = GraphBuilder::from_edges(
            labels,
            &[Label::new(0), Label::new(1), Label::new(2), Label::new(3)],
            &[(0, 1), (1, 2), (2, 3)],
        )
        .unwrap();
        let counts = engine_census(&g, NodeId::new(0), CensusConfig::default().with_emax(3));
        let total: u64 = counts.values().sum();
        assert_eq!(total, 3);
        assert_eq!(
            counts.len(),
            3,
            "all three prefixes have distinct encodings"
        );
        // Root = b: {ab}, {bc}, {ab,bc}, {bc,cd}, {ab,bc,cd} -> 5.
        let counts = engine_census(&g, NodeId::new(1), CensusConfig::default().with_emax(3));
        let total: u64 = counts.values().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn star_counts_scale_with_choose() {
        // Star: centre (label 0) with 6 leaves (label 1); root = centre.
        // Subgraphs with k edges = C(6, k).
        let labels = LabelSet::from_names(["c", "l"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let c = b.add_node_with(Label::new(0)).unwrap();
        for _ in 0..6 {
            let leaf = b.add_node_with(Label::new(1)).unwrap();
            b.add_edge(c, leaf).unwrap();
        }
        let g = b.build();
        let counts = engine_census(&g, c, CensusConfig::default().with_emax(3));
        // One encoding per k (all leaves identical): k=1,2,3.
        assert_eq!(counts.len(), 3);
        let mut by_edges: Vec<(usize, u64)> =
            counts.iter().map(|(e, &c)| (e.edge_count(), c)).collect();
        by_edges.sort_unstable();
        assert_eq!(by_edges, vec![(1, 6), (2, 15), (3, 20)]);
    }

    #[test]
    fn leaf_root_census_through_hub() {
        // Leaf -> hub with many leaves: counts reflect the hub's breadth
        // (the "local sparsity is part of the feature" claim, §2).
        let labels = LabelSet::from_names(["c", "l"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let c = b.add_node_with(Label::new(0)).unwrap();
        let mut first_leaf = None;
        for _ in 0..5 {
            let leaf = b.add_node_with(Label::new(1)).unwrap();
            first_leaf.get_or_insert(leaf);
            b.add_edge(c, leaf).unwrap();
        }
        let g = b.build();
        let root = first_leaf.unwrap();
        let counts = engine_census(&g, root, CensusConfig::default().with_emax(2));
        // 1-edge: {root-c}. 2-edge: {root-c, c-otherleaf} × 4 -> one
        // encoding with count 4.
        let total: u64 = counts.values().sum();
        assert_eq!(total, 5);
        assert_eq!(counts.len(), 2);
        assert!(counts.values().any(|&v| v == 4));
    }

    /// Random small graph where ~half the edges carry a direction.
    fn random_directed_graph(seed: u64, n: usize, p: f64, labels: usize) -> HetGraph {
        let mut rng = Rng::from_seed(seed);
        let names: Vec<String> = (0..labels).map(|i| format!("l{i}")).collect();
        let mut b = GraphBuilder::with_label_names(names).unwrap();
        for _ in 0..n {
            let l = Label::new(rng.gen_range(0..labels) as u8);
            b.add_node_with(l).unwrap();
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    match rng.gen_range(0..3) {
                        0 => b.add_edge(NodeId::new(u), NodeId::new(v)).unwrap(),
                        1 => b.add_arc(NodeId::new(u), NodeId::new(v)).unwrap(),
                        _ => b.add_arc(NodeId::new(v), NodeId::new(u)).unwrap(),
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn directed_engine_matches_oracle() {
        for seed in 400..425u64 {
            let g = random_directed_graph(seed, 7, 0.35, 2);
            if g.edge_count() == 0 || g.edge_count() > 16 {
                continue;
            }
            let config = CensusConfig::default().with_emax(3).with_directed(true);
            let expected = naive_census(&g, NodeId::new(0), &config);
            let actual = engine_census(&g, NodeId::new(0), config);
            assert_eq!(expected, actual, "mismatch: seed={seed}");
        }
    }

    #[test]
    fn directed_mode_distinguishes_arc_orientation() {
        // a → b vs b → a around root a: different encodings.
        let mk = |reversed: bool| {
            let mut b = GraphBuilder::with_label_names(["x", "y"]).unwrap();
            let a = b.add_node("x").unwrap();
            let c = b.add_node("y").unwrap();
            if reversed {
                b.add_arc(c, a).unwrap();
            } else {
                b.add_arc(a, c).unwrap();
            }
            b.build()
        };
        let config = CensusConfig::default().with_emax(1).with_directed(true);
        let out = engine_census(&mk(false), NodeId::new(0), config.clone());
        let inn = engine_census(&mk(true), NodeId::new(0), config.clone());
        assert_ne!(out, inn, "orientation must be visible in the encoding");
        // Undirected mode collapses them.
        let config_u = CensusConfig::default().with_emax(1);
        let out_u = engine_census(&mk(false), NodeId::new(0), config_u.clone());
        let inn_u = engine_census(&mk(true), NodeId::new(0), config_u);
        assert_eq!(out_u, inn_u);
    }

    #[test]
    fn directed_mode_on_undirected_graph_degenerates() {
        // Purely symmetric graphs: directed and undirected censuses have
        // the same totals and count multiset (only the row width differs).
        let g = random_graph(55, 8, 0.35, 2);
        let root = NodeId::new(0);
        let undirected = engine_census(&g, root, CensusConfig::default().with_emax(3));
        let directed = engine_census(
            &g,
            root,
            CensusConfig::default().with_emax(3).with_directed(true),
        );
        let mut a: Vec<u64> = undirected.values().copied().collect();
        let mut b: Vec<u64> = directed.values().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn directed_grouping_does_not_change_results() {
        for seed in 500..510u64 {
            let g = random_directed_graph(seed, 9, 0.3, 2);
            let mut with = CensusConfig::default().with_emax(3).with_directed(true);
            with.group_by_label = true;
            let mut without = with.clone();
            without.group_by_label = false;
            let a = engine_census(&g, NodeId::new(0), with);
            let b = engine_census(&g, NodeId::new(0), without);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    /// Random small graph with typed (and possibly directed) edges.
    fn random_typed_graph(seed: u64, n: usize, p: f64, labels: usize, types: u8) -> HetGraph {
        let mut rng = Rng::from_seed(seed);
        let names: Vec<String> = (0..labels).map(|i| format!("l{i}")).collect();
        let mut b = GraphBuilder::with_label_names(names).unwrap();
        for _ in 0..n {
            let l = Label::new(rng.gen_range(0..labels) as u8);
            b.add_node_with(l).unwrap();
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    let ty = rng.gen_range(0u8..types);
                    if rng.gen_bool(0.5) {
                        b.add_edge_typed(NodeId::new(u), NodeId::new(v), ty)
                            .unwrap();
                    } else {
                        b.add_arc_typed(NodeId::new(u), NodeId::new(v), ty).unwrap();
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn edge_typed_engine_matches_oracle() {
        for seed in 600..620u64 {
            let g = random_typed_graph(seed, 7, 0.35, 2, 3);
            if g.edge_count() == 0 || g.edge_count() > 16 {
                continue;
            }
            for directed in [false, true] {
                let config = CensusConfig::default()
                    .with_emax(3)
                    .with_directed(directed)
                    .with_edge_typed(true);
                let expected = naive_census(&g, NodeId::new(0), &config);
                let actual = engine_census(&g, NodeId::new(0), config);
                assert_eq!(expected, actual, "seed={seed} directed={directed}");
            }
        }
    }

    #[test]
    fn edge_types_distinguish_otherwise_identical_edges() {
        let mk = |ty: u8| {
            let mut b = GraphBuilder::with_label_names(["x", "y"]).unwrap();
            let a = b.add_node("x").unwrap();
            let c = b.add_node("y").unwrap();
            let d = b.add_node("y").unwrap();
            b.add_edge_typed(a, c, 0).unwrap();
            b.add_edge_typed(a, d, ty).unwrap();
            b.build()
        };
        let config = CensusConfig::default().with_emax(2).with_edge_typed(true);
        let same = engine_census(&mk(0), NodeId::new(0), config.clone());
        let mixed = engine_census(&mk(1), NodeId::new(0), config.clone());
        assert_ne!(same, mixed, "edge types must be visible in the encoding");
        // Untyped mode collapses them — but only when both graphs agree on
        // the type alphabet... untyped ignores types entirely:
        let config_u = CensusConfig::default().with_emax(2);
        let same_u = engine_census(&mk(0), NodeId::new(0), config_u.clone());
        let mixed_u = engine_census(&mk(1), NodeId::new(0), config_u);
        assert_eq!(same_u, mixed_u);
    }

    #[test]
    fn edge_typed_grouping_does_not_change_results() {
        for seed in 700..708u64 {
            let g = random_typed_graph(seed, 9, 0.3, 2, 2);
            let mut with = CensusConfig::default().with_emax(3).with_edge_typed(true);
            with.group_by_label = true;
            let mut without = with.clone();
            without.group_by_label = false;
            let a = engine_census(&g, NodeId::new(0), with);
            let b = engine_census(&g, NodeId::new(0), without);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn subgraph_budget_aborts_and_scratch_stays_reusable() {
        let g = random_graph(21, 12, 0.4, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        let root = NodeId::new(0);
        let full = engine.census_encodings(root, &mut scratch).unwrap();
        let total: u64 = full.counts.values().sum();
        assert!(total > 4, "graph too sparse for the test");
        // A budget below the true total must abort...
        let tight = crate::budget::CensusBudget::unlimited().with_max_subgraphs(total - 1);
        let err = engine
            .census_encodings_budgeted(root, &mut scratch, &tight, None)
            .unwrap_err();
        assert!(matches!(
            err,
            CensusError::BudgetExhausted {
                root: 0,
                kind: crate::budget::BudgetKind::Subgraphs
            }
        ));
        // ...and leave the scratch clean: the next unbudgeted census on the
        // same scratch is byte-identical to the first.
        let again = engine.census_encodings(root, &mut scratch).unwrap();
        assert_eq!(full.counts, again.counts);
        // An exactly-sufficient budget succeeds.
        let exact = crate::budget::CensusBudget::unlimited().with_max_subgraphs(total);
        let ok = engine
            .census_encodings_budgeted(root, &mut scratch, &exact, None)
            .unwrap();
        assert_eq!(ok.counts, full.counts);
    }

    #[test]
    fn frontier_budget_aborts_on_hubs() {
        let labels = LabelSet::from_names(["c", "l"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let c = b.add_node_with(Label::new(0)).unwrap();
        for _ in 0..200 {
            let leaf = b.add_node_with(Label::new(1)).unwrap();
            b.add_edge(c, leaf).unwrap();
        }
        let g = b.build();
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(3)).unwrap();
        let mut scratch = engine.make_scratch();
        let tight = crate::budget::CensusBudget::unlimited().with_max_frontier(50);
        let err = engine
            .census_encodings_budgeted(c, &mut scratch, &tight, None)
            .unwrap_err();
        assert!(matches!(
            err,
            CensusError::BudgetExhausted {
                kind: crate::budget::BudgetKind::Frontier,
                ..
            }
        ));
        // A frontier cap above the hub degree changes nothing.
        let loose = crate::budget::CensusBudget::unlimited().with_max_frontier(500);
        let ok = engine
            .census_encodings_budgeted(c, &mut scratch, &loose, None)
            .unwrap();
        let full = engine.census_encodings(c, &mut scratch).unwrap();
        assert_eq!(ok.counts, full.counts);
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let g = random_graph(5, 8, 0.4, 2);
        let engine = CensusEngine::new(&g, CensusConfig::default()).unwrap();
        let mut scratch = engine.make_scratch();
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let err = engine
            .census_encodings_budgeted(
                NodeId::new(0),
                &mut scratch,
                &crate::budget::CensusBudget::unlimited(),
                Some(&token),
            )
            .unwrap_err();
        assert!(matches!(err, CensusError::Cancelled { root: 0 }));
        // The scratch is still clean for subsequent censuses.
        assert!(engine
            .census_encodings(NodeId::new(0), &mut scratch)
            .is_ok());
    }

    #[test]
    fn budgeted_census_is_deterministic() {
        let g = random_graph(33, 14, 0.35, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        let budget = crate::budget::CensusBudget::unlimited().with_max_subgraphs(100);
        for root in g.nodes().take(5) {
            let a = engine.census_encodings_budgeted(root, &mut scratch, &budget, None);
            let b = engine.census_encodings_budgeted(root, &mut scratch, &budget, None);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.counts, y.counts),
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("nondeterministic budget outcome: {x:?} vs {y:?}"),
            }
        }
    }

    /// Splits `[0, width)` into `parts` contiguous ranges, last open-ended.
    fn equal_ranges(width: usize, parts: usize) -> Vec<(usize, usize)> {
        let parts = parts.min(width).max(1);
        let chunk = width.div_ceil(parts);
        (0..parts)
            .map(|k| {
                let lo = k * chunk;
                let hi = if k + 1 == parts {
                    usize::MAX
                } else {
                    lo + chunk
                };
                (lo, hi)
            })
            .collect()
    }

    fn merge_counts(parts: Vec<HashMap<Encoding, u64>>) -> HashMap<Encoding, u64> {
        let mut merged = HashMap::new();
        for part in parts {
            for (enc, n) in part {
                *merged.entry(enc).or_insert(0) += n;
            }
        }
        merged
    }

    #[test]
    fn shard_union_equals_whole_census() {
        for seed in 800..812u64 {
            let g = random_graph(seed, 14, 0.3, 3);
            let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(3)).unwrap();
            let mut scratch = engine.make_scratch();
            for root in g.nodes().take(4) {
                let whole = engine.census_encodings(root, &mut scratch).unwrap().counts;
                let width = engine.root_width(root);
                for parts in [1usize, 2, 3, 7] {
                    let shards: Vec<_> = equal_ranges(width.max(1), parts)
                        .into_iter()
                        .map(|range| {
                            engine
                                .census_encodings_shard(
                                    root,
                                    &mut scratch,
                                    range,
                                    &CensusBudget::unlimited(),
                                    None,
                                    None,
                                )
                                .unwrap()
                                .counts
                        })
                        .collect();
                    assert_eq!(
                        merge_counts(shards),
                        whole,
                        "seed={seed} root={root:?} parts={parts}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_union_matches_whole_under_dmax_directed_and_types() {
        for seed in 900..906u64 {
            let g = random_typed_graph(seed, 12, 0.35, 2, 2);
            let config = CensusConfig::default()
                .with_emax(3)
                .with_dmax(Some(4))
                .with_directed(true)
                .with_edge_typed(true);
            let engine = CensusEngine::new(&g, config).unwrap();
            let mut scratch = engine.make_scratch();
            let root = NodeId::new(0);
            let whole = engine.census_encodings(root, &mut scratch).unwrap().counts;
            let width = engine.root_width(root);
            let shards: Vec<_> = equal_ranges(width.max(1), 3)
                .into_iter()
                .map(|range| {
                    engine
                        .census_encodings_shard(
                            root,
                            &mut scratch,
                            range,
                            &CensusBudget::unlimited(),
                            None,
                            None,
                        )
                        .unwrap()
                        .counts
                })
                .collect();
            assert_eq!(merge_counts(shards), whole, "seed={seed}");
        }
    }

    #[test]
    fn shard_hash_union_matches_whole() {
        let g = random_graph(42, 16, 0.3, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        let root = NodeId::new(1);
        let whole = engine.census_hashes(root, &mut scratch).unwrap();
        let width = engine.root_width(root);
        let mut merged: HashMap<u64, u64> = HashMap::new();
        for range in equal_ranges(width.max(1), 4) {
            let part = engine
                .census_hashes_shard(
                    root,
                    &mut scratch,
                    range,
                    &CensusBudget::unlimited(),
                    None,
                    None,
                )
                .unwrap();
            for (h, n) in part {
                *merged.entry(h).or_insert(0) += n;
            }
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn shared_budget_across_shards_trips_like_sequential() {
        let g = random_graph(21, 12, 0.4, 3);
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(4)).unwrap();
        let mut scratch = engine.make_scratch();
        let root = NodeId::new(0);
        let full = engine.census_encodings(root, &mut scratch).unwrap();
        let total: u64 = full.counts.values().sum();
        assert!(total > 4, "graph too sparse for the test");
        let width = engine.root_width(root);
        let budget = CensusBudget::unlimited();
        // A pooled cap below the true total must trip in some shard...
        let under = crate::budget::SharedBudget::new(Some(total - 1));
        let mut tripped = false;
        for range in equal_ranges(width.max(1), 3) {
            if engine
                .census_encodings_shard(root, &mut scratch, range, &budget, None, Some(&under))
                .is_err()
            {
                tripped = true;
            }
        }
        assert!(tripped, "pooled under-budget never exhausted");
        // ...while an exactly-sufficient pooled cap completes every shard
        // with the whole census as the union.
        let exact = crate::budget::SharedBudget::new(Some(total));
        let shards: Vec<_> = equal_ranges(width.max(1), 3)
            .into_iter()
            .map(|range| {
                engine
                    .census_encodings_shard(root, &mut scratch, range, &budget, None, Some(&exact))
                    .unwrap()
                    .counts
            })
            .collect();
        assert_eq!(merge_counts(shards), full.counts);
    }

    #[test]
    fn emax_one_sharding_stays_correct_via_group_suppression() {
        // Defence-in-depth check: even though schedulers never shard at
        // emax == 1, the engine must produce correct per-shard counts.
        let labels = LabelSet::from_names(["c", "l"]).unwrap();
        let mut b = GraphBuilder::new(labels);
        let c = b.add_node_with(Label::new(0)).unwrap();
        for _ in 0..9 {
            let leaf = b.add_node_with(Label::new(1)).unwrap();
            b.add_edge(c, leaf).unwrap();
        }
        let g = b.build();
        let engine = CensusEngine::new(&g, CensusConfig::default().with_emax(1)).unwrap();
        let mut scratch = engine.make_scratch();
        let whole = engine.census_encodings(c, &mut scratch).unwrap().counts;
        let shards: Vec<_> = equal_ranges(engine.root_width(c), 4)
            .into_iter()
            .map(|range| {
                engine
                    .census_encodings_shard(
                        c,
                        &mut scratch,
                        range,
                        &CensusBudget::unlimited(),
                        None,
                        None,
                    )
                    .unwrap()
                    .counts
            })
            .collect();
        assert_eq!(merge_counts(shards), whole);
    }

    #[test]
    fn dmax_zero_blocks_all_expansion_beyond_neighbors() {
        let labels = LabelSet::from_names(["x"]).unwrap();
        let g = generators::barabasi_albert(labels, &[1.0], 60, 2, 5).unwrap();
        let config = CensusConfig::default().with_emax(3).with_dmax(Some(0));
        let engine = CensusEngine::new(&g, config).unwrap();
        let mut scratch = engine.make_scratch();
        let root = NodeId::new(10);
        let counts = engine.census_encodings(root, &mut scratch).unwrap().counts;
        // With dmax = 0, no non-root node may be expanded: all subgraphs
        // are stars around the root (plus cycle-closing edges between the
        // root's neighbours are unreachable since neither endpoint pushes).
        for enc in counts.keys() {
            // Every subgraph must contain the root as the single centre:
            // at most one node with degree > 1 in the encoding.
            let high_degree_rows = enc
                .rows()
                .filter(|r| r[1..].iter().map(|&t| t as usize).sum::<usize>() > 1)
                .count();
            assert!(
                high_degree_rows <= 1,
                "non-star subgraph slipped through: {enc:?}"
            );
        }
    }
}
