//! A minimal hand-rolled JSON writer and reader — the in-repo replacement
//! for the `serde` derives the workspace used to carry. The writer covers
//! what the exporters need: objects, arrays, strings, numbers, booleans,
//! correct escaping. The reader ([`parse`]) exists for the observability
//! schema checker (`hsgf obs-validate`), which must re-read the metrics
//! and trace documents the writers produce.
//!
//! Values are appended in call order; the builders insert commas and the
//! closing delimiter, so the output is always syntactically valid JSON as
//! long as every builder is `finish`ed.

use std::fmt::Write as _;

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number token. Non-finite values (which JSON
/// cannot represent) become `null`; integral values drop the fraction.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental JSON object builder.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a floating-point field (`null` for non-finite values).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (a nested object or array) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental JSON array builder.
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn push_raw(&mut self, json: &str) {
        self.sep();
        self.buf.push_str(json);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(value));
    }

    /// Appends an unsigned integer element.
    pub fn push_uint(&mut self, value: u64) {
        self.sep();
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a floating-point element (`null` for non-finite values).
    pub fn push_num(&mut self, value: f64) {
        self.sep();
        self.buf.push_str(&number(value));
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a slice of `f64` as a JSON array in one call.
pub fn number_array(values: &[f64]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr.push_num(v);
    }
    arr.finish()
}

/// A parsed JSON value. Objects preserve key order (a `Vec` of pairs, not
/// a map): the documents this workspace reads are small and written by its
/// own builders, so ordered lookup is simpler and keeps output diffs
/// stable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number token. Stored as `f64`: the counters this workspace
    /// round-trips stay far below 2^53, where `f64` is exact.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Nesting depth cap for the recursive-descent parser, bounding stack use
/// on hostile input. Far deeper than anything this workspace writes.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document. Errors carry the byte offset and a short
/// description — enough to debug a malformed metrics or trace file.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are recombined; a lone
                            // surrogate becomes U+FFFD rather than an error
                            // (the writers never emit one).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-2.5), "-2.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_valid_json() {
        let json = JsonObject::new()
            .str("name", "a\"b")
            .int("n", -3)
            .uint("m", 7)
            .num("x", 1.5)
            .bool("flag", true)
            .raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"a\\\"b\",\"n\":-3,\"m\":7,\"x\":1.5,\"flag\":true,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn array_mixes_elements() {
        let mut arr = JsonArray::new();
        arr.push_uint(1);
        arr.push_str("two");
        arr.push_num(3.5);
        arr.push_raw("{\"k\":0}");
        assert_eq!(arr.finish(), "[1,\"two\",3.5,{\"k\":0}]");
    }

    #[test]
    fn number_array_renders() {
        assert_eq!(number_array(&[1.0, 2.5, f64::NAN]), "[1,2.5,null]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(JsonValue::Null));
        assert_eq!(parse(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(parse("false"), Ok(JsonValue::Bool(false)));
        assert_eq!(parse("-12.5e1"), Ok(JsonValue::Number(-125.0)));
        assert_eq!(parse("\"hi\""), Ok(JsonValue::String("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,{\"b\":null},\"x\"],\"c\":{}}").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&JsonValue::Null));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap().as_str(),
            Some("a\"b\\c\nA")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "depth cap missing");
    }

    #[test]
    fn round_trips_builder_output() {
        let json = JsonObject::new()
            .str("name", "a\"b\nc")
            .uint("n", 7)
            .num("x", -1.5)
            .bool("flag", false)
            .raw("arr", "[1,2,3]")
            .finish();
        let v = parse(&json).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("flag"), Some(&JsonValue::Bool(false)));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
    }
}
