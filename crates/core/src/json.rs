//! A minimal hand-rolled JSON writer — the in-repo replacement for the
//! `serde` derives the workspace used to carry. Only what the exporters
//! need: objects, arrays, strings, numbers, booleans, correct escaping.
//!
//! Values are appended in call order; the builders insert commas and the
//! closing delimiter, so the output is always syntactically valid JSON as
//! long as every builder is `finish`ed.

use std::fmt::Write as _;

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number token. Non-finite values (which JSON
/// cannot represent) become `null`; integral values drop the fraction.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental JSON object builder.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a floating-point field (`null` for non-finite values).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (a nested object or array) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental JSON array builder.
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn push_raw(&mut self, json: &str) {
        self.sep();
        self.buf.push_str(json);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(value));
    }

    /// Appends an unsigned integer element.
    pub fn push_uint(&mut self, value: u64) {
        self.sep();
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a floating-point element (`null` for non-finite values).
    pub fn push_num(&mut self, value: f64) {
        self.sep();
        self.buf.push_str(&number(value));
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a slice of `f64` as a JSON array in one call.
pub fn number_array(values: &[f64]) -> String {
    let mut arr = JsonArray::new();
    for &v in values {
        arr.push_num(v);
    }
    arr.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-2.5), "-2.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_valid_json() {
        let json = JsonObject::new()
            .str("name", "a\"b")
            .int("n", -3)
            .uint("m", 7)
            .num("x", 1.5)
            .bool("flag", true)
            .raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"a\\\"b\",\"n\":-3,\"m\":7,\"x\":1.5,\"flag\":true,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn array_mixes_elements() {
        let mut arr = JsonArray::new();
        arr.push_uint(1);
        arr.push_str("two");
        arr.push_num(3.5);
        arr.push_raw("{\"k\":0}");
        assert_eq!(arr.finish(), "[1,\"two\",3.5,{\"k\":0}]");
    }

    #[test]
    fn number_array_renders() {
        assert_eq!(number_array(&[1.0, 2.5, f64::NAN]), "[1,2.5,null]");
    }
}
