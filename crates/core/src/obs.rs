//! Unified observability for the census pipeline: a sharded metrics
//! registry plus span tracing, threaded through [`crate::census`],
//! [`crate::supervisor`], [`crate::parallel`], and [`crate::steal`].
//!
//! The paper's efficiency claims rest on internals that are invisible at
//! runtime — rolling-hash collision behaviour beyond the provably-safe
//! `emax <= 5` regime (Spitz et al. §4), the savings from heterogeneous
//! grouping and the `dmax` constraint, and enumeration skew across roots.
//! This module makes them first-class outputs.
//!
//! # Architecture
//!
//! * **[`Obs`] handle** — a cheaply clonable handle that is either
//!   *disabled* (the default: every method is a branch on `None` and
//!   returns immediately, so instrumented code pays nothing) or *enabled*
//!   (backed by one shared [`ObsInner`]).
//! * **Sharded registry** — [`SHARD_COUNT`] shards, each a [`CounterSet`]
//!   of relaxed `AtomicU64`s plus two fixed-bucket log2 histograms and a
//!   max-merged frontier-peak gauge. A thread picks its shard by hashing
//!   its `ThreadId`, so concurrent workers rarely contend on a cache line;
//!   [`Obs::snapshot`] merges shards with commutative sums (max for the
//!   gauge), so the merged totals are independent of which thread ran what.
//! * **Hot-path discipline** — the census inner loop never touches an
//!   atomic. Per-subgraph events accumulate in the plain-`u64`
//!   [`CensusCounters`] embedded in the census scratch and are flushed into
//!   a registry shard **once per completed census run** (aborted runs flush
//!   nothing, which is what keeps the deterministic section deterministic —
//!   see below).
//! * **Span tracing** — per-phase spans (load / extract / feature-matrix /
//!   eval) in a small side list and per-root spans in a bounded
//!   drop-oldest ring buffer, exported together as Chrome trace format
//!   (`chrome://tracing` / Perfetto) by [`Obs::trace_json`]. The same data
//!   yields the top-K slowest-roots report in the snapshot.
//!
//! # Determinism
//!
//! A snapshot has three sections. The `counters` section is **bit-identical
//! across schedulers and thread counts** for the same extraction: every
//! count in it is derived from *completed* census runs whose exclusion
//! state is byte-identical to the sequential path (shard splitting is
//! gated to `emax >= 2`, so grouping — a final-level mechanism — never
//! crosses a shard boundary, and the root-level frontier push is credited
//! to the first shard only). The `runtime` section (budget polls, steal
//! counters, degrade attempts) depends on scheduling and is excluded from
//! determinism comparisons, as is the `durations` section (wall-clock).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::json::{JsonArray, JsonObject, JsonValue};
use crate::steal::StealStats;

/// Every scalar counter the registry tracks. The discriminant doubles as
/// the index into a [`CounterSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Subgraphs enumerated (multiplicity-weighted: grouped followers
    /// count individually). Deterministic.
    SubgraphsEnumerated,
    /// Candidates pushed onto the DFS frontier. Deterministic (the
    /// root-level push of a split root is credited to its first shard).
    FrontierPushes,
    /// Final-level subgraphs counted in bulk by heterogeneous grouping
    /// (the followers absorbed into a leader's multiplicity). Deterministic.
    GroupingFastPathHits,
    /// Final-level subgraphs recorded individually — the per-neighbour
    /// fallback when grouping is disabled or no follower shares the
    /// leader's label. Deterministic.
    GroupingFallbackRecords,
    /// Frontier candidates whose endpoint was admitted but not expanded
    /// because its degree exceeds `dmax`. Deterministic.
    DmaxSkips,
    /// Encoding-hash collisions detected against the exact
    /// characteristic-sequence path (distinct encodings sharing a rolling
    /// hash within one sink). Deterministic whenever zero; a collision
    /// split across shards of one root can be missed, see DESIGN.md §8.
    HashCollisions,
    /// Roots whose census completed exactly. Deterministic.
    RootsExact,
    /// Roots that completed on a degrade-ladder rung. Deterministic.
    RootsDegraded,
    /// Roots that failed every attempt. Deterministic.
    RootsFailed,
    /// Roots cancelled before completion. Deterministic.
    RootsCancelled,
    /// Amortized budget polls executed (one per `CHECK_INTERVAL_MASK + 1`
    /// records). Runtime: shards tick their own intervals.
    BudgetPolls,
    /// Census runs stopped by the subgraph budget. Runtime.
    BudgetStopSubgraphs,
    /// Census runs stopped by the frontier cap. Runtime.
    BudgetStopFrontier,
    /// Census runs stopped by the deadline. Runtime.
    BudgetStopDeadline,
    /// Census runs stopped by cancellation. Runtime.
    BudgetStopCancelled,
    /// Degrade-ladder transitions (retries past a root's base attempt).
    /// Runtime: the stealing scheduler re-runs the ladder after a shard
    /// failure.
    DegradeAttempts,
    /// Steal-pool tasks executed (roots plus shards). Runtime.
    StealTasks,
    /// Steal-pool tasks taken from another worker's deque. Runtime.
    StealSteals,
    /// Steal-pool worker parks after a fully empty scan. Runtime.
    StealParks,
    /// Hub roots split into stealable shards. Runtime.
    StealSplits,
    /// Census-cache lookups served from a stored entry. Runtime: hit
    /// counts depend on what earlier runs populated.
    CacheHits,
    /// Census-cache lookups that found no entry. Runtime.
    CacheMisses,
    /// Census-cache entries evicted by the capacity bound. Runtime.
    CacheEvictions,
    /// Microseconds spent computing neighbourhood fingerprints for cache
    /// keys. Runtime (wall-clock).
    CacheFingerprintMicros,
    /// Root records durably appended to the extraction journal. Runtime:
    /// depends on how far the previous run got before dying.
    JournalAppends,
    /// Roots replayed from the journal instead of re-extracted. Runtime.
    JournalReplays,
    /// Torn journal tails truncated during recovery. Runtime.
    JournalTruncatedTails,
    /// Transient-failure retries spent by the supervisor. Runtime:
    /// transient faults are scheduling-dependent by definition.
    RetryAttempts,
    /// Feature/census queries answered by the serving layer. Runtime.
    ServeQueries,
    /// Edge-edit batches applied by the serving layer. Runtime.
    ServeEdits,
    /// Journal records absorbed by the serving layer's change-feed tail
    /// (startup replay plus periodic re-scans). Runtime.
    ServeJournalRecords,
}

impl Metric {
    /// Number of metrics (the length of a [`CounterSet`]).
    pub const COUNT: usize = 31;

    /// Every metric, in declaration (and JSON emission) order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::SubgraphsEnumerated,
        Metric::FrontierPushes,
        Metric::GroupingFastPathHits,
        Metric::GroupingFallbackRecords,
        Metric::DmaxSkips,
        Metric::HashCollisions,
        Metric::RootsExact,
        Metric::RootsDegraded,
        Metric::RootsFailed,
        Metric::RootsCancelled,
        Metric::BudgetPolls,
        Metric::BudgetStopSubgraphs,
        Metric::BudgetStopFrontier,
        Metric::BudgetStopDeadline,
        Metric::BudgetStopCancelled,
        Metric::DegradeAttempts,
        Metric::StealTasks,
        Metric::StealSteals,
        Metric::StealParks,
        Metric::StealSplits,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::CacheEvictions,
        Metric::CacheFingerprintMicros,
        Metric::JournalAppends,
        Metric::JournalReplays,
        Metric::JournalTruncatedTails,
        Metric::RetryAttempts,
        Metric::ServeQueries,
        Metric::ServeEdits,
        Metric::ServeJournalRecords,
    ];

    /// The metric's snake_case name, used as its JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Metric::SubgraphsEnumerated => "subgraphs_enumerated",
            Metric::FrontierPushes => "frontier_pushes",
            Metric::GroupingFastPathHits => "grouping_fast_path_hits",
            Metric::GroupingFallbackRecords => "grouping_fallback_records",
            Metric::DmaxSkips => "dmax_skips",
            Metric::HashCollisions => "hash_collisions",
            Metric::RootsExact => "roots_exact",
            Metric::RootsDegraded => "roots_degraded",
            Metric::RootsFailed => "roots_failed",
            Metric::RootsCancelled => "roots_cancelled",
            Metric::BudgetPolls => "budget_polls",
            Metric::BudgetStopSubgraphs => "budget_stop_subgraphs",
            Metric::BudgetStopFrontier => "budget_stop_frontier",
            Metric::BudgetStopDeadline => "budget_stop_deadline",
            Metric::BudgetStopCancelled => "budget_stop_cancelled",
            Metric::DegradeAttempts => "degrade_attempts",
            Metric::StealTasks => "steal_tasks",
            Metric::StealSteals => "steal_steals",
            Metric::StealParks => "steal_parks",
            Metric::StealSplits => "steal_splits",
            Metric::CacheHits => "cache_hits",
            Metric::CacheMisses => "cache_misses",
            Metric::CacheEvictions => "cache_evictions",
            Metric::CacheFingerprintMicros => "cache_fingerprint_micros",
            Metric::JournalAppends => "journal_appends",
            Metric::JournalReplays => "journal_replays",
            Metric::JournalTruncatedTails => "journal_truncated_tails",
            Metric::RetryAttempts => "retry_attempts",
            Metric::ServeQueries => "serve_queries",
            Metric::ServeEdits => "serve_edits",
            Metric::ServeJournalRecords => "serve_journal_records",
        }
    }

    /// Whether the metric belongs to the deterministic `counters` section
    /// (bit-identical across schedulers and thread counts) rather than the
    /// scheduling-dependent `runtime` section.
    pub fn deterministic(self) -> bool {
        matches!(
            self,
            Metric::SubgraphsEnumerated
                | Metric::FrontierPushes
                | Metric::GroupingFastPathHits
                | Metric::GroupingFallbackRecords
                | Metric::DmaxSkips
                | Metric::HashCollisions
                | Metric::RootsExact
                | Metric::RootsDegraded
                | Metric::RootsFailed
                | Metric::RootsCancelled
        )
    }
}

/// A fixed array of relaxed atomic counters, one per [`Metric`]. The
/// registry's shards are made of these, and the steal pool embeds one
/// directly (its tasks/steals/parks/splits land in the same storage the
/// registry merges).
pub struct CounterSet {
    values: [AtomicU64; Metric::COUNT],
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        CounterSet {
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `n` to `metric` (relaxed; totals are read only at snapshot).
    pub fn add(&self, metric: Metric, n: u64) {
        if n != 0 {
            self.values[metric as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to `metric`.
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Current value of `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.values[metric as usize].load(Ordering::Relaxed)
    }

    /// Adds every counter in `self` into `target`.
    pub fn merge_into(&self, target: &CounterSet) {
        for metric in Metric::ALL {
            target.add(metric, self.get(metric));
        }
    }

    /// The scheduler-counter view of this set, reproducing the
    /// `results/stealing_bench.md` numbers from a snapshotted registry.
    pub fn steal_stats(&self) -> StealStats {
        StealStats {
            tasks: self.get(Metric::StealTasks),
            steals: self.get(Metric::StealSteals),
            parks: self.get(Metric::StealParks),
            splits: self.get(Metric::StealSplits),
        }
    }
}

impl Default for CounterSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Buckets per log2 histogram: bucket `b > 0` holds values `v` with
/// `floor(log2(v)) == b - 1` (i.e. `2^(b-1) <= v < 2^b`); bucket 0 holds
/// zero.
pub const HIST_BUCKETS: usize = 64;

/// Maps a value to its log2 bucket index (see [`HIST_BUCKETS`]).
pub fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// A fixed-bucket log2 histogram of atomics (one per registry shard).
struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn add_to(&self, totals: &mut [u64; HIST_BUCKETS]) {
        for (t, b) in totals.iter_mut().zip(self.buckets.iter()) {
            *t += b.load(Ordering::Relaxed);
        }
    }
}

/// Plain (non-atomic) per-census counters embedded in the census scratch.
/// The enumeration inner loop bumps these; a completed run's delta is
/// flushed into the registry in one step. `frontier_peak` merges by max,
/// everything else by sum.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CensusCounters {
    /// Subgraphs enumerated (multiplicity-weighted).
    pub subgraphs: u64,
    /// Candidates pushed onto the DFS frontier.
    pub frontier_pushes: u64,
    /// High-water mark of the frontier length (max-merged gauge).
    pub frontier_peak: u64,
    /// Final-level subgraphs bulk-counted by grouping.
    pub grouping_fast_path: u64,
    /// Final-level subgraphs recorded individually.
    pub grouping_fallback: u64,
    /// Admitted-but-not-expanded candidates (degree above `dmax`).
    pub dmax_skips: u64,
    /// Hash collisions the encoding sink detected.
    pub hash_collisions: u64,
}

impl CensusCounters {
    /// The delta accumulated since `before` was captured from the same
    /// counter set. `frontier_peak` is not differenced — callers reset it
    /// at run entry, so the current value *is* the per-run peak.
    pub fn delta_since(&self, before: &CensusCounters) -> CensusCounters {
        CensusCounters {
            subgraphs: self.subgraphs - before.subgraphs,
            frontier_pushes: self.frontier_pushes - before.frontier_pushes,
            frontier_peak: self.frontier_peak,
            grouping_fast_path: self.grouping_fast_path - before.grouping_fast_path,
            grouping_fallback: self.grouping_fallback - before.grouping_fallback,
            dmax_skips: self.dmax_skips - before.dmax_skips,
            hash_collisions: self.hash_collisions - before.hash_collisions,
        }
    }

    /// Folds another delta into this one: sums, except `frontier_peak`
    /// which takes the max. Used when summing shard deltas of a split root.
    pub fn absorb(&mut self, other: &CensusCounters) {
        self.subgraphs += other.subgraphs;
        self.frontier_pushes += other.frontier_pushes;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.grouping_fast_path += other.grouping_fast_path;
        self.grouping_fallback += other.grouping_fallback;
        self.dmax_skips += other.dmax_skips;
        self.hash_collisions += other.hash_collisions;
    }
}

/// Shards in the registry. A power of two so the thread-hash mask is
/// cheap; more shards than typical worker counts keeps collisions rare.
const SHARD_COUNT: usize = 16;

/// Default capacity of the per-root span ring buffer.
const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// How many roots the slowest-roots report keeps.
const SLOWEST_ROOTS: usize = 10;

/// One registry shard: counters plus histograms plus the peak gauge.
struct Shard {
    counters: CounterSet,
    frontier_peak: AtomicU64,
    root_subgraphs: AtomicHistogram,
    root_micros: AtomicHistogram,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: CounterSet::new(),
            frontier_peak: AtomicU64::new(0),
            root_subgraphs: AtomicHistogram::new(),
            root_micros: AtomicHistogram::new(),
        }
    }
}

/// A completed span. Phases carry a static name; root spans carry the
/// root's node id (rendered as `root <id>` at export time, so the ring
/// buffer stores no strings).
#[derive(Copy, Clone, Debug)]
enum SpanKind {
    Phase(&'static str),
    Root(u32),
}

#[derive(Copy, Clone, Debug)]
struct SpanRecord {
    kind: SpanKind,
    start_us: u64,
    dur_us: u64,
    tid: u64,
}

/// Bounded drop-oldest ring buffer of root spans.
struct TraceRing {
    spans: Vec<SpanRecord>,
    capacity: usize,
    /// Overwrite position once full.
    next: usize,
    dropped: u64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            spans: Vec::new(),
            capacity: capacity.max(1),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, span: SpanRecord) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.next] = span;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Shared state behind an enabled [`Obs`] handle.
struct ObsInner {
    /// All span timestamps are microseconds since this instant.
    epoch: Instant,
    shards: Vec<Shard>,
    /// Phase spans are few and must survive ring wrap, so they live in
    /// their own list.
    phases: Mutex<Vec<SpanRecord>>,
    trace: Mutex<TraceRing>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ObsInner {
    fn new(trace_capacity: usize) -> Self {
        ObsInner {
            epoch: Instant::now(),
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
            phases: Mutex::new(Vec::new()),
            trace: Mutex::new(TraceRing::new(trace_capacity)),
        }
    }

    /// The current thread's shard, chosen by hashing its `ThreadId`. Any
    /// assignment is correct (snapshots merge commutatively); hashing just
    /// spreads workers across cache lines without a registration step.
    fn shard(&self) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARD_COUNT - 1)]
    }

    fn micros_since_epoch(&self, t: Instant) -> u64 {
        t.duration_since(self.epoch).as_micros() as u64
    }
}

/// Handle the pipeline emits telemetry into. `Obs::default()` (or
/// [`Obs::disabled`]) is a no-op: every method short-circuits on the
/// missing inner state, so instrumented code costs one branch. Clones
/// share the same registry and trace buffer.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle (same as `Obs::default()`).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle with the default trace-ring capacity.
    pub fn enabled() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled handle whose per-root span ring holds at most
    /// `trace_capacity` spans (oldest dropped first; the drop count is
    /// reported in the snapshot).
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner::new(trace_capacity))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to `metric` in the current thread's shard.
    pub fn add(&self, metric: Metric, n: u64) {
        if let Some(inner) = &self.inner {
            inner.shard().counters.add(metric, n);
        }
    }

    /// Adds 1 to `metric` in the current thread's shard.
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Flushes a completed census run's delta into the registry. Callers
    /// must only pass deltas of runs that ran to completion — aborted
    /// attempts would make the deterministic section scheduler-dependent.
    pub fn record_census(&self, delta: &CensusCounters) {
        if let Some(inner) = &self.inner {
            let shard = inner.shard();
            shard
                .counters
                .add(Metric::SubgraphsEnumerated, delta.subgraphs);
            shard
                .counters
                .add(Metric::FrontierPushes, delta.frontier_pushes);
            shard
                .counters
                .add(Metric::GroupingFastPathHits, delta.grouping_fast_path);
            shard
                .counters
                .add(Metric::GroupingFallbackRecords, delta.grouping_fallback);
            shard.counters.add(Metric::DmaxSkips, delta.dmax_skips);
            shard
                .counters
                .add(Metric::HashCollisions, delta.hash_collisions);
            shard
                .frontier_peak
                .fetch_max(delta.frontier_peak, Ordering::Relaxed);
        }
    }

    /// Observes one root's total subgraph count in the deterministic
    /// per-root size histogram. Called once per root (at the whole-census
    /// flush, or at the merge point of a split root).
    pub fn observe_root_subgraphs(&self, total: u64) {
        if let Some(inner) = &self.inner {
            inner.shard().root_subgraphs.observe(total);
        }
    }

    /// Merges a detached [`CounterSet`] (e.g. the steal pool's) into the
    /// registry.
    pub fn merge_counters(&self, set: &CounterSet) {
        if let Some(inner) = &self.inner {
            set.merge_into(&inner.shard().counters);
        }
    }

    /// Starts a per-root timer. `None` when disabled, so the disabled path
    /// never reads the clock.
    pub fn root_timer(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Records a per-root span (and its duration histogram sample) from a
    /// timer produced by [`Obs::root_timer`]. `tid` is the worker ordinal,
    /// shown as the thread lane in the Chrome trace.
    pub fn record_root(&self, root: u32, tid: u64, started: Option<Instant>) {
        if let (Some(inner), Some(t0)) = (&self.inner, started) {
            let dur_us = t0.elapsed().as_micros() as u64;
            inner.shard().root_micros.observe(dur_us);
            lock(&inner.trace).push(SpanRecord {
                kind: SpanKind::Root(root),
                start_us: inner.micros_since_epoch(t0),
                dur_us,
                tid,
            });
        }
    }

    /// Runs `f` inside a named phase span (load / extract / feature-matrix
    /// / eval). When disabled this is exactly `f()`.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let t0 = Instant::now();
                let result = f();
                lock(&inner.phases).push(SpanRecord {
                    kind: SpanKind::Phase(name),
                    start_us: inner.micros_since_epoch(t0),
                    dur_us: t0.elapsed().as_micros() as u64,
                    tid: 0,
                });
                result
            }
        }
    }

    /// The top-`k` slowest roots as `(root, total_micros)`, slowest first.
    /// Spans of one root (shards of a split hub) are summed. Only the
    /// spans still in the ring are considered.
    pub fn slowest_roots(&self, k: usize) -> Vec<(u32, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut by_root: HashMap<u32, u64> = HashMap::new();
        for span in &lock(&inner.trace).spans {
            if let SpanKind::Root(root) = span.kind {
                *by_root.entry(root).or_insert(0) += span.dur_us;
            }
        }
        let mut roots: Vec<(u32, u64)> = by_root.into_iter().collect();
        // Slowest first; ties broken by root id for a stable report.
        roots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        roots.truncate(k);
        roots
    }

    /// Merges every shard into a point-in-time [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        for shard in &inner.shards {
            for metric in Metric::ALL {
                snap.values[metric as usize] += shard.counters.get(metric);
            }
            snap.frontier_peak = snap
                .frontier_peak
                .max(shard.frontier_peak.load(Ordering::Relaxed));
            shard.root_subgraphs.add_to(&mut snap.root_subgraphs_log2);
            shard.root_micros.add_to(&mut snap.root_micros_log2);
        }
        for span in lock(&inner.phases).iter() {
            if let SpanKind::Phase(name) = span.kind {
                snap.phase_us.push((name, span.dur_us));
            }
        }
        snap.slowest_roots = self.slowest_roots(SLOWEST_ROOTS);
        snap.trace_spans_dropped = lock(&inner.trace).dropped;
        snap
    }

    /// Exports every captured span as Chrome trace format — an object with
    /// a `traceEvents` array of complete (`"ph":"X"`) events, loadable in
    /// `chrome://tracing` and Perfetto. Timestamps and durations are in
    /// microseconds since the handle was created.
    pub fn trace_json(&self) -> String {
        let mut events = JsonArray::new();
        if let Some(inner) = &self.inner {
            for span in lock(&inner.phases).iter() {
                events.push_raw(&span_event(span));
            }
            for span in lock(&inner.trace).spans.iter() {
                events.push_raw(&span_event(span));
            }
        }
        JsonObject::new()
            .raw("traceEvents", &events.finish())
            .str("displayTimeUnit", "ms")
            .finish()
    }
}

/// Renders one span as a Chrome-trace complete event.
fn span_event(span: &SpanRecord) -> String {
    let (name, cat) = match span.kind {
        SpanKind::Phase(name) => (name.to_string(), "phase"),
        SpanKind::Root(root) => (format!("root {root}"), "root"),
    };
    JsonObject::new()
        .str("name", &name)
        .str("cat", cat)
        .str("ph", "X")
        .uint("ts", span.start_us)
        .uint("dur", span.dur_us)
        .uint("pid", 1)
        .uint("tid", span.tid)
        .finish()
}

/// A point-in-time merge of the registry plus the duration reports.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    values: [u64; Metric::COUNT],
    /// Frontier-length high-water mark (max across shards).
    pub frontier_peak: u64,
    /// Log2 histogram of per-root subgraph totals (deterministic).
    pub root_subgraphs_log2: [u64; HIST_BUCKETS],
    /// Log2 histogram of per-root census wall-clock in µs (runtime).
    pub root_micros_log2: [u64; HIST_BUCKETS],
    /// Completed phase spans as `(name, micros)`, in completion order.
    pub phase_us: Vec<(&'static str, u64)>,
    /// Top-K slowest roots as `(root, total_micros)`, slowest first.
    pub slowest_roots: Vec<(u32, u64)>,
    /// Root spans evicted from the ring buffer.
    pub trace_spans_dropped: u64,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            values: [0; Metric::COUNT],
            frontier_peak: 0,
            root_subgraphs_log2: [0; HIST_BUCKETS],
            root_micros_log2: [0; HIST_BUCKETS],
            phase_us: Vec::new(),
            slowest_roots: Vec::new(),
            trace_spans_dropped: 0,
        }
    }
}

impl MetricsSnapshot {
    /// The merged value of one metric.
    pub fn get(&self, metric: Metric) -> u64 {
        self.values[metric as usize]
    }

    /// The scheduler-counter view, reproducing `results/stealing_bench.md`
    /// numbers from a snapshot.
    pub fn steal_stats(&self) -> StealStats {
        StealStats {
            tasks: self.get(Metric::StealTasks),
            steals: self.get(Metric::StealSteals),
            parks: self.get(Metric::StealParks),
            splits: self.get(Metric::StealSplits),
        }
    }

    /// The deterministic `counters` section as a JSON object — the part of
    /// the snapshot that is bit-identical across schedulers and thread
    /// counts, used by determinism tests and `hsgf obs-validate --against`.
    pub fn deterministic_json(&self) -> String {
        let mut obj = JsonObject::new();
        for metric in Metric::ALL {
            if metric.deterministic() {
                obj = obj.uint(metric.name(), self.get(metric));
            }
        }
        let mut hist = JsonArray::new();
        for &bucket in &self.root_subgraphs_log2 {
            hist.push_uint(bucket);
        }
        obj.uint("frontier_peak", self.frontier_peak)
            .raw("root_subgraphs_log2", &hist.finish())
            .finish()
    }

    /// The full snapshot as JSON: `{"version", "counters", "runtime",
    /// "durations"}` (see DESIGN.md §8 for the schema).
    pub fn to_json(&self) -> String {
        let mut runtime = JsonObject::new();
        for metric in Metric::ALL {
            if !metric.deterministic() {
                runtime = runtime.uint(metric.name(), self.get(metric));
            }
        }
        let mut micros_hist = JsonArray::new();
        for &bucket in &self.root_micros_log2 {
            micros_hist.push_uint(bucket);
        }
        let runtime = runtime
            .raw("root_micros_log2", &micros_hist.finish())
            .uint("trace_spans_dropped", self.trace_spans_dropped)
            .finish();

        let mut phases = JsonObject::new();
        for &(name, us) in &self.phase_us {
            phases = phases.uint(name, us);
        }
        let mut slowest = JsonArray::new();
        for &(root, us) in &self.slowest_roots {
            slowest.push_raw(
                &JsonObject::new()
                    .uint("root", root as u64)
                    .uint("micros", us)
                    .finish(),
            );
        }
        let durations = JsonObject::new()
            .raw("phases", &phases.finish())
            .raw("slowest_roots", &slowest.finish())
            .finish();

        JsonObject::new()
            .uint("version", 1)
            .raw("counters", &self.deterministic_json())
            .raw("runtime", &runtime)
            .raw("durations", &durations)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Schema validation — the small in-repo checker `hsgf obs-validate` and
// scripts/ci.sh run over --metrics-out / --trace-out files.
// ---------------------------------------------------------------------------

fn expect_object<'a>(
    value: &'a JsonValue,
    what: &str,
) -> Result<&'a [(String, JsonValue)], String> {
    value
        .as_object()
        .ok_or_else(|| format!("{what}: expected a JSON object"))
}

fn expect_count(section: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    let v = section
        .get(key)
        .ok_or_else(|| format!("{what}: missing key {key:?}"))?;
    let n = v
        .as_f64()
        .ok_or_else(|| format!("{what}.{key}: expected a number"))?;
    if !(n.fract() == 0.0 && n >= 0.0) {
        return Err(format!(
            "{what}.{key}: expected a non-negative integer, got {n}"
        ));
    }
    Ok(n as u64)
}

fn expect_hist(section: &JsonValue, key: &str, what: &str) -> Result<(), String> {
    let arr = section
        .get(key)
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{what}: missing array {key:?}"))?;
    if arr.len() != HIST_BUCKETS {
        return Err(format!(
            "{what}.{key}: expected {HIST_BUCKETS} buckets, got {}",
            arr.len()
        ));
    }
    if arr.iter().any(|v| v.as_f64().is_none()) {
        return Err(format!("{what}.{key}: non-numeric bucket"));
    }
    Ok(())
}

/// Validates a `--metrics-out` document against the snapshot schema
/// (version, every counter key in both sections, 64-bucket histograms, a
/// well-formed `durations` section). Returns the first problem found.
pub fn validate_metrics_json(value: &JsonValue) -> Result<(), String> {
    expect_object(value, "metrics")?;
    let version = expect_count(value, "version", "metrics")?;
    if version != 1 {
        return Err(format!("metrics.version: expected 1, got {version}"));
    }
    let counters = value
        .get("counters")
        .ok_or("metrics: missing \"counters\" section")?;
    expect_object(counters, "counters")?;
    let runtime = value
        .get("runtime")
        .ok_or("metrics: missing \"runtime\" section")?;
    expect_object(runtime, "runtime")?;
    for metric in Metric::ALL {
        let (section, what) = if metric.deterministic() {
            (counters, "counters")
        } else {
            (runtime, "runtime")
        };
        expect_count(section, metric.name(), what)?;
    }
    expect_count(counters, "frontier_peak", "counters")?;
    expect_hist(counters, "root_subgraphs_log2", "counters")?;
    expect_hist(runtime, "root_micros_log2", "runtime")?;
    expect_count(runtime, "trace_spans_dropped", "runtime")?;
    let durations = value
        .get("durations")
        .ok_or("metrics: missing \"durations\" section")?;
    expect_object(
        durations
            .get("phases")
            .ok_or("durations: missing \"phases\"")?,
        "durations.phases",
    )?;
    let slowest = durations
        .get("slowest_roots")
        .and_then(|v| v.as_array())
        .ok_or("durations: missing array \"slowest_roots\"")?;
    for entry in slowest {
        expect_count(entry, "root", "slowest_roots entry")?;
        expect_count(entry, "micros", "slowest_roots entry")?;
    }
    Ok(())
}

/// Validates a `--trace-out` document as Chrome trace format: an object
/// with a `traceEvents` array of complete events carrying the fields the
/// trace viewer requires.
pub fn validate_trace_json(value: &JsonValue) -> Result<(), String> {
    expect_object(value, "trace")?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("trace: missing array \"traceEvents\"")?;
    for (i, event) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        expect_object(event, &what)?;
        for key in ["name", "ph", "cat"] {
            if event.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("{what}: missing string {key:?}"));
            }
        }
        if event.get("ph").and_then(|v| v.as_str()) != Some("X") {
            return Err(format!("{what}: expected a complete event (ph == \"X\")"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            expect_count(event, key, &what)?;
        }
    }
    Ok(())
}

/// Compares the deterministic `counters` sections of two metrics
/// documents, listing every differing key. Used by
/// `hsgf obs-validate --against` and the CI cursor-vs-stealing diff.
pub fn compare_deterministic_counters(a: &JsonValue, b: &JsonValue) -> Result<(), String> {
    let ca = a
        .get("counters")
        .ok_or("left metrics: missing \"counters\"")?;
    let cb = b
        .get("counters")
        .ok_or("right metrics: missing \"counters\"")?;
    let mut diffs = Vec::new();
    for metric in Metric::ALL.iter().filter(|m| m.deterministic()) {
        let va = expect_count(ca, metric.name(), "left counters")?;
        let vb = expect_count(cb, metric.name(), "right counters")?;
        if va != vb {
            diffs.push(format!("{}: {va} != {vb}", metric.name()));
        }
    }
    let pa = expect_count(ca, "frontier_peak", "left counters")?;
    let pb = expect_count(cb, "frontier_peak", "right counters")?;
    if pa != pb {
        diffs.push(format!("frontier_peak: {pa} != {pb}"));
    }
    let ha = ca.get("root_subgraphs_log2").and_then(|v| v.as_array());
    let hb = cb.get("root_subgraphs_log2").and_then(|v| v.as_array());
    if ha.map(render_hist) != hb.map(render_hist) {
        diffs.push("root_subgraphs_log2: histograms differ".to_string());
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "deterministic counters differ: {}",
            diffs.join(", ")
        ))
    }
}

fn render_hist(buckets: &Vec<JsonValue>) -> Vec<String> {
    buckets
        .iter()
        .map(|v| v.as_f64().map(|n| n.to_string()).unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        obs.incr(Metric::StealTasks);
        obs.record_census(&CensusCounters {
            subgraphs: 9,
            ..CensusCounters::default()
        });
        obs.observe_root_subgraphs(100);
        obs.record_root(1, 0, obs.root_timer());
        assert!(!obs.is_enabled());
        assert!(obs.root_timer().is_none());
        let snap = obs.snapshot();
        assert_eq!(snap.get(Metric::SubgraphsEnumerated), 0);
        assert_eq!(snap.get(Metric::StealTasks), 0);
        assert_eq!(snap.root_subgraphs_log2.iter().sum::<u64>(), 0);
    }

    #[test]
    fn counters_merge_across_threads() {
        let obs = Obs::enabled();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        obs.incr(Metric::FrontierPushes);
                    }
                    obs.add(Metric::SubgraphsEnumerated, 5);
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.get(Metric::FrontierPushes), 8000);
        assert_eq!(snap.get(Metric::SubgraphsEnumerated), 40);
    }

    #[test]
    fn census_delta_flush_and_peak_gauge() {
        let obs = Obs::enabled();
        obs.record_census(&CensusCounters {
            subgraphs: 10,
            frontier_pushes: 4,
            frontier_peak: 7,
            grouping_fast_path: 3,
            grouping_fallback: 2,
            dmax_skips: 1,
            hash_collisions: 0,
        });
        obs.record_census(&CensusCounters {
            subgraphs: 1,
            frontier_peak: 5,
            ..CensusCounters::default()
        });
        let snap = obs.snapshot();
        assert_eq!(snap.get(Metric::SubgraphsEnumerated), 11);
        assert_eq!(snap.get(Metric::GroupingFastPathHits), 3);
        assert_eq!(snap.frontier_peak, 7, "gauge merges by max");
    }

    #[test]
    fn log2_buckets_are_correct() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn census_counters_absorb_sums_and_maxes() {
        let mut a = CensusCounters {
            subgraphs: 1,
            frontier_pushes: 2,
            frontier_peak: 9,
            grouping_fast_path: 1,
            grouping_fallback: 1,
            dmax_skips: 0,
            hash_collisions: 1,
        };
        a.absorb(&CensusCounters {
            subgraphs: 10,
            frontier_pushes: 1,
            frontier_peak: 4,
            grouping_fast_path: 0,
            grouping_fallback: 2,
            dmax_skips: 3,
            hash_collisions: 0,
        });
        assert_eq!(a.subgraphs, 11);
        assert_eq!(a.frontier_peak, 9);
        assert_eq!(a.dmax_skips, 3);
        assert_eq!(a.hash_collisions, 1);
    }

    #[test]
    fn steal_stats_reproducible_from_counter_set_and_snapshot() {
        let set = CounterSet::new();
        set.add(Metric::StealTasks, 785);
        set.add(Metric::StealSteals, 43);
        set.add(Metric::StealParks, 7);
        set.add(Metric::StealSplits, 1);
        let stats = set.steal_stats();
        assert_eq!(stats.to_string(), "785 tasks, 43 steals, 7 parks, 1 splits");

        let obs = Obs::enabled();
        obs.merge_counters(&set);
        assert_eq!(obs.snapshot().steal_stats(), stats);
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let obs = Obs::with_trace_capacity(4);
        for root in 0..10u32 {
            obs.record_root(root, 0, obs.root_timer());
        }
        let snap = obs.snapshot();
        assert_eq!(snap.trace_spans_dropped, 6);
        // Only the 4 newest roots remain in the slowest report.
        assert_eq!(snap.slowest_roots.len(), 4);
        for (root, _) in &snap.slowest_roots {
            assert!(*root >= 6, "old span survived the ring: root {root}");
        }
    }

    #[test]
    fn slowest_roots_aggregates_shard_spans() {
        let obs = Obs::enabled();
        let t = Instant::now();
        // Two spans for root 3, one for root 5; durations are near-zero
        // but the aggregation and ordering logic is what matters.
        obs.record_root(3, 0, Some(t));
        obs.record_root(3, 1, Some(t));
        obs.record_root(5, 0, Some(t));
        let slowest = obs.slowest_roots(10);
        assert_eq!(slowest.len(), 2);
        let roots: Vec<u32> = slowest.iter().map(|(r, _)| *r).collect();
        assert!(roots.contains(&3) && roots.contains(&5));
    }

    #[test]
    fn snapshot_json_passes_own_schema_checker() {
        let obs = Obs::enabled();
        obs.phase("load", || {});
        obs.record_census(&CensusCounters {
            subgraphs: 123,
            frontier_pushes: 45,
            frontier_peak: 6,
            grouping_fast_path: 70,
            grouping_fallback: 53,
            dmax_skips: 2,
            hash_collisions: 0,
        });
        obs.observe_root_subgraphs(123);
        obs.record_root(17, 2, obs.root_timer());
        obs.incr(Metric::BudgetPolls);
        obs.incr(Metric::RootsExact);

        let metrics = parse(&obs.snapshot().to_json()).expect("metrics JSON parses");
        validate_metrics_json(&metrics).expect("metrics JSON validates");

        let trace = parse(&obs.trace_json()).expect("trace JSON parses");
        validate_trace_json(&trace).expect("trace JSON validates");
    }

    #[test]
    fn deterministic_comparison_flags_mismatches() {
        let a = Obs::enabled();
        let b = Obs::enabled();
        a.incr(Metric::RootsExact);
        b.incr(Metric::RootsExact);
        let ja = parse(&a.snapshot().to_json()).unwrap();
        let jb = parse(&b.snapshot().to_json()).unwrap();
        compare_deterministic_counters(&ja, &jb).expect("identical runs compare equal");

        b.add(Metric::SubgraphsEnumerated, 1);
        let jb = parse(&b.snapshot().to_json()).unwrap();
        let err = compare_deterministic_counters(&ja, &jb).unwrap_err();
        assert!(err.contains("subgraphs_enumerated"), "{err}");
    }

    #[test]
    fn runtime_metrics_do_not_leak_into_deterministic_section() {
        let obs = Obs::enabled();
        obs.add(Metric::StealTasks, 99);
        obs.add(Metric::BudgetPolls, 7);
        let det = obs.snapshot().deterministic_json();
        assert!(!det.contains("steal_tasks"));
        assert!(!det.contains("budget_polls"));
        let parsed = parse(&det).unwrap();
        assert_eq!(
            parsed.get("subgraphs_enumerated").and_then(|v| v.as_f64()),
            Some(0.0)
        );
    }

    #[test]
    fn cache_metrics_stay_out_of_the_deterministic_section() {
        // Hit/miss/evict counts depend on what earlier runs populated and
        // fingerprint time is wall-clock: all four cache metrics must land
        // in the runtime section, never in the counters one compared by
        // `obs-validate --against` and `scripts/bench_diff.sh`.
        for metric in [
            Metric::CacheHits,
            Metric::CacheMisses,
            Metric::CacheEvictions,
            Metric::CacheFingerprintMicros,
        ] {
            assert!(!metric.deterministic(), "{} leaked", metric.name());
        }
        let obs = Obs::enabled();
        obs.add(Metric::CacheHits, 12);
        obs.add(Metric::CacheMisses, 3);
        obs.add(Metric::CacheEvictions, 1);
        obs.add(Metric::CacheFingerprintMicros, 450);
        let det = obs.snapshot().deterministic_json();
        assert!(!det.contains("cache_"), "{det}");
        let full = parse(&obs.snapshot().to_json()).unwrap();
        validate_metrics_json(&full).unwrap();
        let runtime = full.get("runtime").expect("runtime section");
        assert_eq!(
            runtime.get("cache_hits").and_then(|v| v.as_f64()),
            Some(12.0)
        );
    }

    #[test]
    fn journal_and_retry_metrics_stay_out_of_the_deterministic_section() {
        // How far a crashed run got (appends/replays/truncations) and how
        // many transient retries fired are scheduling- and history-
        // dependent, so determinism comparisons must ignore them — same
        // contract as the cache counters.
        for metric in [
            Metric::JournalAppends,
            Metric::JournalReplays,
            Metric::JournalTruncatedTails,
            Metric::RetryAttempts,
        ] {
            assert!(!metric.deterministic(), "{} leaked", metric.name());
        }
        let obs = Obs::enabled();
        obs.add(Metric::JournalAppends, 40);
        obs.add(Metric::JournalReplays, 38);
        obs.add(Metric::JournalTruncatedTails, 1);
        obs.add(Metric::RetryAttempts, 2);
        let det = obs.snapshot().deterministic_json();
        assert!(
            !det.contains("journal_") && !det.contains("retry_"),
            "{det}"
        );
        let full = parse(&obs.snapshot().to_json()).unwrap();
        validate_metrics_json(&full).unwrap();
        let runtime = full.get("runtime").expect("runtime section");
        assert_eq!(
            runtime.get("journal_replays").and_then(|v| v.as_f64()),
            Some(38.0)
        );
    }

    #[test]
    fn metric_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for metric in Metric::ALL {
            assert!(seen.insert(metric.name()), "duplicate {}", metric.name());
        }
        assert_eq!(seen.len(), Metric::COUNT);
    }
}
