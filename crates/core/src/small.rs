//! Small labelled graphs with exact canonical forms.
//!
//! The census never needs exact isomorphism — that is the point of the
//! encoding — but *validating* the encoding does (paper §3.1 derives the
//! collision bounds "by an enumeration of all possible non-isomorphic
//! labelled graphs with a pairwise check against the encoding"). This module
//! provides the reference machinery: a tiny adjacency-matrix graph type, a
//! brute-force canonical form, and an exact isomorphism test, all valid for
//! graphs of at most [`MAX_SMALL_NODES`] nodes.

use hsgf_graph::Label;

use crate::sequence::Encoding;

/// Upper bound on the node count supported by the brute-force canonical
/// form. A connected subgraph with `emax ≤ 8` edges has at most 9 nodes.
pub const MAX_SMALL_NODES: usize = 9;

/// A small labelled undirected graph stored as an adjacency bit matrix.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmallGraph {
    labels: Vec<u8>,
    /// Upper-triangular adjacency bits: bit for pair `(i, j)`, `i < j`, at
    /// position `tri_index(i, j, n)`.
    adj: u64,
}

#[inline]
fn tri_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

impl SmallGraph {
    /// Creates a graph from labels and an edge list over local indices.
    ///
    /// # Panics
    /// If the node count exceeds [`MAX_SMALL_NODES`], an edge references an
    /// out-of-range node, or an edge is a self loop.
    pub fn new(labels: Vec<u8>, edges: &[(u8, u8)]) -> Self {
        let n = labels.len();
        assert!(
            n <= MAX_SMALL_NODES,
            "SmallGraph supports at most {MAX_SMALL_NODES} nodes"
        );
        let mut adj = 0u64;
        for &(u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u != v, "self loops are not allowed");
            assert!(u < n && v < n, "edge endpoint out of range");
            let (i, j) = if u < v { (u, v) } else { (v, u) };
            adj |= 1 << tri_index(i, j, n);
        }
        SmallGraph { labels, adj }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.count_ones() as usize
    }

    /// Node labels in local order.
    #[inline]
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Whether nodes `i` and `j` are adjacent.
    #[inline]
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.adj & (1 << tri_index(i, j, self.node_count())) != 0
    }

    /// The edge list as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(u8, u8)> {
        let n = self.node_count();
        let mut out = Vec::with_capacity(self.edge_count());
        for i in 0..n {
            for j in (i + 1)..n {
                if self.adj & (1 << tri_index(i, j, n)) != 0 {
                    out.push((i as u8, j as u8));
                }
            }
        }
        out
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        (0..self.node_count())
            .filter(|&j| self.has_edge(i, j))
            .count()
    }

    /// Whether the graph is connected (single-node graphs are connected;
    /// the empty graph is not).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        let mut seen = 1u16; // bit per node, start from node 0
        let mut frontier = vec![0usize];
        while let Some(u) = frontier.pop() {
            for v in 0..n {
                if seen & (1 << v) == 0 && self.has_edge(u, v) {
                    seen |= 1 << v;
                    frontier.push(v);
                }
            }
        }
        seen.count_ones() as usize == n
    }

    /// Applies a node permutation: node `i` of the result is node
    /// `perm[i]` of `self`.
    pub fn permuted(&self, perm: &[usize]) -> SmallGraph {
        let n = self.node_count();
        debug_assert_eq!(perm.len(), n);
        let labels = perm.iter().map(|&p| self.labels[p]).collect();
        let mut adj = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if self.has_edge(perm[i], perm[j]) {
                    adj |= 1 << tri_index(i, j, n);
                }
            }
        }
        SmallGraph { labels, adj }
    }

    /// The canonical form of this graph. Two small graphs are isomorphic
    /// iff their canonical forms are equal.
    ///
    /// Defined as the permutation minimizing the interleaved key
    /// `(λ_0, λ_1, a_{01}, λ_2, a_{02}, a_{12}, λ_3, …)`; among permutations
    /// the label sequence is forced to the sorted label multiset, so the
    /// search only explores label-respecting orders, with branch-and-bound
    /// pruning on the adjacency bits. Exact for all `n ≤ MAX_SMALL_NODES`.
    pub fn canonical(&self) -> SmallGraph {
        let n = self.node_count();
        if n <= 1 {
            return self.clone();
        }
        let mut sorted_idx: Vec<usize> = (0..n).collect();
        sorted_idx.sort_by_key(|&i| self.labels[i]);
        let sorted_labels: Vec<u8> = sorted_idx.iter().map(|&i| self.labels[i]).collect();
        let mut search = CanonSearch {
            graph: self,
            sorted_labels,
            used: vec![false; n],
            perm: Vec::with_capacity(n),
            key: Vec::with_capacity(n * (n - 1) / 2),
            best_key: Vec::new(),
            best_perm: Vec::new(),
        };
        search.run(true);
        self.permuted(&search.best_perm)
    }

    /// Exact isomorphism test via canonical forms.
    pub fn is_isomorphic(&self, other: &SmallGraph) -> bool {
        if self.node_count() != other.node_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        let mut a: Vec<u8> = self.labels.clone();
        let mut b: Vec<u8> = other.labels.clone();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return false;
        }
        self.canonical() == other.canonical()
    }

    /// The characteristic-sequence encoding of this graph over an alphabet
    /// of `label_count` labels.
    pub fn encoding(&self, label_count: usize) -> Encoding {
        let labels: Vec<Label> = self.labels.iter().map(|&l| Label::new(l)).collect();
        Encoding::of_subgraph(label_count, &labels, &self.edges())
    }
}

/// Branch-and-bound search for the minimal label-respecting permutation.
struct CanonSearch<'g> {
    graph: &'g SmallGraph,
    sorted_labels: Vec<u8>,
    used: Vec<bool>,
    perm: Vec<usize>,
    /// Interleaved adjacency key of the current partial permutation
    /// (labels are identical across candidates and omitted).
    key: Vec<u8>,
    best_key: Vec<u8>,
    best_perm: Vec<usize>,
}

impl CanonSearch<'_> {
    fn run(&mut self, _tied: bool) {
        let n = self.sorted_labels.len();
        let p = self.perm.len();
        if p == n {
            if self.best_perm.is_empty() || self.key < self.best_key {
                self.best_key = self.key.clone();
                self.best_perm = self.perm.clone();
            }
            return;
        }
        for u in 0..n {
            if self.used[u] || self.graph.labels[u] != self.sorted_labels[p] {
                continue;
            }
            self.used[u] = true;
            self.perm.push(u);
            let key_mark = self.key.len();
            for q in 0..p {
                let bit = self.graph.has_edge(self.perm[q], u) as u8;
                self.key.push(bit);
            }
            // Prune against the *current* best by comparing the full prefix
            // from scratch: the best key may have changed since an ancestor
            // frame compared its prefix, so incremental tie-tracking across
            // frames would be stale. Keys are ≤ n(n-1)/2 bytes, so the
            // re-comparison is cheap.
            let keep = self.best_perm.is_empty()
                || self.key.as_slice() <= &self.best_key[..self.key.len()];
            if keep {
                self.run(true);
            }
            self.key.truncate(key_mark);
            self.perm.pop();
            self.used[u] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_index_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(seen.insert(tri_index(i, j, n)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert!(seen.iter().all(|&x| x < n * (n - 1) / 2));
    }

    #[test]
    fn connectivity() {
        assert!(SmallGraph::new(vec![0], &[]).is_connected());
        assert!(SmallGraph::new(vec![0, 0], &[(0, 1)]).is_connected());
        assert!(!SmallGraph::new(vec![0, 0], &[]).is_connected());
        assert!(!SmallGraph::new(vec![0, 0, 0], &[(0, 1)]).is_connected());
        assert!(SmallGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2)]).is_connected());
    }

    #[test]
    fn isomorphic_relabelings_match() {
        // Path a-b-a in two different node orders.
        let g1 = SmallGraph::new(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let g2 = SmallGraph::new(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        assert!(g1.is_isomorphic(&g2));
        assert_eq!(g1.canonical(), g2.canonical());
    }

    #[test]
    fn label_placement_breaks_isomorphism() {
        // Triangle with labels (0,0,1) vs path with labels (0,0,1).
        let tri = SmallGraph::new(vec![0, 0, 1], &[(0, 1), (1, 2), (0, 2)]);
        let path = SmallGraph::new(vec![0, 0, 1], &[(0, 1), (1, 2)]);
        assert!(!tri.is_isomorphic(&path));
        // Star with centre label 1 vs star with centre label 0.
        let s1 = SmallGraph::new(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let s2 = SmallGraph::new(vec![0, 1, 1], &[(0, 1), (0, 2)]);
        assert!(!s1.is_isomorphic(&s2));
    }

    #[test]
    fn canonical_is_idempotent_and_isomorphic_to_source() {
        let g = SmallGraph::new(vec![2, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let c = g.canonical();
        assert!(g.is_isomorphic(&c));
        assert_eq!(c.canonical(), c);
        // Labels of a canonical graph are sorted ascending.
        assert!(c.labels().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn non_isomorphic_same_degree_sequence() {
        // Both C5 + one chord variants are the same graph up to rotation —
        // a sanity check that canonicalization sees through relabelling.
        let a = SmallGraph::new(
            vec![0; 5],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)],
        );
        let b = SmallGraph::new(
            vec![0; 5],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
        );
        assert!(a.is_isomorphic(&b));
        // A genuinely non-isomorphic pair with identical degree sequences
        // [1,2,2,2,2,3]: C5 with a pendant leaf vs C4 with a 2-path tail.
        let c5_pendant = SmallGraph::new(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5)],
        );
        let c4_tail = SmallGraph::new(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5)],
        );
        let da: Vec<usize> = (0..6).map(|i| c5_pendant.degree(i)).collect();
        let db: Vec<usize> = (0..6).map(|i| c4_tail.degree(i)).collect();
        let (mut da, mut db) = (da, db);
        da.sort_unstable();
        db.sort_unstable();
        assert_eq!(da, db, "fixture requires equal degree sequences");
        assert!(!c5_pendant.is_isomorphic(&c4_tail));
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = SmallGraph::new(vec![0, 1, 2], &[(0, 1), (1, 2)]);
        let p = g.permuted(&[2, 0, 1]);
        assert_eq!(p.labels(), &[2, 0, 1]);
        assert_eq!(p.edge_count(), 2);
        assert!(g.is_isomorphic(&p));
    }

    #[test]
    fn encoding_agrees_with_sequence_module() {
        let g = SmallGraph::new(vec![2, 1, 2], &[(0, 1), (1, 2)]);
        let enc = g.encoding(3);
        assert_eq!(enc.node_count(), 3);
        assert_eq!(enc.edge_count(), 2);
    }
}
