//! Heterogeneous subgraph features for information networks.
//!
//! This crate implements the primary contribution of Spitz et al.,
//! *Heterogeneous Subgraph Features for Information Networks*
//! (GRADES-NDA'18): node features built from a census of the small labelled
//! subgraphs rooted at each node, identified by a pseudo-canonical
//! *characteristic-sequence* encoding instead of exact isomorphism tests.
//!
//! # Quick tour
//!
//! ```
//! use hsgf_graph::GraphBuilder;
//! use hsgf_core::{CensusConfig, CensusEngine};
//!
//! // A toy publication network: an institution with two authors sharing
//! // one paper.
//! let mut b = GraphBuilder::with_label_names(["inst", "author", "paper"]).unwrap();
//! let i = b.add_node("inst").unwrap();
//! let a1 = b.add_node("author").unwrap();
//! let a2 = b.add_node("author").unwrap();
//! let p = b.add_node("paper").unwrap();
//! for (u, v) in [(i, a1), (i, a2), (a1, p), (a2, p)] {
//!     b.add_edge(u, v).unwrap();
//! }
//! let graph = b.build();
//!
//! // Count all subgraphs around the institution with at most 3 edges.
//! let engine = CensusEngine::new(&graph, CensusConfig::default().with_emax(3)).unwrap();
//! let mut scratch = engine.make_scratch();
//! let census = engine.census_encodings(i, &mut scratch).unwrap();
//! assert!(census.counts.values().sum::<u64>() > 0);
//! ```
//!
//! # Modules
//!
//! * [`sequence`] — the characteristic-sequence [`Encoding`] (paper §3.1).
//! * [`hash`] — the per-label rolling hash with incremental updates
//!   (paper §3.2 "Hashing Optimization").
//! * [`census`] — the rooted subgraph census engine with the heterogeneous
//!   grouping and maximum-degree heuristics (paper §3.2).
//! * [`features`] — assembly of per-node censuses into a shared sparse
//!   feature space for downstream learning (paper §3.2 "Feature
//!   Definition").
//! * [`parallel`] — by-node parallel extraction (paper §3.2 "Parallel Space
//!   Complexity").
//! * [`steal`] — the work-stealing scheduler (per-worker deques, hub-root
//!   splitting) selectable via [`SchedulerKind`] wherever extraction takes
//!   a thread count.
//! * [`budget`] — per-root resource budgets (subgraph / frontier / deadline)
//!   and cooperative cancellation for the census.
//! * [`supervisor`] — fault-tolerant extraction: panic isolation per root, a
//!   deterministic degradation ladder (tightened `dmax`, then reduced
//!   `emax`), and per-root outcome reporting.
//! * [`cache`] — the sharded per-root census cache keyed by neighbourhood
//!   content fingerprints; entries self-invalidate under graph edits.
//! * [`journal`] — the crash-safe write-ahead journal of completed root
//!   outcomes; a killed extraction resumes by replaying durable records
//!   bit-identically and re-extracting only the remainder.
//! * [`small`] / [`enumerate`] — exact isomorphism and exhaustive
//!   enumeration machinery used to *validate* the encoding and reproduce
//!   the collision bounds of §3.1 (experiment E1).
//! * [`reference`] — a brute-force census oracle for tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod census;
pub mod enumerate;
pub mod export;
pub mod features;
pub mod hash;
pub mod journal;
pub mod json;
pub mod obs;
pub mod parallel;
pub mod prop;
pub mod reference;
pub mod sampling;
pub mod sequence;
pub mod small;
pub mod steal;
pub mod supervisor;

pub use budget::{BudgetKind, CancelToken, CensusBudget, RetryPolicy, SharedBudget};
pub use cache::{
    config_fingerprint, policy_fingerprint, CacheEntry, CacheKey, CacheStats, CachedOutcome,
    CensusCache,
};
pub use census::{
    CensusConfig, CensusEngine, CensusError, CensusScratch, CensusSink, CountingSink,
    EncodedCensus, SubgraphView, MAX_EMAX,
};
pub use enumerate::{
    collision_report, enumerate_connected, enumerate_connected_budgeted, CollisionReport,
    EnumerationConfig, EnumerationOutcome, EnumerationStatus,
};
pub use features::{FeatureMatrix, FeatureSpace};
pub use hash::LabelBases;
pub use journal::{IoFault, IoOp, Journal, JournalHeader, JournaledOutcome, RootRecord};
pub use obs::{CensusCounters, Metric, MetricsSnapshot, Obs};
pub use sequence::Encoding;
pub use small::SmallGraph;
pub use steal::{SchedulerKind, StealStats};
pub use supervisor::{
    ChaosHook, ExtractionPolicy, PartialExtraction, RootOutcome, ScheduledIoChaos, Supervisor,
};
