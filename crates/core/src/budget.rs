//! Resource governance for the census: per-root budgets and cooperative
//! cancellation.
//!
//! The census is exponential in the worst case — the paper introduces the
//! `dmax` heuristic precisely because hub roots explode (Table 3's skewed
//! runtimes). A production extraction cannot let one pathological root hang
//! or exhaust memory for the whole run, so the engine accepts a
//! [`CensusBudget`] limiting what a single root's census may consume:
//!
//! * **subgraphs** — a hard cap on discovered subgraphs (deterministic:
//!   independent of wall clock and thread count);
//! * **frontier** — a cap on the extension-stack length, bounding scratch
//!   growth around extreme hubs;
//! * **deadline** — a cooperative wall-clock cutoff checked periodically
//!   inside the enumeration loop (inherently nondeterministic; prefer the
//!   subgraph cap when reproducibility matters).
//!
//! A [`CancelToken`] provides cooperative cancellation of in-flight work:
//! workers observe it between roots and, via the same periodic check as the
//! deadline, inside a single root's enumeration.
//!
//! Budget exhaustion and cancellation are *clean* aborts: the DFS unwinds
//! its scratch state fully, so the same scratch can immediately serve a
//! retry (possibly under a degraded configuration — see
//! [`crate::supervisor`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hsgf_graph::rng::{derive_seed, Rng};

/// Which budget dimension a census exhausted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The discovered-subgraph cap ([`CensusBudget::max_subgraphs`]).
    Subgraphs,
    /// The extension-stack cap ([`CensusBudget::max_frontier`]).
    Frontier,
    /// The wall-clock deadline ([`CensusBudget::deadline`]).
    Deadline,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Subgraphs => write!(f, "subgraph count"),
            BudgetKind::Frontier => write!(f, "frontier size"),
            BudgetKind::Deadline => write!(f, "deadline"),
        }
    }
}

/// Resource limits for the census of one root. The default is unlimited.
#[derive(Clone, Debug, Default)]
pub struct CensusBudget {
    /// Maximum number of discovered subgraphs (grouped multiplicities
    /// included). `None` disables the cap.
    pub max_subgraphs: Option<u64>,
    /// Maximum extension-stack length, bounding per-root scratch growth.
    /// `None` disables the cap.
    pub max_frontier: Option<usize>,
    /// Cooperative wall-clock cutoff. `None` disables the deadline.
    pub deadline: Option<Instant>,
}

impl CensusBudget {
    /// A budget with no limits (the default).
    pub const fn unlimited() -> Self {
        CensusBudget {
            max_subgraphs: None,
            max_frontier: None,
            deadline: None,
        }
    }

    /// Whether every dimension is unlimited.
    pub fn is_unlimited(&self) -> bool {
        self.max_subgraphs.is_none() && self.max_frontier.is_none() && self.deadline.is_none()
    }

    /// Convenience: set the subgraph cap.
    pub fn with_max_subgraphs(mut self, max: u64) -> Self {
        self.max_subgraphs = Some(max);
        self
    }

    /// Convenience: set the frontier cap.
    pub fn with_max_frontier(mut self, max: usize) -> Self {
        self.max_frontier = Some(max);
        self
    }

    /// Convenience: set a deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Retry discipline for *transiently* failed census attempts (isolated
/// worker panics, wall-clock deadline near-misses). Deterministic failures
/// — subgraph or frontier cap exhaustion — are never retried: re-running
/// them reproduces the identical result, so they go straight to the
/// degrade ladder.
///
/// Backoff is exponential (`backoff_ms << (retry - 1)`) with deterministic
/// jitter drawn from a [`Rng`] stream keyed by `(jitter_seed, root, rung,
/// retry)`, so two runs of the same extraction sleep identically and
/// co-scheduled workers still decorrelate. A global `max_total_retries`
/// cap bounds the whole run's retry spend, so a systemic fault (every root
/// panicking) degenerates into fail-fast rather than a retry storm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts allowed per ladder rung, first try included (min 1).
    pub max_attempts: u32,
    /// Base backoff before retry 1; doubles per further retry. 0 disables
    /// sleeping (tests and purely CPU-bound faults).
    pub backoff_ms: u64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
    /// Run-wide cap on retries across all roots and rungs.
    pub max_total_retries: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
            // "HSGF" ++ "RT"
            jitter_seed: 0x4853_4746_5254,
            max_total_retries: 1024,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (1-based) of `root` on ladder
    /// `rung`: exponential base plus up to 50% deterministic jitter.
    pub fn backoff(&self, root: u32, rung: u32, retry: u32) -> Duration {
        if self.backoff_ms == 0 {
            return Duration::ZERO;
        }
        // Shift saturates well below u64 overflow; 16 doublings of any
        // sane base already exceed practical deadlines.
        let exp = self
            .backoff_ms
            .saturating_mul(1 << retry.saturating_sub(1).min(16));
        let seed = derive_seed(self.jitter_seed, &[root as u64, rung as u64, retry as u64]);
        let jitter = Rng::from_seed(seed).gen_range(0..=exp / 2);
        Duration::from_millis(exp.saturating_add(jitter))
    }
}

/// A shared, cloneable cancellation flag. Cancelling is sticky and
/// observable from every clone; workers poll it cooperatively.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh (uncancelled) token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A subgraph-count budget shared by several census runs — the shards of
/// one split hub root (see [`crate::steal`]). Each shard charges discovered
/// subgraphs against the same atomic counter, so the *total* across shards
/// is capped exactly like a sequential run's: exhaustion depends only on
/// the root's true subgraph count versus the cap, never on how the shards
/// were scheduled. (Which shard *observes* the exhaustion is scheduling-
/// dependent; callers that need the canonical error re-run the root
/// sequentially — see [`crate::supervisor`].)
#[derive(Debug)]
pub struct SharedBudget {
    /// Remaining subgraphs; `u64::MAX` is the unlimited sentinel.
    remaining: AtomicU64,
}

impl SharedBudget {
    /// Creates a shared counter with `max_subgraphs` capacity (`None` for
    /// unlimited).
    pub fn new(max_subgraphs: Option<u64>) -> Self {
        SharedBudget {
            remaining: AtomicU64::new(max_subgraphs.unwrap_or(u64::MAX)),
        }
    }

    /// Atomically charges `multiplicity` subgraphs; returns `false` when
    /// the shared cap cannot cover the charge.
    pub fn try_consume(&self, multiplicity: u64) -> bool {
        let mut current = self.remaining.load(Ordering::Relaxed);
        loop {
            if current == u64::MAX {
                return true; // unlimited
            }
            if current < multiplicity {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                current,
                current - multiplicity,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

/// Deadline/cancellation checks are amortized over this many records so the
/// hot enumeration loop does not read the clock per subgraph.
const CHECK_INTERVAL_MASK: u32 = 0x3FF;

/// Why an enumeration stopped early. Internal to the engine; surfaced as a
/// [`crate::census::CensusError`] by the caller that knows the root.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Stop {
    /// A budget dimension ran out.
    Budget(BudgetKind),
    /// The cancel token fired.
    Cancelled,
}

/// Mutable per-run budget accounting threaded through the DFS.
pub(crate) struct BudgetState<'a> {
    /// Discovered subgraphs still allowed; `u64::MAX` when unlimited.
    remaining: u64,
    /// When set, subgraph accounting routes to this shared counter instead
    /// of `remaining` (the cap spans all shards of one split root).
    shared: Option<&'a SharedBudget>,
    /// Extension-stack cap; `usize::MAX` when unlimited.
    max_frontier: usize,
    deadline: Option<Instant>,
    cancel: Option<&'a CancelToken>,
    /// Record counter for amortized deadline/cancel polling.
    tick: u32,
    /// Polls executed (reported as the `budget_polls` runtime metric).
    polls: u64,
}

impl<'a> BudgetState<'a> {
    pub(crate) fn new(budget: &CensusBudget, cancel: Option<&'a CancelToken>) -> Self {
        BudgetState {
            remaining: budget.max_subgraphs.unwrap_or(u64::MAX),
            shared: None,
            max_frontier: budget.max_frontier.unwrap_or(usize::MAX),
            deadline: budget.deadline,
            cancel,
            tick: 0,
            polls: 0,
        }
    }

    /// Routes subgraph accounting to `shared` (the per-run cap in `budget`
    /// is ignored; the shared counter was built from it by the caller).
    pub(crate) fn with_shared(mut self, shared: Option<&'a SharedBudget>) -> Self {
        self.shared = shared;
        self
    }

    /// Charges `multiplicity` discovered subgraphs against the budget and
    /// periodically polls the deadline and cancel token.
    #[inline]
    pub(crate) fn on_record(&mut self, multiplicity: u64) -> Result<(), Stop> {
        if let Some(shared) = self.shared {
            if !shared.try_consume(multiplicity) {
                return Err(Stop::Budget(BudgetKind::Subgraphs));
            }
        } else {
            if self.remaining < multiplicity {
                return Err(Stop::Budget(BudgetKind::Subgraphs));
            }
            self.remaining -= multiplicity;
        }
        self.tick = self.tick.wrapping_add(1);
        if self.tick & CHECK_INTERVAL_MASK == 0 {
            self.poll()?;
        }
        Ok(())
    }

    /// Checks the extension-stack cap after candidate expansion.
    #[inline]
    pub(crate) fn check_frontier(&self, frontier_len: usize) -> Result<(), Stop> {
        if frontier_len > self.max_frontier {
            return Err(Stop::Budget(BudgetKind::Frontier));
        }
        Ok(())
    }

    /// Number of amortized polls executed so far.
    pub(crate) fn polls(&self) -> u64 {
        self.polls
    }

    /// The amortized wall-clock / cancellation poll.
    fn poll(&mut self) -> Result<(), Stop> {
        self.polls += 1;
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(Stop::Cancelled);
        }
        if self
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return Err(Stop::Budget(BudgetKind::Deadline));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        let retry = RetryPolicy {
            backoff_ms: 10,
            ..RetryPolicy::default()
        };
        let first = retry.backoff(7, 0, 1);
        assert_eq!(
            first,
            retry.backoff(7, 0, 1),
            "jitter must be a pure function"
        );
        assert_ne!(first, retry.backoff(8, 0, 1), "roots must decorrelate");
        // Base grows 10 → 20 → 40 ms; jitter adds at most 50%.
        for (attempt, base) in [(1u32, 10u64), (2, 20), (3, 40)] {
            let pause = retry.backoff(7, 0, attempt).as_millis() as u64;
            assert!(
                (base..=base + base / 2).contains(&pause),
                "retry {attempt}: {pause}ms"
            );
        }
        assert_eq!(
            RetryPolicy::default().backoff(7, 0, 1),
            Duration::ZERO,
            "zero base disables sleeping"
        );
        // Huge retry indices must not overflow.
        let _ = retry.backoff(7, 0, u32::MAX);
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = CensusBudget::unlimited();
        assert!(budget.is_unlimited());
        let mut state = BudgetState::new(&budget, None);
        for _ in 0..10_000 {
            state.on_record(17).unwrap();
        }
        state.check_frontier(usize::MAX - 1).unwrap();
    }

    #[test]
    fn subgraph_cap_trips_exactly() {
        let budget = CensusBudget::unlimited().with_max_subgraphs(5);
        let mut state = BudgetState::new(&budget, None);
        for _ in 0..5 {
            state.on_record(1).unwrap();
        }
        assert_eq!(state.on_record(1), Err(Stop::Budget(BudgetKind::Subgraphs)));
    }

    #[test]
    fn grouped_multiplicity_counts_in_bulk() {
        let budget = CensusBudget::unlimited().with_max_subgraphs(10);
        let mut state = BudgetState::new(&budget, None);
        state.on_record(8).unwrap();
        assert_eq!(state.on_record(3), Err(Stop::Budget(BudgetKind::Subgraphs)));
    }

    #[test]
    fn frontier_cap_trips() {
        let budget = CensusBudget::unlimited().with_max_frontier(100);
        let state = BudgetState::new(&budget, None);
        state.check_frontier(100).unwrap();
        assert_eq!(
            state.check_frontier(101),
            Err(Stop::Budget(BudgetKind::Frontier))
        );
    }

    #[test]
    fn expired_deadline_trips_on_poll() {
        let budget = CensusBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..CensusBudget::unlimited()
        };
        let mut state = BudgetState::new(&budget, None);
        // The poll is amortized: drive enough records through to hit it.
        let mut saw_deadline = false;
        for _ in 0..=CHECK_INTERVAL_MASK + 1 {
            if state.on_record(1) == Err(Stop::Budget(BudgetKind::Deadline)) {
                saw_deadline = true;
                break;
            }
        }
        assert!(saw_deadline, "expired deadline never observed");
    }

    #[test]
    fn shared_budget_caps_total_across_states() {
        // Two "shards" drawing on one counter: the total is capped, not
        // the per-shard count.
        let shared = SharedBudget::new(Some(10));
        let budget = CensusBudget::unlimited().with_max_subgraphs(10);
        let mut a = BudgetState::new(&budget, None).with_shared(Some(&shared));
        let mut b = BudgetState::new(&budget, None).with_shared(Some(&shared));
        for _ in 0..5 {
            a.on_record(1).unwrap();
            b.on_record(1).unwrap();
        }
        assert_eq!(a.on_record(1), Err(Stop::Budget(BudgetKind::Subgraphs)));
        assert_eq!(b.on_record(1), Err(Stop::Budget(BudgetKind::Subgraphs)));
    }

    #[test]
    fn shared_budget_unlimited_sentinel_never_trips() {
        let shared = SharedBudget::new(None);
        for _ in 0..1000 {
            assert!(shared.try_consume(u64::MAX / 2));
        }
    }

    #[test]
    fn shared_budget_rejects_overdraw_exactly() {
        let shared = SharedBudget::new(Some(7));
        assert!(shared.try_consume(7));
        assert!(!shared.try_consume(1));
        let fresh = SharedBudget::new(Some(7));
        assert!(!fresh.try_consume(8));
        assert!(fresh.try_consume(7));
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());

        let budget = CensusBudget::unlimited();
        let mut state = BudgetState::new(&budget, Some(&clone));
        let mut saw_cancel = false;
        for _ in 0..=CHECK_INTERVAL_MASK + 1 {
            if state.on_record(1) == Err(Stop::Cancelled) {
                saw_cancel = true;
                break;
            }
        }
        assert!(saw_cancel, "cancellation never observed");
    }
}
