//! Assembly of per-node censuses into a shared feature space
//! (paper §3.2 "Feature Definition": every distinct subgraph encoding is one
//! feature; its value for a node is the rooted count).
//!
//! Censuses of different nodes discover different encodings, so downstream
//! learners need a common vocabulary. [`FeatureMatrix::from_censuses`]
//! interns every encoding once and stores rows sparsely; helpers provide
//! document-frequency pruning, `log1p` scaling (counts grow roughly
//! exponentially with `emax`), and dense export for the `hsgf-ml`
//! regressors.

use std::collections::HashMap;

use hsgf_graph::NodeId;

use crate::sequence::Encoding;

/// An interned vocabulary of subgraph encodings.
#[derive(Clone, Debug, Default)]
pub struct FeatureSpace {
    index: HashMap<Encoding, u32>,
    keys: Vec<Encoding>,
}

impl FeatureSpace {
    /// Creates an empty feature space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an encoding, returning its stable feature index.
    pub fn intern(&mut self, encoding: Encoding) -> u32 {
        if let Some(&idx) = self.index.get(&encoding) {
            return idx;
        }
        let idx = self.keys.len() as u32;
        self.index.insert(encoding.clone(), idx);
        self.keys.push(encoding);
        idx
    }

    /// Looks up an existing encoding's index.
    pub fn get(&self, encoding: &Encoding) -> Option<u32> {
        self.index.get(encoding).copied()
    }

    /// The encoding behind a feature index.
    pub fn key(&self, idx: u32) -> &Encoding {
        &self.keys[idx as usize]
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(index, encoding)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Encoding)> {
        self.keys.iter().enumerate().map(|(i, k)| (i as u32, k))
    }
}

/// A sparse node × subgraph-feature matrix over a shared [`FeatureSpace`].
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    space: FeatureSpace,
    /// One sparse row per root; entries sorted by feature index.
    rows: Vec<Vec<(u32, f64)>>,
    roots: Vec<NodeId>,
}

impl FeatureMatrix {
    /// Builds a matrix from per-root censuses (in root order).
    ///
    /// ```
    /// use std::collections::HashMap;
    /// use hsgf_core::{Encoding, features::FeatureMatrix};
    /// use hsgf_graph::{Label, NodeId};
    ///
    /// let edge = Encoding::of_subgraph(2, &[Label::new(0), Label::new(1)], &[(0, 1)]);
    /// let mut census = HashMap::new();
    /// census.insert(edge.clone(), 3u64);
    /// let m = FeatureMatrix::from_censuses(vec![NodeId::new(7)], vec![census]);
    /// assert_eq!(m.feature_count(), 1);
    /// assert_eq!(m.value(0, m.space().get(&edge).unwrap()), 3.0);
    /// ```
    pub fn from_censuses(roots: Vec<NodeId>, censuses: Vec<HashMap<Encoding, u64>>) -> Self {
        assert_eq!(roots.len(), censuses.len(), "one census per root");
        let mut space = FeatureSpace::new();
        let mut rows = Vec::with_capacity(censuses.len());
        for census in censuses {
            // HashMap iteration order is randomized per process; intern in
            // encoding-byte order so feature indices — and everything
            // derived from them — are a pure function of the censuses.
            // hsgf-lint: allow(det-hash-iter, collected then sorted by encoding bytes on the next line; PR 1 interned in raw iteration order here and broke cross-run determinism)
            let mut entries: Vec<(Encoding, u64)> = census.into_iter().collect();
            entries.sort_unstable_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
            let mut row: Vec<(u32, f64)> = entries
                .into_iter()
                .map(|(enc, count)| (space.intern(enc), count as f64))
                .collect();
            row.sort_unstable_by_key(|&(i, _)| i);
            rows.push(row);
        }
        FeatureMatrix { space, rows, roots }
    }

    /// The shared feature vocabulary.
    pub fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// The roots, in row order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of rows (nodes).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of features (columns).
    pub fn feature_count(&self) -> usize {
        self.space.len()
    }

    /// The sparse row for node `i` (entries sorted by feature index).
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Value at `(row, feature)` — binary search within the sparse row.
    pub fn value(&self, row: usize, feature: u32) -> f64 {
        match self.rows[row].binary_search_by_key(&feature, |&(i, _)| i) {
            Ok(pos) => self.rows[row][pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of rows in which each feature occurs (document frequency).
    pub fn document_frequency(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.feature_count()];
        for row in &self.rows {
            for &(idx, _) in row {
                df[idx as usize] += 1;
            }
        }
        df
    }

    /// Drops features occurring in fewer than `min_df` rows, reindexing the
    /// vocabulary. Rare features carry little signal for linear models and
    /// inflate the dense export.
    pub fn filter_min_df(&self, min_df: u32) -> FeatureMatrix {
        let df = self.document_frequency();
        let mut space = FeatureSpace::new();
        let mut remap: Vec<Option<u32>> = vec![None; self.feature_count()];
        for (old_idx, enc) in self.space.iter() {
            if df[old_idx as usize] >= min_df {
                remap[old_idx as usize] = Some(space.intern(enc.clone()));
            }
        }
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut new_row: Vec<(u32, f64)> = row
                    .iter()
                    .filter_map(|&(idx, v)| remap[idx as usize].map(|ni| (ni, v)))
                    .collect();
                new_row.sort_unstable_by_key(|&(i, _)| i);
                new_row
            })
            .collect();
        FeatureMatrix {
            space,
            rows,
            roots: self.roots.clone(),
        }
    }

    /// Keeps only the `k` features with the highest document frequency
    /// (ties broken by feature index), reindexing the vocabulary. Document
    /// frequency is target-independent, so this cap cannot leak label
    /// information into the features.
    pub fn top_k_by_document_frequency(&self, k: usize) -> FeatureMatrix {
        if self.feature_count() <= k {
            return self.clone();
        }
        let df = self.document_frequency();
        let mut order: Vec<usize> = (0..df.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(df[i]), i));
        order.truncate(k);
        order.sort_unstable();
        let mut space = FeatureSpace::new();
        let mut remap: Vec<Option<u32>> = vec![None; self.feature_count()];
        for &old_idx in &order {
            remap[old_idx] = Some(space.intern(self.space.key(old_idx as u32).clone()));
        }
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut new_row: Vec<(u32, f64)> = row
                    .iter()
                    .filter_map(|&(idx, v)| remap[idx as usize].map(|ni| (ni, v)))
                    .collect();
                new_row.sort_unstable_by_key(|&(i, _)| i);
                new_row
            })
            .collect();
        FeatureMatrix {
            space,
            rows,
            roots: self.roots.clone(),
        }
    }

    /// Keeps only the rows where `keep` is `true` (parallel to the root
    /// list), dropping features that no longer occur in any surviving row
    /// and reindexing the vocabulary. Used by the extraction supervisor to
    /// derive an exact-rows-only matrix from a partial extraction.
    pub fn retain_rows(&self, keep: &[bool]) -> FeatureMatrix {
        assert_eq!(keep.len(), self.rows.len(), "one flag per row");
        let mut df = vec![false; self.feature_count()];
        for (row, &k) in self.rows.iter().zip(keep) {
            if k {
                for &(idx, _) in row {
                    df[idx as usize] = true;
                }
            }
        }
        let mut space = FeatureSpace::new();
        let mut remap: Vec<Option<u32>> = vec![None; self.feature_count()];
        for (old_idx, enc) in self.space.iter() {
            if df[old_idx as usize] {
                remap[old_idx as usize] = Some(space.intern(enc.clone()));
            }
        }
        let mut rows = Vec::new();
        let mut roots = Vec::new();
        for ((row, root), &k) in self.rows.iter().zip(&self.roots).zip(keep) {
            if !k {
                continue;
            }
            let mut new_row: Vec<(u32, f64)> = row
                .iter()
                .filter_map(|&(idx, v)| remap[idx as usize].map(|ni| (ni, v)))
                .collect();
            new_row.sort_unstable_by_key(|&(i, _)| i);
            rows.push(new_row);
            roots.push(*root);
        }
        FeatureMatrix { space, rows, roots }
    }

    /// Applies `ln(1 + x)` to every value. Census counts grow roughly
    /// exponentially with `emax`; compressing them stabilizes linear and
    /// ridge models without affecting tree-based ones (monotone transform).
    pub fn log1p(&self) -> FeatureMatrix {
        let rows = self
            .rows
            .iter()
            .map(|row| row.iter().map(|&(i, v)| (i, v.ln_1p())).collect())
            .collect();
        FeatureMatrix {
            space: self.space.clone(),
            rows,
            roots: self.roots.clone(),
        }
    }

    /// Exports a dense row-major matrix (`row_count × feature_count`).
    pub fn to_dense(&self) -> Vec<f64> {
        let cols = self.feature_count();
        let mut out = vec![0.0; self.rows.len() * cols];
        for (r, row) in self.rows.iter().enumerate() {
            for &(idx, v) in row {
                out[r * cols + idx as usize] = v;
            }
        }
        out
    }

    /// Total number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use hsgf_graph::Label;

    use super::*;

    fn enc(labels: &[u8], edges: &[(u8, u8)]) -> Encoding {
        let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
        Encoding::of_subgraph(2, &labels, edges)
    }

    fn sample_matrix() -> FeatureMatrix {
        let e1 = enc(&[0, 1], &[(0, 1)]);
        let e2 = enc(&[0, 0], &[(0, 1)]);
        let e3 = enc(&[0, 1, 1], &[(0, 1), (0, 2)]);
        let mut c1 = HashMap::new();
        c1.insert(e1.clone(), 3);
        c1.insert(e2.clone(), 1);
        let mut c2 = HashMap::new();
        c2.insert(e1.clone(), 2);
        c2.insert(e3.clone(), 5);
        FeatureMatrix::from_censuses(vec![NodeId::new(0), NodeId::new(1)], vec![c1, c2])
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let m = sample_matrix();
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.feature_count(), 3);
        let e1 = enc(&[0, 1], &[(0, 1)]);
        let idx = m.space().get(&e1).unwrap();
        assert_eq!(m.value(0, idx), 3.0);
        assert_eq!(m.value(1, idx), 2.0);
    }

    #[test]
    fn value_returns_zero_for_absent_features() {
        let m = sample_matrix();
        let e3 = enc(&[0, 1, 1], &[(0, 1), (0, 2)]);
        let idx = m.space().get(&e3).unwrap();
        assert_eq!(m.value(0, idx), 0.0);
        assert_eq!(m.value(1, idx), 5.0);
    }

    #[test]
    fn document_frequency_counts_rows() {
        let m = sample_matrix();
        let df = m.document_frequency();
        let e1 = enc(&[0, 1], &[(0, 1)]);
        assert_eq!(df[m.space().get(&e1).unwrap() as usize], 2);
        let e2 = enc(&[0, 0], &[(0, 1)]);
        assert_eq!(df[m.space().get(&e2).unwrap() as usize], 1);
    }

    #[test]
    fn min_df_filter_drops_and_reindexes() {
        let m = sample_matrix().filter_min_df(2);
        assert_eq!(m.feature_count(), 1, "only e1 appears in both rows");
        let e1 = enc(&[0, 1], &[(0, 1)]);
        let idx = m.space().get(&e1).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(m.value(0, idx), 3.0);
        assert_eq!(m.value(1, idx), 2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn top_k_by_df_keeps_most_frequent() {
        let m = sample_matrix();
        let capped = m.top_k_by_document_frequency(1);
        assert_eq!(capped.feature_count(), 1);
        // e1 appears in both rows; it must be the survivor.
        let e1 = enc(&[0, 1], &[(0, 1)]);
        assert!(capped.space().get(&e1).is_some());
        assert_eq!(capped.value(0, 0), 3.0);
        // A cap larger than the vocabulary is a no-op.
        let uncapped = m.top_k_by_document_frequency(100);
        assert_eq!(uncapped.feature_count(), m.feature_count());
    }

    #[test]
    fn log1p_transforms_values() {
        let m = sample_matrix().log1p();
        let e1 = enc(&[0, 1], &[(0, 1)]);
        let idx = m.space().get(&e1).unwrap();
        assert!((m.value(0, idx) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn dense_export_matches_sparse() {
        let m = sample_matrix();
        let dense = m.to_dense();
        let cols = m.feature_count();
        for r in 0..m.row_count() {
            for c in 0..cols {
                assert_eq!(dense[r * cols + c], m.value(r, c as u32));
            }
        }
    }

    #[test]
    #[should_panic(expected = "one census per root")]
    fn mismatched_lengths_panic() {
        let _ = FeatureMatrix::from_censuses(vec![NodeId::new(0)], vec![]);
    }

    #[test]
    fn retain_rows_drops_rows_and_orphan_features() {
        let m = sample_matrix();
        let kept = m.retain_rows(&[false, true]);
        assert_eq!(kept.row_count(), 1);
        assert_eq!(kept.roots(), &[NodeId::new(1)]);
        // e2 only occurred in the dropped row; it must leave the vocabulary.
        let e2 = enc(&[0, 0], &[(0, 1)]);
        assert!(kept.space().get(&e2).is_none());
        assert_eq!(kept.feature_count(), 2);
        let e1 = enc(&[0, 1], &[(0, 1)]);
        let e3 = enc(&[0, 1, 1], &[(0, 1), (0, 2)]);
        assert_eq!(kept.value(0, kept.space().get(&e1).unwrap()), 2.0);
        assert_eq!(kept.value(0, kept.space().get(&e3).unwrap()), 5.0);
        // Keeping everything is a structural no-op.
        let all = m.retain_rows(&[true, true]);
        assert_eq!(all.row_count(), 2);
        assert_eq!(all.feature_count(), m.feature_count());
    }
}
