//! Property-based validation of the census engine and encoding machinery,
//! running on the in-repo [`hsgf_core::prop`] harness.

use std::collections::HashMap;

use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::hash::{fnv1a_encoding_hash, HashScheme, LabelBases};
use hsgf_core::prop::{check, Config};
use hsgf_core::prop_assert;
use hsgf_core::reference::naive_census;
use hsgf_core::sequence::Encoding;
use hsgf_core::small::SmallGraph;
use hsgf_graph::rng::Rng;
use hsgf_graph::{GraphBuilder, HetGraph, Label, LabelSet, NodeId};

/// Generator: a random small labelled graph as (label count, labels,
/// deduplicated undirected edges). `max_size` caps the node count so the
/// harness's halving shrink produces genuinely smaller graphs.
fn small_labelled_graph(
    rng: &mut Rng,
    max_size: usize,
    max_nodes: usize,
    max_labels: usize,
) -> (usize, Vec<u8>, Vec<(u8, u8)>) {
    let hi = max_nodes.min(max_size).max(2);
    let n = rng.gen_range(2usize..=hi);
    let k = rng.gen_range(1usize..=max_labels);
    let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0..k) as u8).collect();
    let attempts = rng.gen_range(0usize..=n * 2);
    let mut edges: Vec<(u8, u8)> = (0..attempts)
        .filter_map(|_| {
            let u = rng.gen_range(0..n) as u8;
            let v = rng.gen_range(0..n) as u8;
            if u == v {
                None
            } else {
                Some(if u < v { (u, v) } else { (v, u) })
            }
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    (k, labels, edges)
}

fn build_graph(k: usize, labels: &[u8], edges: &[(u8, u8)]) -> HetGraph {
    let names: Vec<String> = (0..k).map(|i| format!("l{i}")).collect();
    let set = LabelSet::from_names(names).unwrap();
    let node_labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
    let edges32: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (u as u32, v as u32)).collect();
    GraphBuilder::from_edges(set, &node_labels, &edges32).unwrap()
}

/// The optimized engine must agree with the brute-force oracle for all
/// configurations of emax / dmax / masking.
#[test]
fn engine_equals_oracle() {
    check(
        "engine_equals_oracle",
        &Config::from_env(),
        |rng, max_size| {
            let (k, labels, edges) = small_labelled_graph(rng, max_size, 7, 3);
            let emax = rng.gen_range(1usize..=4);
            let dmax = if rng.gen_bool(0.5) {
                None
            } else {
                Some(rng.gen_range(1u32..4))
            };
            let mask = rng.gen_bool(0.5);
            let root_pick = rng.gen_range(0usize..7);
            (k, labels, edges, emax, dmax, mask, root_pick)
        },
        |(k, labels, edges, emax, dmax, mask, root_pick)| {
            if edges.is_empty() || edges.len() > 14 {
                return Ok(());
            }
            let graph = build_graph(*k, labels, edges);
            let root = NodeId::new((root_pick % labels.len()) as u32);
            let mut config = CensusConfig::default()
                .with_emax(*emax)
                .with_dmax(*dmax)
                .with_mask_root_label(*mask);
            config.group_by_label = true;
            let expected = naive_census(&graph, root, &config);
            let engine = CensusEngine::new(&graph, config).unwrap();
            let mut scratch = engine.make_scratch();
            let actual = engine.census_encodings(root, &mut scratch).unwrap().counts;
            prop_assert!(expected == actual, "engine diverged from oracle");
            Ok(())
        },
    );
}

/// The rolling hash maintained incrementally by the engine must equal the
/// from-scratch hash of the encoding for every recorded subgraph.
#[test]
fn incremental_hash_equals_full_rehash() {
    check(
        "incremental_hash_equals_full_rehash",
        &Config::from_env(),
        |rng, max_size| {
            let case = small_labelled_graph(rng, max_size, 8, 3);
            let scheme = if rng.gen_bool(0.5) {
                HashScheme::Mixed
            } else {
                HashScheme::Linear
            };
            (case, scheme)
        },
        |((k, labels, edges), scheme)| {
            if edges.is_empty() || edges.len() > 14 {
                return Ok(());
            }
            let graph = build_graph(*k, labels, edges);
            let mut config = CensusConfig::default().with_emax(3);
            config.hash_scheme = *scheme;
            let bases = LabelBases::new(graph.label_count(), config.hash_seed);
            let engine = CensusEngine::new(&graph, config).unwrap();
            let mut scratch = engine.make_scratch();

            struct Checker<'a> {
                bases: &'a LabelBases,
                scheme: HashScheme,
                failures: usize,
            }
            impl hsgf_core::census::CensusSink for Checker<'_> {
                fn record(
                    &mut self,
                    view: &hsgf_core::census::SubgraphView<'_>,
                    hash: u64,
                    _multiplicity: u64,
                ) {
                    let full = self.bases.hash_encoding(&view.encoding(), self.scheme);
                    if full != hash {
                        self.failures += 1;
                    }
                }
            }
            let mut checker = Checker {
                bases: &bases,
                scheme: *scheme,
                failures: 0,
            };
            engine
                .run(NodeId::new(0), &mut scratch, &mut checker)
                .unwrap();
            prop_assert!(
                checker.failures == 0,
                "{} incremental hash mismatches",
                checker.failures
            );
            Ok(())
        },
    );
}

/// Grouping on/off and hash scheme never change encoding-keyed results.
#[test]
fn census_invariant_to_internal_options() {
    check(
        "census_invariant_to_internal_options",
        &Config::from_env(),
        |rng, max_size| small_labelled_graph(rng, max_size, 8, 3),
        |(k, labels, edges)| {
            if edges.is_empty() {
                return Ok(());
            }
            let graph = build_graph(*k, labels, edges);
            let root = NodeId::new(0);
            let mut configs = Vec::new();
            for group in [false, true] {
                for scheme in [HashScheme::Mixed, HashScheme::Linear] {
                    let mut c = CensusConfig::default().with_emax(3);
                    c.group_by_label = group;
                    c.hash_scheme = scheme;
                    configs.push(c);
                }
            }
            let mut results: Vec<HashMap<Encoding, u64>> = Vec::new();
            for config in configs {
                let engine = CensusEngine::new(&graph, config).unwrap();
                let mut scratch = engine.make_scratch();
                results.push(engine.census_encodings(root, &mut scratch).unwrap().counts);
            }
            for w in results.windows(2) {
                prop_assert!(w[0] == w[1], "internal option changed the census");
            }
            Ok(())
        },
    );
}

/// Encoding equality must be implied by isomorphism for small graphs
/// (the encoding is an isomorphism invariant).
#[test]
fn encoding_is_isomorphism_invariant() {
    check(
        "encoding_is_isomorphism_invariant",
        &Config::from_env(),
        |rng, max_size| {
            let case = small_labelled_graph(rng, max_size, 6, 3);
            (case, rng.next_u64())
        },
        |((k, labels, edges), perm_seed)| {
            if edges.is_empty() {
                return Ok(());
            }
            let g = SmallGraph::new(labels.clone(), edges);
            // Derive a deterministic permutation from the seed.
            let n = labels.len();
            let mut perm: Vec<usize> = (0..n).collect();
            let mut state = *perm_seed;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let h = g.permuted(&perm);
            prop_assert!(g.is_isomorphic(&h), "permuted copy not isomorphic");
            prop_assert!(
                g.encoding(*k) == h.encoding(*k),
                "encodings differ under relabeling"
            );
            prop_assert!(g.canonical() == h.canonical(), "canonical forms differ");
            Ok(())
        },
    );
}

/// Canonicalization is idempotent and label-multiset preserving.
#[test]
fn canonical_idempotent() {
    check(
        "canonical_idempotent",
        &Config::from_env(),
        |rng, max_size| small_labelled_graph(rng, max_size, 6, 3),
        |(_k, labels, edges)| {
            let g = SmallGraph::new(labels.clone(), edges);
            let c = g.canonical();
            prop_assert!(c.canonical() == c, "canonical not idempotent");
            let mut l1 = labels.clone();
            l1.sort_unstable();
            let l2 = c.labels().to_vec();
            prop_assert!(l1 == l2, "canonical changed the label multiset");
            prop_assert!(
                g.edge_count() == c.edge_count(),
                "canonical changed edge count"
            );
            Ok(())
        },
    );
}

/// Distinct encodings get distinct FNV hashes in small samples (smoke
/// guard against degenerate byte serialization).
#[test]
fn encoding_bytes_identify_encoding() {
    check(
        "encoding_bytes_identify_encoding",
        &Config::from_env(),
        |rng, max_size| {
            let a = small_labelled_graph(rng, max_size, 6, 3);
            let b = small_labelled_graph(rng, max_size, 6, 3);
            (a, b)
        },
        |((k, labels, edges), (k2, labels2, edges2))| {
            if k != k2 {
                return Ok(());
            }
            let a = SmallGraph::new(labels.clone(), edges).encoding(*k);
            let b = SmallGraph::new(labels2.clone(), edges2).encoding(*k2);
            prop_assert!(
                (a == b) == (a.as_bytes() == b.as_bytes()),
                "encoding equality disagrees with byte equality"
            );
            if a != b && a.node_count() == b.node_count() {
                // Same length, different content ⇒ different FNV with
                // overwhelming probability; equality here would signal broken
                // serialization rather than a genuine 64-bit collision.
                prop_assert!(
                    fnv1a_encoding_hash(&a) != fnv1a_encoding_hash(&b),
                    "distinct encodings share an FNV hash"
                );
            }
            Ok(())
        },
    );
}
