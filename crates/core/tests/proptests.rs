//! Property-based validation of the census engine and encoding machinery.

use std::collections::HashMap;

use hsgf_core::census::{CensusConfig, CensusEngine};
use hsgf_core::hash::{fnv1a_encoding_hash, HashScheme, LabelBases};
use hsgf_core::reference::naive_census;
use hsgf_core::sequence::Encoding;
use hsgf_core::small::SmallGraph;
use hsgf_graph::{GraphBuilder, HetGraph, Label, LabelSet, NodeId};
use proptest::prelude::*;

/// Strategy: a random small labelled graph as (label count, labels, edges).
fn small_labelled_graph(
    max_nodes: usize,
    max_labels: usize,
) -> impl Strategy<Value = (usize, Vec<u8>, Vec<(u8, u8)>)> {
    (2usize..=max_nodes, 1usize..=max_labels).prop_flat_map(move |(n, k)| {
        let labels = proptest::collection::vec(0u8..k as u8, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..=(n * 2)); // dedup below
        (Just(k), labels, edges).prop_map(|(k, labels, raw_edges)| {
            let mut edges: Vec<(u8, u8)> = raw_edges
                .into_iter()
                .filter(|&(u, v)| u != v)
                .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                .collect();
            edges.sort_unstable();
            edges.dedup();
            (k, labels, edges)
        })
    })
}

fn build_graph(k: usize, labels: &[u8], edges: &[(u8, u8)]) -> HetGraph {
    let names: Vec<String> = (0..k).map(|i| format!("l{i}")).collect();
    let set = LabelSet::from_names(names).unwrap();
    let node_labels: Vec<Label> = labels.iter().map(|&l| Label::new(l)).collect();
    let edges32: Vec<(u32, u32)> =
        edges.iter().map(|&(u, v)| (u as u32, v as u32)).collect();
    GraphBuilder::from_edges(set, &node_labels, &edges32).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized engine must agree with the brute-force oracle for all
    /// configurations of emax / dmax / masking.
    #[test]
    fn engine_equals_oracle(
        (k, labels, edges) in small_labelled_graph(7, 3),
        emax in 1usize..=4,
        dmax in prop_oneof![Just(None), (1u32..4).prop_map(Some)],
        mask in any::<bool>(),
        root_pick in 0usize..7,
    ) {
        prop_assume!(!edges.is_empty() && edges.len() <= 14);
        let graph = build_graph(k, &labels, &edges);
        let root = NodeId::new((root_pick % labels.len()) as u32);
        let mut config = CensusConfig::default()
            .with_emax(emax)
            .with_dmax(dmax)
            .with_mask_root_label(mask);
        config.group_by_label = true;
        let expected = naive_census(&graph, root, &config);
        let engine = CensusEngine::new(&graph, config).unwrap();
        let mut scratch = engine.make_scratch();
        let actual = engine.census_encodings(root, &mut scratch).unwrap().counts;
        prop_assert_eq!(expected, actual);
    }

    /// The rolling hash maintained incrementally by the engine must equal
    /// the from-scratch hash of the encoding for every recorded subgraph.
    #[test]
    fn incremental_hash_equals_full_rehash(
        (k, labels, edges) in small_labelled_graph(8, 3),
        scheme in prop_oneof![Just(HashScheme::Mixed), Just(HashScheme::Linear)],
    ) {
        prop_assume!(!edges.is_empty() && edges.len() <= 14);
        let graph = build_graph(k, &labels, &edges);
        let mut config = CensusConfig::default().with_emax(3);
        config.hash_scheme = scheme;
        let bases = LabelBases::new(graph.label_count(), config.hash_seed);
        let engine = CensusEngine::new(&graph, config).unwrap();
        let mut scratch = engine.make_scratch();

        struct Checker<'a> {
            bases: &'a LabelBases,
            scheme: HashScheme,
            failures: usize,
        }
        impl hsgf_core::census::CensusSink for Checker<'_> {
            fn record(
                &mut self,
                view: &hsgf_core::census::SubgraphView<'_>,
                hash: u64,
                _multiplicity: u64,
            ) {
                let full = self.bases.hash_encoding(&view.encoding(), self.scheme);
                if full != hash {
                    self.failures += 1;
                }
            }
        }
        let mut checker = Checker { bases: &bases, scheme, failures: 0 };
        engine.run(NodeId::new(0), &mut scratch, &mut checker).unwrap();
        prop_assert_eq!(checker.failures, 0);
    }

    /// Grouping on/off and hash scheme never change encoding-keyed results.
    #[test]
    fn census_invariant_to_internal_options(
        (k, labels, edges) in small_labelled_graph(8, 3),
    ) {
        prop_assume!(!edges.is_empty());
        let graph = build_graph(k, &labels, &edges);
        let root = NodeId::new(0);
        let mut configs = Vec::new();
        for group in [false, true] {
            for scheme in [HashScheme::Mixed, HashScheme::Linear] {
                let mut c = CensusConfig::default().with_emax(3);
                c.group_by_label = group;
                c.hash_scheme = scheme;
                configs.push(c);
            }
        }
        let mut results: Vec<HashMap<Encoding, u64>> = Vec::new();
        for config in configs {
            let engine = CensusEngine::new(&graph, config).unwrap();
            let mut scratch = engine.make_scratch();
            results.push(engine.census_encodings(root, &mut scratch).unwrap().counts);
        }
        for w in results.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    /// Encoding equality must be implied by isomorphism for small graphs
    /// (the encoding is an isomorphism invariant).
    #[test]
    fn encoding_is_isomorphism_invariant(
        (k, labels, edges) in small_labelled_graph(6, 3),
        perm_seed in any::<u64>(),
    ) {
        prop_assume!(!edges.is_empty());
        let g = SmallGraph::new(labels.clone(), &edges);
        // Derive a deterministic permutation from the seed.
        let n = labels.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = perm_seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = g.permuted(&perm);
        prop_assert!(g.is_isomorphic(&h));
        prop_assert_eq!(g.encoding(k), h.encoding(k));
        prop_assert_eq!(g.canonical(), h.canonical());
    }

    /// Canonicalization is idempotent and label-multiset preserving.
    #[test]
    fn canonical_idempotent(
        (_k, labels, edges) in small_labelled_graph(6, 3),
    ) {
        let g = SmallGraph::new(labels.clone(), &edges);
        let c = g.canonical();
        prop_assert_eq!(c.canonical(), c.clone());
        let mut l1 = labels;
        l1.sort_unstable();
        let l2 = c.labels().to_vec();
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(g.edge_count(), c.edge_count());
    }

    /// Distinct encodings get distinct FNV hashes in small samples (smoke
    /// guard against degenerate byte serialization).
    #[test]
    fn encoding_bytes_identify_encoding(
        (k, labels, edges) in small_labelled_graph(6, 3),
        (k2, labels2, edges2) in small_labelled_graph(6, 3),
    ) {
        prop_assume!(k == k2);
        let a = SmallGraph::new(labels, &edges).encoding(k);
        let b = SmallGraph::new(labels2, &edges2).encoding(k2);
        prop_assert_eq!(a == b, a.as_bytes() == b.as_bytes());
        if a != b && a.node_count() == b.node_count() {
            // Same length, different content ⇒ different FNV with
            // overwhelming probability; equality here would signal broken
            // serialization rather than a genuine 64-bit collision.
            prop_assert_ne!(fnv1a_encoding_hash(&a), fnv1a_encoding_hash(&b));
        }
    }
}
