//! # HSGF — Heterogeneous Subgraph Features for Information Networks
//!
//! A complete Rust implementation of Spitz et al., *Heterogeneous Subgraph
//! Features for Information Networks* (GRADES-NDA'18), including every
//! substrate the paper's evaluation depends on. This facade crate
//! re-exports the workspace's public API:
//!
//! * [`graph`] — the heterogeneous graph substrate (`hsgf-graph`).
//! * [`core`] — characteristic-sequence encodings, rolling hashes, and the
//!   rooted subgraph census (`hsgf-core`), the paper's contribution.
//! * [`ml`] — from-scratch regressors/classifiers and metrics (`hsgf-ml`).
//! * [`embed`] — DeepWalk, node2vec, and LINE baselines (`hsgf-embed`).
//! * [`data`] — synthetic MAG / LOAD / IMDB dataset generators
//!   (`hsgf-data`).
//! * [`eval`] — the experiment harness regenerating each table and figure
//!   (`hsgf-eval`).
//! * [`serve`] — the long-running feature-serving layer over the census
//!   cache (`hsgf-serve`).
//! * [`analyze`] — the in-repo static analysis tool behind `hsgf lint`
//!   (`hsgf-analyze`).
//!
//! ## Quickstart
//!
//! ```
//! use hsgf::graph::GraphBuilder;
//! use hsgf::core::{CensusConfig, CensusEngine};
//!
//! let mut b = GraphBuilder::with_label_names(["user", "item"]).unwrap();
//! let u = b.add_node("user").unwrap();
//! let i1 = b.add_node("item").unwrap();
//! let i2 = b.add_node("item").unwrap();
//! b.add_edge(u, i1).unwrap();
//! b.add_edge(u, i2).unwrap();
//! let graph = b.build();
//!
//! let engine = CensusEngine::new(&graph, CensusConfig::default()).unwrap();
//! let mut scratch = engine.make_scratch();
//! let census = engine.census_encodings(u, &mut scratch).unwrap();
//! // The user sits in three subgraphs: u–i1, u–i2, and the 2-star.
//! assert_eq!(census.counts.values().sum::<u64>(), 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use hsgf_analyze as analyze;
pub use hsgf_core as core;
pub use hsgf_data as data;
pub use hsgf_embed as embed;
pub use hsgf_eval as eval;
pub use hsgf_graph as graph;
pub use hsgf_ml as ml;
pub use hsgf_serve as serve;
