//! The `hsgf` command-line tool. See `hsgf help`.
//!
//! Exit codes: 0 = success, 2 = hard error, 3 = extraction completed with
//! degraded, failed, or cancelled roots (see `hsgf help`).

#![forbid(unsafe_code)]

fn main() {
    let options = hsgf_cli::Options::parse(std::env::args().skip(1));
    let stdout = std::io::stdout();
    match hsgf_cli::run(&options, stdout.lock()) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", hsgf_cli::USAGE);
            std::process::exit(2);
        }
    }
}
