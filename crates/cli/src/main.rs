//! The `hsgf` command-line tool. See `hsgf help`.

fn main() {
    let options = hsgf_cli::Options::parse(std::env::args().skip(1));
    let stdout = std::io::stdout();
    if let Err(e) = hsgf_cli::run(&options, stdout.lock()) {
        eprintln!("{e}");
        eprintln!("{}", hsgf_cli::USAGE);
        std::process::exit(2);
    }
}
